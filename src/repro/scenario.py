"""Declarative scenario configs: one file describes one experiment.

A :class:`Scenario` is the single validated dataclass tree behind
:mod:`repro.api`: the policy cell (heuristic + filter variant), the
simulation configuration (cluster, workload, arrival pattern, energy
budget, filter thresholds), and the run shape — one trial, a paired
ensemble, or continuous-service mode with traffic/fault/shedding knobs.
The same object round-trips through a single TOML or JSON file:

.. code-block:: toml

    format = "repro.scenario/1"
    name = "fig2-baseline"
    mode = "ensemble"

    [policy]
    heuristic = "MECT"
    filters = "en+rob"

    [sim.workload]
    num_tasks = 1000

    [ensemble]
    num_trials = 50

``Scenario.from_file`` loads it, ``to_file`` writes it back,
:meth:`Scenario.digest` fingerprints it, and
:func:`repro.api.run_scenario` (or ``repro run --scenario``) executes
it.  Policy names resolve through :mod:`repro.registry`, so a
third-party heuristic registered under ``entry_points(group=
"repro.plugins")`` is immediately addressable from a scenario file.

Serialization is *sparse*: only values differing from the dataclass
defaults are emitted, so files stay minimal, ``from_file(to_file(s))``
reproduces ``s`` exactly, and :meth:`Scenario.digest` is stable across
the round trip.  Unknown keys anywhere in the tree fail with a
did-you-mean :class:`ScenarioError` naming the closest valid key — a
typo never silently falls back to a default.
"""

from __future__ import annotations

import dataclasses
import difflib
import enum
import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.config import (
    ClusterConfig,
    EnergyConfig,
    FilterConfig,
    GridConfig,
    IdlePowerMode,
    LambdaMode,
    SimulationConfig,
    WorkloadConfig,
)
from repro.experiments.runner import VariantSpec
from repro.faults import FaultEvent, FaultPolicy, FaultSchedule, SheddingConfig
from repro.filters.chain import canonical_variant
from repro.registry import HEURISTIC_PLUGINS, UnknownPluginError
from repro.service import ServiceConfig
from repro.sim.system import TrialSystem, build_trial_system

__all__ = [
    "SCENARIO_FORMAT",
    "MODES",
    "ScenarioError",
    "EnsembleSettings",
    "FaultSettings",
    "Scenario",
]

#: Format tag written to (and accepted from) every scenario file.
SCENARIO_FORMAT = "repro.scenario/1"

#: The run shapes a scenario can describe.
MODES = ("trial", "ensemble", "service")


class ScenarioError(ValueError):
    """A malformed scenario: unknown key, bad value, or unloadable file."""


def _unknown_key(key: str, valid: tuple[str, ...], where: str) -> ScenarioError:
    """A did-you-mean error for an unrecognized key."""
    close = difflib.get_close_matches(key, valid, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return ScenarioError(
        f"unknown key {key!r} in {where}{hint} known keys: {', '.join(valid)}"
    )


# Dataclass fields stored as enums; scenario files carry the .value string.
_ENUM_FIELDS: dict[tuple[str, str], type[enum.Enum]] = {
    ("WorkloadConfig", "lambda_mode"): LambdaMode,
    ("EnergyConfig", "idle_power_mode"): IdlePowerMode,
}


def _build_dataclass(cls: type, data: Mapping[str, Any], where: str) -> Any:
    """Construct ``cls`` from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{where} must be a table, got {type(data).__name__}"
        )
    names = tuple(f.name for f in dataclasses.fields(cls))
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key not in names:
            raise _unknown_key(key, names, where)
        enum_type = _ENUM_FIELDS.get((cls.__name__, key))
        if enum_type is not None and isinstance(value, str):
            try:
                value = enum_type(value)
            except ValueError:
                known = ", ".join(e.value for e in enum_type)
                raise ScenarioError(
                    f"bad value {value!r} for {where}.{key}; known: {known}"
                ) from None
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"invalid {where}: {exc}") from exc


def _dataclass_to_dict(obj: Any) -> dict[str, Any]:
    """Sparse field dict: only values that differ from the defaults."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if f.default is not dataclasses.MISSING:
            default = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = f.default_factory()  # type: ignore[misc]
        else:
            default = dataclasses.MISSING
        if default is not dataclasses.MISSING and value == default:
            continue
        if isinstance(value, enum.Enum):
            value = value.value
        out[f.name] = value
    return out


_SIM_SECTIONS: dict[str, type] = {
    "grid": GridConfig,
    "cluster": ClusterConfig,
    "workload": WorkloadConfig,
    "energy": EnergyConfig,
    "filters": FilterConfig,
}


def _sim_from_dict(data: Mapping[str, Any]) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from a ``[sim]`` table."""
    valid = ("seed", *(_SIM_SECTIONS))
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key == "seed":
            kwargs["seed"] = value
        elif key in _SIM_SECTIONS:
            kwargs[key] = _build_dataclass(_SIM_SECTIONS[key], value, f"[sim.{key}]")
        else:
            raise _unknown_key(key, valid, "[sim]")
    try:
        return SimulationConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"invalid [sim]: {exc}") from exc


def _sim_to_dict(config: SimulationConfig) -> dict[str, Any]:
    out: dict[str, Any] = {}
    if config.seed != 0:
        out["seed"] = config.seed
    for section in _SIM_SECTIONS:
        fields = _dataclass_to_dict(getattr(config, section))
        if fields:
            out[section] = fields
    return out


@dataclass(frozen=True)
class EnsembleSettings:
    """The run shape of ``mode = "ensemble"``: paired trials of one config.

    ``base_seed = None`` defers to the scenario's resolved seed exactly
    as :func:`repro.api.run_ensemble` does, so a scenario-driven
    ensemble reproduces the programmatic one bit for bit.
    """

    num_trials: int = 10
    base_seed: int | None = None
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.num_trials < 1:
            raise ValueError(f"num_trials must be >= 1, got {self.num_trials}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")


#: Valid scopes for generated fault schedules (see FaultSchedule.generate).
_FAULT_SCOPES = ("node", "core", "slowdown")


@dataclass(frozen=True)
class FaultSettings:
    """Declarative fault layer: an explicit episode list or a generator.

    Either list episodes as ``[[faults.events]]`` tables (kind, target,
    start, duration) or set the renewal-process trio ``mtbf`` / ``mttr``
    / ``horizon`` and a schedule is drawn per run via
    :meth:`repro.faults.FaultSchedule.generate` — deterministic given
    ``seed`` (default: the scenario's resolved master seed).
    ``running`` / ``remap`` become the :class:`~repro.faults.FaultPolicy`.
    """

    mtbf: float | None = None
    mttr: float | None = None
    horizon: float | None = None
    num_targets: int | None = None
    scope: str = "node"
    pstate_floor: int = 0
    seed: int | None = None
    running: str = "lost"
    remap: bool = True
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.scope not in _FAULT_SCOPES:
            close = difflib.get_close_matches(self.scope, _FAULT_SCOPES, n=1, cutoff=0.5)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ValueError(
                f"unknown fault scope {self.scope!r}{hint} "
                f"known: {', '.join(_FAULT_SCOPES)}"
            )
        if self.running not in ("lost", "resume"):
            raise ValueError(
                f"running policy must be 'lost' or 'resume', got {self.running!r}"
            )
        trio = (self.mtbf, self.mttr, self.horizon)
        if any(v is not None for v in trio) and not all(v is not None for v in trio):
            raise ValueError("fault generation needs all of mtbf, mttr and horizon")
        if self.mtbf is not None and self.events:
            raise ValueError(
                "give either explicit fault events or the mtbf/mttr/horizon "
                "generator, not both"
            )
        if self.num_targets is not None and self.num_targets < 1:
            raise ValueError(f"num_targets must be >= 1, got {self.num_targets}")

    @property
    def active(self) -> bool:
        """Whether this setting produces any fault schedule at all."""
        return bool(self.events) or self.mtbf is not None

    def resolve(
        self, config: SimulationConfig
    ) -> tuple[FaultSchedule | None, FaultPolicy | None]:
        """The concrete (schedule, policy) pair for one resolved config."""
        if not self.active:
            return None, None
        policy = FaultPolicy(running=self.running, remap=self.remap)
        if self.events:
            return FaultSchedule(self.events), policy
        num_targets = (
            self.num_targets
            if self.num_targets is not None
            else config.cluster.num_nodes
        )
        schedule = FaultSchedule.generate(
            num_targets=num_targets,
            horizon=self.horizon,  # type: ignore[arg-type]
            mtbf=self.mtbf,  # type: ignore[arg-type]
            mttr=self.mttr,  # type: ignore[arg-type]
            seed=self.seed if self.seed is not None else config.seed,
            scope=self.scope,
            pstate_floor=self.pstate_floor,
        )
        return schedule, policy


def _faults_from_dict(data: Mapping[str, Any]) -> FaultSettings:
    data = dict(data)
    events = data.pop("events", [])
    if not isinstance(events, (list, tuple)):
        raise ScenarioError("[faults].events must be an array of event tables")
    built = tuple(
        _build_dataclass(FaultEvent, item, "[[faults.events]]") for item in events
    )
    settings = _build_dataclass(FaultSettings, data, "[faults]")
    return replace(settings, events=built)


def _faults_to_dict(settings: FaultSettings) -> dict[str, Any]:
    out = _dataclass_to_dict(settings)
    out.pop("events", None)
    if settings.events:
        out["events"] = [_dataclass_to_dict(event) for event in settings.events]
    return out


@dataclass(frozen=True)
class Scenario:
    """One named experiment: a policy, its workload, and the run shape.

    The first five fields are the pre-scenario ``repro.api.Scenario``
    surface, unchanged (positional use like ``Scenario("LL", "en+rob",
    seed=42)`` keeps working); the rest declare what a scenario *file*
    can say.  Policy names are case-insensitive and canonicalized
    against the plugin registries at construction (``"mect"`` stores as
    ``"MECT"``), so one spelling reaches the rng stream labels and the
    results are independent of how the name was typed.

    Attributes
    ----------
    heuristic:
        A registered allocation heuristic (builtin: ``"SQ"``,
        ``"MECT"``, ``"LL"``, ``"Random"``), any case.
    filters:
        ``"none"`` or a ``+``-joined list of registered filter names
        (builtin: ``"en"``, ``"rob"``, ``"en+rob"``), any case.
    seed:
        Master seed; ``None`` keeps the seed of ``config`` (or the
        default configuration's seed).
    num_tasks:
        Tasks per trial; ``None`` keeps the configured workload size.
    config:
        Optional base :class:`SimulationConfig`; ``seed`` and
        ``num_tasks`` override it when given.  ``None`` starts from the
        paper's Section VI defaults.
    name:
        Display name of the scenario (free-form; shows up in catalogs).
    mode:
        ``"trial"`` (default), ``"ensemble"`` or ``"service"`` — what
        :func:`repro.api.run_scenario` executes.
    ensemble:
        :class:`EnsembleSettings`; only meaningful in ensemble mode
        (``None`` there means the defaults).
    service:
        :class:`~repro.service.ServiceConfig`; only meaningful in
        service mode (``None`` there means batch-equivalent replay).
        Must not carry its own ``faults`` / ``fault_policy`` /
        ``shedding`` — declare those at scenario level so one section
        covers trial and service modes alike.
    faults:
        :class:`FaultSettings` injected into trial or service runs.
    shedding:
        :class:`~repro.faults.SheddingConfig` for the admission
        controller, likewise shared across modes.
    """

    heuristic: str = "LL"
    filters: str = "en+rob"
    seed: int | None = None
    num_tasks: int | None = None
    config: SimulationConfig | None = None
    name: str = ""
    mode: str = "trial"
    ensemble: EnsembleSettings | None = None
    service: ServiceConfig | None = None
    faults: FaultSettings | None = None
    shedding: SheddingConfig | None = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(
                self, "heuristic", HEURISTIC_PLUGINS.canonical(self.heuristic)
            )
        except UnknownPluginError as exc:
            raise ValueError(str(exc)) from None
        try:
            object.__setattr__(self, "filters", canonical_variant(self.filters))
        except UnknownPluginError as exc:
            raise ValueError(str(exc)) from None
        except KeyError as exc:
            raise ValueError(f"bad filter variant: {exc.args[0]}") from None
        mode = self.mode.strip().lower()
        if mode not in MODES:
            close = difflib.get_close_matches(mode, MODES, n=1, cutoff=0.5)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ValueError(
                f"unknown scenario mode {self.mode!r}{hint} known: {', '.join(MODES)}"
            )
        object.__setattr__(self, "mode", mode)
        if self.service is not None and (
            self.service.faults is not None
            or self.service.fault_policy is not None
            or self.service.shedding is not None
        ):
            raise ValueError(
                "scenario service config must not embed faults/fault_policy/"
                "shedding; declare scenario-level [faults] / [shedding] instead"
            )
        if self.mode == "ensemble" and (
            (self.faults is not None and self.faults.active)
            or self.shedding is not None
        ):
            raise ValueError(
                "fault injection and shedding are supported in trial and "
                "service modes, not ensembles"
            )

    # -- the pre-scenario api.Scenario surface --------------------------

    @property
    def spec(self) -> VariantSpec:
        """The (heuristic, variant) grid cell this scenario names."""
        return VariantSpec(self.heuristic, self.filters)

    @property
    def label(self) -> str:
        """Display label, e.g. ``"LL/en+rob"``."""
        return self.spec.label

    def resolved_config(self) -> SimulationConfig:
        """The full simulation configuration with overrides applied."""
        config = self.config if self.config is not None else SimulationConfig()
        if self.seed is not None:
            config = config.with_seed(self.seed)
        if self.num_tasks is not None and config.workload.num_tasks != self.num_tasks:
            config = replace(
                config, workload=config.workload.with_num_tasks(self.num_tasks)
            )
        return config

    def build_system(self) -> TrialSystem:
        """Generate the trial environment this scenario describes."""
        return build_trial_system(self.resolved_config())

    # -- run-shape resolution -------------------------------------------

    def resolved_faults(self) -> tuple[FaultSchedule | None, FaultPolicy | None]:
        """The concrete fault layer of this scenario (``(None, None)`` if off)."""
        if self.faults is None:
            return None, None
        return self.faults.resolve(self.resolved_config())

    def resolved_service(self) -> ServiceConfig:
        """The service config with the scenario's fault layer folded in."""
        base = self.service if self.service is not None else ServiceConfig(traffic="replay")
        schedule, policy = self.resolved_faults()
        if schedule is None and policy is None and self.shedding is None:
            return base
        return replace(
            base, faults=schedule, fault_policy=policy, shedding=self.shedding
        )

    def resolved_ensemble(self) -> EnsembleSettings:
        """The ensemble settings (defaults when the section was omitted)."""
        return self.ensemble if self.ensemble is not None else EnsembleSettings()

    # -- serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from a parsed file, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario must be a table, got {type(data).__name__}"
            )
        valid = (
            "format", "name", "mode", "policy", "seed", "num_tasks",
            "sim", "ensemble", "service", "faults", "shedding",
        )
        for key in data:
            if key not in valid:
                raise _unknown_key(key, valid, "scenario")
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ScenarioError(
                f"unsupported scenario format {fmt!r}; this build reads "
                f"{SCENARIO_FORMAT!r}"
            )
        policy = data.get("policy", {})
        if not isinstance(policy, Mapping):
            raise ScenarioError("[policy] must be a table")
        for key in policy:
            if key not in ("heuristic", "filters"):
                raise _unknown_key(key, ("heuristic", "filters"), "[policy]")
        sim = data.get("sim")
        kwargs: dict[str, Any] = {
            "heuristic": policy.get("heuristic", "LL"),
            "filters": policy.get("filters", "en+rob"),
            "seed": data.get("seed"),
            "num_tasks": data.get("num_tasks"),
            "config": _sim_from_dict(sim) if sim is not None else None,
            "name": data.get("name", ""),
            "mode": data.get("mode", "trial"),
        }
        if "ensemble" in data:
            kwargs["ensemble"] = _build_dataclass(
                EnsembleSettings, data["ensemble"], "[ensemble]"
            )
        if "service" in data:
            kwargs["service"] = _build_dataclass(
                ServiceConfig, data["service"], "[service]"
            )
        if "faults" in data:
            kwargs["faults"] = _faults_from_dict(data["faults"])
        if "shedding" in data:
            kwargs["shedding"] = _build_dataclass(
                SheddingConfig, data["shedding"], "[shedding]"
            )
        try:
            return cls(**kwargs)
        except ScenarioError:
            raise
        except ValueError as exc:
            raise ScenarioError(str(exc)) from exc

    def to_dict(self) -> dict[str, Any]:
        """The sparse, file-shaped dict (only non-default values)."""
        out: dict[str, Any] = {"format": SCENARIO_FORMAT}
        if self.name:
            out["name"] = self.name
        out["mode"] = self.mode
        out["policy"] = {"heuristic": self.heuristic, "filters": self.filters}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.num_tasks is not None:
            out["num_tasks"] = self.num_tasks
        if self.config is not None:
            out["sim"] = _sim_to_dict(self.config)
        if self.ensemble is not None:
            out["ensemble"] = _dataclass_to_dict(self.ensemble)
        if self.service is not None:
            out["service"] = _dataclass_to_dict(self.service)
        if self.faults is not None:
            out["faults"] = _faults_to_dict(self.faults)
        if self.shedding is not None:
            out["shedding"] = _dataclass_to_dict(self.shedding)
        return out

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        suffix = path.suffix.lower()
        text = path.read_text(encoding="utf-8")
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ScenarioError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise ScenarioError(
                f"unsupported scenario file type {suffix or path.name!r} "
                "(use .toml or .json)"
            )
        try:
            return cls.from_dict(data)
        except ScenarioError as exc:
            raise ScenarioError(f"{path}: {exc}") from exc

    def to_toml(self) -> str:
        """The canonical TOML rendering of :meth:`to_dict`."""
        return _toml_dumps(self.to_dict())

    def to_json(self) -> str:
        """The canonical JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def to_file(self, path: str | Path) -> Path:
        """Write the scenario as ``.toml`` or ``.json``; returns the path."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".toml":
            text = self.to_toml()
        elif suffix == ".json":
            text = self.to_json()
        else:
            raise ScenarioError(
                f"unsupported scenario file type {suffix or path.name!r} "
                "(use .toml or .json)"
            )
        path.write_text(text, encoding="utf-8")
        return path

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form; stable across round trips."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Minimal TOML emitter (tomllib is read-only); covers the scenario
# schema: scalar keys, nested tables, arrays of tables.
# ----------------------------------------------------------------------


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ScenarioError(f"non-finite float {value!r} is not serializable")
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ScenarioError(f"cannot serialize {type(value).__name__} to TOML")


def _emit_table(lines: list[str], prefix: str, table: Mapping[str, Any]) -> None:
    tables: list[tuple[str, Mapping[str, Any]]] = []
    arrays: list[tuple[str, list[Any]]] = []
    for key, value in table.items():
        if isinstance(value, Mapping):
            tables.append((key, value))
        elif isinstance(value, (list, tuple)) and all(
            isinstance(item, Mapping) for item in value
        ) and value:
            arrays.append((key, list(value)))
        else:
            lines.append(f"{key} = {_toml_value(value)}")
    for key, sub in tables:
        dotted = f"{prefix}{key}"
        lines.extend(("", f"[{dotted}]"))
        _emit_table(lines, dotted + ".", sub)
    for key, items in arrays:
        dotted = f"{prefix}{key}"
        for item in items:
            lines.extend(("", f"[[{dotted}]]"))
            _emit_table(lines, dotted + ".", item)


def _toml_dumps(data: Mapping[str, Any]) -> str:
    lines: list[str] = []
    _emit_table(lines, "", data)
    return "\n".join(lines) + "\n"
