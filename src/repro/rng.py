"""Hierarchical, reproducible random-number streams.

Every stochastic component of the simulator (cluster generation, CVB
execution-time matrix, arrival process, actual execution-time draws, the
Random heuristic, ...) draws from its own independent
:class:`numpy.random.Generator`.  Streams are derived from a single master
seed plus a tuple of string/integer keys via :class:`numpy.random.SeedSequence`
spawn keys, so:

* two streams with different keys are statistically independent,
* the same ``(master_seed, *keys)`` always yields the same stream,
* adding a new component never perturbs the draws of existing components
  (no shared global generator).

This is the idiom recommended for parallel/ensemble scientific codes: each
trial of an ensemble derives its streams from ``(master_seed, "trial", i)``
and may run in any order or in parallel without correlation.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["key_to_ints", "seed_sequence", "stream", "spawn_trial_seed"]

# Upper bound for 32-bit words fed to SeedSequence spawn keys.
_U32 = 2**32


def key_to_ints(key: str | int) -> tuple[int, ...]:
    """Map a stream key to a deterministic tuple of 32-bit integers.

    Strings hash through CRC32 (stable across processes and Python
    versions, unlike :func:`hash`); integers are split into 32-bit words.
    """
    if isinstance(key, str):
        return (zlib.crc32(key.encode("utf-8")) % _U32,)
    if isinstance(key, (int, np.integer)):
        value = int(key)
        if value < 0:
            raise ValueError(f"stream keys must be non-negative, got {value}")
        words = []
        while True:
            words.append(value % _U32)
            value //= _U32
            if value == 0:
                break
        return tuple(words)
    raise TypeError(f"stream keys must be str or int, got {type(key).__name__}")


def seed_sequence(master_seed: int, keys: Iterable[str | int]) -> np.random.SeedSequence:
    """Build the :class:`~numpy.random.SeedSequence` for a named stream."""
    spawn_key: tuple[int, ...] = ()
    for key in keys:
        spawn_key += key_to_ints(key)
    return np.random.SeedSequence(entropy=master_seed, spawn_key=spawn_key)


def stream(master_seed: int, *keys: str | int) -> np.random.Generator:
    """Return the independent generator identified by ``(master_seed, *keys)``.

    Examples
    --------
    >>> g1 = stream(1234, "arrivals", 0)
    >>> g2 = stream(1234, "arrivals", 0)
    >>> float(g1.random()) == float(g2.random())
    True
    """
    return np.random.default_rng(seed_sequence(master_seed, keys))


def spawn_trial_seed(master_seed: int, trial_index: int) -> int:
    """Derive a scalar sub-seed for one ensemble trial.

    The returned integer can itself serve as the ``master_seed`` of all
    streams inside the trial, which keeps per-trial code oblivious to the
    ensemble layer.
    """
    ss = seed_sequence(master_seed, ("trial", trial_index))
    return int(ss.generate_state(1, dtype=np.uint64)[0])
