"""Bursty Poisson arrival process (paper Section VI).

A trial's arrivals are a Poisson process whose rate switches with task
index: the first ``burst_head`` tasks arrive at the fast rate, the next
``lull`` tasks at the slow rate, and the final ``burst_tail`` tasks at the
fast rate again.  The fast rate oversubscribes the system; the slow rate
undersubscribes it, giving filters room to conserve energy.

The equilibrium rate is the arrival rate at which the system is "perfectly
subscribed".  The paper calibrated 1/28 for its sampled system; by default
we derive it from the generated system as ``total_cores / t_avg`` (each of
``C`` cores retires on average one task per ``t_avg`` time units) and keep
the paper's fast/slow ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LambdaMode, WorkloadConfig

__all__ = [
    "ArrivalRates",
    "derive_rates",
    "per_task_rates",
    "burst_schedule",
    "bursty_poisson_arrivals",
    "phase_of_task",
]


@dataclass(frozen=True)
class ArrivalRates:
    """The (equilibrium, fast, slow) Poisson-rate triple."""

    eq: float
    fast: float
    slow: float

    def __post_init__(self) -> None:
        if not (0.0 < self.slow < self.eq < self.fast):
            raise ValueError("rates must satisfy 0 < slow < eq < fast")


def derive_rates(cfg: WorkloadConfig, num_cores: int, t_avg: float) -> ArrivalRates:
    """Compute the rate triple per the configured :class:`LambdaMode`."""
    if cfg.lambda_mode is LambdaMode.PAPER:
        eq = cfg.lambda_eq_paper
    else:
        if num_cores < 1 or t_avg <= 0.0:
            raise ValueError("need a positive core count and t_avg to derive rates")
        eq = num_cores / t_avg
    return ArrivalRates(eq=eq, fast=cfg.fast_ratio * eq, slow=cfg.slow_ratio * eq)


def phase_of_task(cfg: WorkloadConfig, task_index: int) -> str:
    """Which arrival phase a task index falls in: 'head', 'lull' or 'tail'."""
    if task_index < cfg.burst_head:
        return "head"
    if task_index < cfg.burst_head + cfg.lull_tasks:
        return "lull"
    return "tail"


def per_task_rates(cfg: WorkloadConfig, rates: ArrivalRates) -> np.ndarray:
    """The arrival rate in effect for each task index (fast/slow/fast)."""
    per_task_rate = np.empty(cfg.num_tasks)
    per_task_rate[: cfg.burst_head] = rates.fast
    per_task_rate[cfg.burst_head : cfg.burst_head + cfg.lull_tasks] = rates.slow
    per_task_rate[cfg.num_tasks - cfg.burst_tail :] = rates.fast
    return per_task_rate


def burst_schedule(cfg: WorkloadConfig, rates: ArrivalRates) -> list[tuple[float, float]]:
    """The burst profile as ``(expected duration, rate)`` segments.

    The batch generator switches rate by *task index*; a time-driven
    stream (:func:`repro.workload.traffic.piecewise_times`) needs
    durations, so each phase is given its expected length ``count /
    rate``.  Cycling this schedule yields an open-ended traffic pattern
    with the paper's fast/slow/fast cadence.
    """
    return [
        (cfg.burst_head / rates.fast, rates.fast),
        (cfg.lull_tasks / rates.slow, rates.slow),
        (cfg.burst_tail / rates.fast, rates.fast),
    ]


def bursty_poisson_arrivals(
    cfg: WorkloadConfig, rates: ArrivalRates, rng: np.random.Generator
) -> np.ndarray:
    """Sample the ``num_tasks`` arrival times of one trial.

    Inter-arrival gaps are exponential with the phase's rate; the process
    starts at time zero (the first task arrives after one fast-rate gap).
    """
    gaps = rng.exponential(scale=1.0 / per_task_rates(cfg, rates))
    return np.cumsum(gaps)
