"""Expected Time-to-Compute matrix wrapper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ETCMatrix"]


@dataclass(frozen=True)
class ETCMatrix:
    """Mean base (P0) execution times per (task type, node).

    The CVB matrix gives the mean execution time of each task type on
    each node at the highest-performance P-state; deeper P-states scale
    these means by the node's execution-time multipliers.
    """

    means: np.ndarray  # (num_task_types, num_nodes)

    def __post_init__(self) -> None:
        means = np.asarray(self.means, dtype=np.float64)
        if means.ndim != 2:
            raise ValueError("means must be 2-D (task types x nodes)")
        if np.any(means <= 0.0) or not np.all(np.isfinite(means)):
            raise ValueError("means must be finite and positive")
        means = means.copy()
        means.setflags(write=False)
        object.__setattr__(self, "means", means)

    @property
    def num_task_types(self) -> int:
        """Number of task types (rows)."""
        return int(self.means.shape[0])

    @property
    def num_nodes(self) -> int:
        """Number of nodes (columns)."""
        return int(self.means.shape[1])

    def mean_of_type(self, type_id: int) -> float:
        """Mean base execution time of one task type across nodes."""
        return float(self.means[type_id].mean())

    def overall_mean(self) -> float:
        """Mean base execution time over all types and nodes."""
        return float(self.means.mean())
