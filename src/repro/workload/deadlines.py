"""Deadline assignment (paper Section VI).

Each task's deadline is the sum of

* its arrival time,
* the average execution time of its task type over all machines and all
  P-states, and
* a constant "load factor" representing the anticipated waiting time —
  the average execution time ``t_avg`` over all types, machines and
  P-states (scaled by ``load_factor_mult``, 1.0 in the paper).

Deadlines are deliberately tight: the actual wait exceeds ``t_avg`` during
fast-rate bursts, so some misses are unavoidable — the heuristics compete
on how few.
"""

from __future__ import annotations

import numpy as np

from repro.config import WorkloadConfig

__all__ = ["assign_deadlines"]


def assign_deadlines(
    cfg: WorkloadConfig,
    arrivals: np.ndarray,
    type_ids: np.ndarray,
    mean_exec_per_type: np.ndarray,
    t_avg: float,
) -> np.ndarray:
    """Vector of deadlines for a trial's tasks.

    Parameters
    ----------
    arrivals:
        Arrival times, shape ``(num_tasks,)``.
    type_ids:
        Task-type index per task.
    mean_exec_per_type:
        Per-type average execution time over nodes and P-states.
    t_avg:
        Overall average execution time (the load factor).
    """
    if arrivals.shape != type_ids.shape:
        raise ValueError("arrivals and type_ids must align")
    if t_avg <= 0.0:
        raise ValueError("t_avg must be positive")
    return arrivals + mean_exec_per_type[type_ids] + cfg.load_factor_mult * t_avg
