"""Execution-time pmfs for every (task type, node, P-state) combination.

The paper assumes "we are provided an execution-time probability mass
function for each task type executing on a single core of each node in
each P-state".  :class:`ExecutionTimeTable` realizes that assumption: the
pmf of type ``t`` on node ``n`` in state ``pi`` is a discretized gamma
with mean ``etc[t, n] * exec_multiplier[n, pi]`` and a configurable
coefficient of variation.

The table also precomputes everything the vectorized mapping hot path
needs:

* ``eet[t, n, pi]``  — expected execution times (pmf means);
* ``eec[t, n, pi]``  — expected energy consumption
  (``eet * mu(n, pi) / epsilon(n)``, Section V-A);
* per ``(t, n)`` padded ``(num_pstates, L)`` impulse time/probability
  matrices, letting one NumPy pass score all P-states of a core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.config import GridConfig
from repro.stoch.distributions import discretized_gamma
from repro.stoch.pmf import PMF
from repro.workload.etc_matrix import ETCMatrix

__all__ = ["ExecutionTimeTable", "PaddedPMFMatrix"]


@dataclass(frozen=True)
class PaddedPMFMatrix:
    """All P-state pmfs of one (type, node) pair as padded 2-D arrays.

    Rows are P-states; padding entries carry zero probability (their time
    values repeat the row's last impulse so array math stays finite).
    """

    times: np.ndarray  # (num_pstates, L)
    probs: np.ndarray  # (num_pstates, L)


class ExecutionTimeTable:
    """Pmfs plus derived expectation tables for the whole workload."""

    def __init__(
        self,
        etc: ETCMatrix,
        cluster: ClusterSpec,
        grid: GridConfig,
        exec_cv: float,
    ) -> None:
        if exec_cv <= 0.0:
            raise ValueError("exec_cv must be positive")
        if etc.num_nodes != cluster.num_nodes:
            raise ValueError("ETC matrix width must match the cluster's node count")
        self._etc = etc
        self._cluster = cluster
        self._grid = grid
        self._exec_cv = float(exec_cv)

        T, N, P = etc.num_task_types, cluster.num_nodes, cluster.num_pstates
        mult = cluster.exec_multiplier_table()  # (N, P)
        power = cluster.power_table()  # (N, P)
        eff = cluster.efficiency_vector()  # (N,)

        pmfs: list[list[list[PMF]]] = []
        eet = np.empty((T, N, P))
        padded: list[list[PaddedPMFMatrix]] = []
        for t in range(T):
            row_pmfs: list[list[PMF]] = []
            row_padded: list[PaddedPMFMatrix] = []
            for n in range(N):
                cell: list[PMF] = []
                for pi in range(P):
                    mean = float(etc.means[t, n] * mult[n, pi])
                    pmf = discretized_gamma(
                        mean, exec_cv, grid.dt, tail_sigmas=grid.tail_sigmas
                    )
                    cell.append(pmf)
                    eet[t, n, pi] = pmf.mean()
                row_pmfs.append(cell)
                row_padded.append(_pad(cell))
            pmfs.append(row_pmfs)
            padded.append(row_padded)

        self._pmfs = pmfs
        self._padded = padded
        self._eet = eet
        self._eet.setflags(write=False)
        eec = eet * (power / eff[:, None])[None, :, :]
        eec.setflags(write=False)
        self._eec = eec

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster this table was built against."""
        return self._cluster

    @property
    def etc(self) -> ETCMatrix:
        """The underlying mean-time matrix."""
        return self._etc

    @property
    def grid(self) -> GridConfig:
        """Grid configuration of every pmf in the table."""
        return self._grid

    @property
    def exec_cv(self) -> float:
        """Coefficient of variation of each execution-time pmf."""
        return self._exec_cv

    def pmf(self, type_id: int, node: int, pstate: int) -> PMF:
        """Execution-time pmf of a (type, node, P-state) combination."""
        return self._pmfs[type_id][node][pstate]

    def padded(self, type_id: int, node: int) -> PaddedPMFMatrix:
        """Padded per-P-state impulse matrices of a (type, node) pair."""
        return self._padded[type_id][node]

    @property
    def eet(self) -> np.ndarray:
        """Expected execution times, shape (types, nodes, pstates)."""
        return self._eet

    @property
    def eec(self) -> np.ndarray:
        """Expected energy consumptions (joules), same shape as ``eet``."""
        return self._eec

    # ------------------------------------------------------------------
    # Aggregates used by the simulation environment (Section VI)
    # ------------------------------------------------------------------

    def t_avg(self) -> float:
        """Average execution time over all types, nodes and P-states."""
        return float(self._eet.mean())

    def mean_exec_of_type(self, type_id: int) -> float:
        """Average execution time of one type over nodes and P-states."""
        return float(self._eet[type_id].mean())

    def mean_exec_per_type(self) -> np.ndarray:
        """Vector of per-type averages (types,)."""
        return self._eet.mean(axis=(1, 2))


def _pad(cell: list[PMF]) -> PaddedPMFMatrix:
    """Pad a list of pmfs into rectangular (P, L) time/prob matrices."""
    length = max(len(p) for p in cell)
    P = len(cell)
    times = np.empty((P, length))
    probs = np.zeros((P, length))
    for pi, pmf in enumerate(cell):
        n = len(pmf)
        times[pi, :n] = pmf.times
        times[pi, n:] = pmf.stop
        probs[pi, :n] = pmf.probs
    times.setflags(write=False)
    probs.setflags(write=False)
    return PaddedPMFMatrix(times=times, probs=probs)
