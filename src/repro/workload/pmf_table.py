"""Execution-time pmfs for every (task type, node, P-state) combination.

The paper assumes "we are provided an execution-time probability mass
function for each task type executing on a single core of each node in
each P-state".  :class:`ExecutionTimeTable` realizes that assumption: the
pmf of type ``t`` on node ``n`` in state ``pi`` is a discretized gamma
with mean ``etc[t, n] * exec_multiplier[n, pi]`` and a configurable
coefficient of variation.

The table also precomputes everything the vectorized mapping hot path
needs:

* ``eet[t, n, pi]``  — expected execution times (pmf means);
* ``eec[t, n, pi]``  — expected energy consumption
  (``eet * mu(n, pi) / epsilon(n)``, Section V-A);
* per ``(t, n)`` padded ``(num_pstates, L)`` impulse time/probability
  matrices, letting one NumPy pass score all P-states of a core.

Construction cost matters: the table is rebuilt per trial per worker,
and at paper scale it holds T*N*P = 4,000 discretized gammas.  The
default ``batch=True`` path evaluates every cell through one vectorized
:func:`~repro.stoch.distributions.discretized_gamma_batch` call (a
single scipy CDF round trip instead of 4,000) and defers the padded
matrices to first :meth:`padded` access — the mapper only ever asks for
the task types that actually arrive.  Both are results-neutral: the
batch constructor is bitwise identical per cell, and padding is a pure
function of the cell's pmfs whenever it runs.  ``batch=False`` keeps
the reference per-cell loop for the perf-layer ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.config import GridConfig
from repro.stoch.distributions import discretized_gamma, discretized_gamma_batch
from repro.stoch.pmf import PMF
from repro.workload.etc_matrix import ETCMatrix

__all__ = ["ExecutionTimeTable", "PaddedPMFMatrix"]


@dataclass(frozen=True)
class PaddedPMFMatrix:
    """All P-state pmfs of one (type, node) pair as padded 2-D arrays.

    Rows are P-states; padding entries carry zero probability (their time
    values repeat the row's last impulse so array math stays finite).
    """

    times: np.ndarray  # (num_pstates, L)
    probs: np.ndarray  # (num_pstates, L)


class ExecutionTimeTable:
    """Pmfs plus derived expectation tables for the whole workload."""

    def __init__(
        self,
        etc: ETCMatrix,
        cluster: ClusterSpec,
        grid: GridConfig,
        exec_cv: float,
        *,
        batch: bool = True,
    ) -> None:
        if exec_cv <= 0.0:
            raise ValueError("exec_cv must be positive")
        if etc.num_nodes != cluster.num_nodes:
            raise ValueError("ETC matrix width must match the cluster's node count")
        self._etc = etc
        self._cluster = cluster
        self._grid = grid
        self._exec_cv = float(exec_cv)

        T, N, P = etc.num_task_types, cluster.num_nodes, cluster.num_pstates
        mult = cluster.exec_multiplier_table()  # (N, P)
        power = cluster.power_table()  # (N, P)
        eff = cluster.efficiency_vector()  # (N,)

        eet = np.empty((T, N, P))
        if batch:
            # One vectorized discretization pass over all T*N*P cells.
            # The broadcast product's element (t, n, pi) is the same
            # two-scalar multiply the reference loop evaluates.
            means = (etc.means[:, :, None] * mult[None, :, :]).ravel()
            flat = discretized_gamma_batch(
                means, exec_cv, grid.dt, tail_sigmas=grid.tail_sigmas
            )
            pmfs = [
                [flat[(t * N + n) * P : (t * N + n) * P + P] for n in range(N)]
                for t in range(T)
            ]
            eet_flat = eet.reshape(-1)
            for i, pmf in enumerate(flat):
                eet_flat[i] = pmf.mean()
        else:
            pmfs = []
            for t in range(T):
                row_pmfs: list[list[PMF]] = []
                for n in range(N):
                    cell: list[PMF] = []
                    for pi in range(P):
                        mean = float(etc.means[t, n] * mult[n, pi])
                        pmf = discretized_gamma(
                            mean, exec_cv, grid.dt, tail_sigmas=grid.tail_sigmas
                        )
                        cell.append(pmf)
                        eet[t, n, pi] = pmf.mean()
                    row_pmfs.append(cell)
                pmfs.append(row_pmfs)

        self._pmfs = pmfs
        # Padded matrices are built lazily per (type, node) on first
        # padded() access; most task types of a finite trial never
        # arrive, so eager padding is pure waste.
        self._padded: list[list[PaddedPMFMatrix | None]] = [
            [None] * N for _ in range(T)
        ]
        self._eet = eet
        self._eet.setflags(write=False)
        eec = eet * (power / eff[:, None])[None, :, :]
        eec.setflags(write=False)
        self._eec = eec

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster this table was built against."""
        return self._cluster

    @property
    def etc(self) -> ETCMatrix:
        """The underlying mean-time matrix."""
        return self._etc

    @property
    def grid(self) -> GridConfig:
        """Grid configuration of every pmf in the table."""
        return self._grid

    @property
    def exec_cv(self) -> float:
        """Coefficient of variation of each execution-time pmf."""
        return self._exec_cv

    def pmf(self, type_id: int, node: int, pstate: int) -> PMF:
        """Execution-time pmf of a (type, node, P-state) combination."""
        return self._pmfs[type_id][node][pstate]

    def padded(self, type_id: int, node: int) -> PaddedPMFMatrix:
        """Padded per-P-state impulse matrices of a (type, node) pair.

        Built on first access and memoized; ``_pad`` is deterministic in
        the cell's pmfs, so lazy construction is results-neutral.
        """
        pad = self._padded[type_id][node]
        if pad is None:
            pad = _pad(self._pmfs[type_id][node])
            self._padded[type_id][node] = pad
        return pad

    @property
    def eet(self) -> np.ndarray:
        """Expected execution times, shape (types, nodes, pstates)."""
        return self._eet

    @property
    def eec(self) -> np.ndarray:
        """Expected energy consumptions (joules), same shape as ``eet``."""
        return self._eec

    # ------------------------------------------------------------------
    # Aggregates used by the simulation environment (Section VI)
    # ------------------------------------------------------------------

    def t_avg(self) -> float:
        """Average execution time over all types, nodes and P-states."""
        return float(self._eet.mean())

    def mean_exec_of_type(self, type_id: int) -> float:
        """Average execution time of one type over nodes and P-states."""
        return float(self._eet[type_id].mean())

    def mean_exec_per_type(self) -> np.ndarray:
        """Vector of per-type averages (types,)."""
        return self._eet.mean(axis=(1, 2))


def _pad(cell: list[PMF]) -> PaddedPMFMatrix:
    """Pad a list of pmfs into rectangular (P, L) time/prob matrices."""
    length = max(len(p) for p in cell)
    P = len(cell)
    times = np.empty((P, length))
    probs = np.zeros((P, length))
    for pi, pmf in enumerate(cell):
        n = len(pmf)
        times[pi, :n] = pmf.times
        times[pi, n:] = pmf.stop
        probs[pi, :n] = pmf.probs
    times.setflags(write=False)
    probs.setflags(write=False)
    return PaddedPMFMatrix(times=times, probs=probs)
