"""CVB heterogeneity: the gamma-based ETC generation method of [AlS00].

The Coefficient-of-Variation Based method generates an Expected
Time-to-Compute matrix ``e(t, m)`` (task type ``t`` on machine ``m``) in
two stages:

1. a task vector ``q[t] ~ Gamma(alpha_task, beta_task)`` with mean
   ``mu_task`` and coefficient of variation ``V_task`` captures how much
   task types differ from each other;
2. each row is expanded across machines with
   ``e(t, m) ~ Gamma(alpha_mach, q[t] / alpha_mach)`` (mean ``q[t]``,
   coefficient of variation ``V_mach``), capturing machine heterogeneity.

Because every entry is sampled independently within its row, the matrix
is *inconsistent* in the sense of [AlS00]: machine A being faster than B
for one task type implies nothing for other types — exactly the
heterogeneity model the paper assumes (Section III-A).
"""

from __future__ import annotations

import numpy as np

__all__ = ["cvb_etc_matrix"]


def cvb_etc_matrix(
    num_task_types: int,
    num_machines: int,
    mu_task: float,
    v_task: float,
    v_mach: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a ``(num_task_types, num_machines)`` inconsistent ETC matrix.

    Parameters mirror [AlS00]: ``mu_task`` is the overall mean execution
    time, ``v_task`` the across-type coefficient of variation, ``v_mach``
    the across-machine coefficient of variation.
    """
    if num_task_types < 1 or num_machines < 1:
        raise ValueError("matrix dimensions must be >= 1")
    if mu_task <= 0.0 or v_task <= 0.0 or v_mach <= 0.0:
        raise ValueError("mu_task, v_task and v_mach must be positive")
    alpha_task = 1.0 / (v_task * v_task)
    beta_task = mu_task / alpha_task
    q = rng.gamma(shape=alpha_task, scale=beta_task, size=num_task_types)
    alpha_mach = 1.0 / (v_mach * v_mach)
    # scale per row: q[t] / alpha_mach keeps the row mean at q[t].
    scales = q[:, None] / alpha_mach
    etc = rng.gamma(shape=alpha_mach, scale=scales, size=(num_task_types, num_machines))
    # Gamma support is (0, inf) but guard against denormal draws that
    # would produce empty pmfs downstream.
    return np.maximum(etc, 1e-6 * mu_task)
