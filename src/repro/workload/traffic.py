"""Lazy open-loop traffic generators for continuous-service mode.

The batch workload materializes every arrival up front
(:func:`~repro.workload.arrivals.bursty_poisson_arrivals`); an always-on
service cannot.  This module generates arrival *streams* — unbounded
iterators of arrival times, and of :class:`~repro.workload.task.Task`
objects stamped from them — pulled one event at a time by the engine's
lazy event loop.

Time streams
------------
* :func:`poisson_times` — homogeneous Poisson at a fixed rate.
* :func:`piecewise_times` — nonhomogeneous Poisson with a
  piecewise-constant rate schedule, optionally cycled (diurnal).
* :func:`diurnal_times` — two-phase day/night convenience wrapper.
* :func:`mmpp_times` — Markov-modulated Poisson (random exponential
  dwells per modulation state; bursty on/off traffic).
* :func:`surge_times` — a base rate with multiplicative surge windows
  at fixed instants (the overload stimulus for shedding studies).
* :func:`trace_times` — replay a recorded trace, validating monotonicity.
* :func:`merge_times` / :func:`splice_times` — combine streams while
  preserving monotone arrival order.

All generators draw from a caller-supplied :class:`numpy.random.Generator`
(derive one with :func:`repro.rng.stream`), one scalar draw per event, so
a stream's prefix is bitwise-reproducible for a fixed seed regardless of
how far it is consumed.  The nonhomogeneous generators integrate the
hazard of unit-exponential draws across segment boundaries, so a
single-segment schedule of infinite duration reproduces
:func:`poisson_times` bit for bit.

Task streams
------------
:class:`TaskFactory` stamps a time stream into tasks, drawing the type of
each task from its own sub-stream and assigning the paper's deadline
(Section VI: arrival + per-type mean execution time + load factor).
:func:`replay_tasks` wraps an existing materialized workload as a stream,
reducing the service loop to batch semantics.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.config import WorkloadConfig
from repro.registry import TrafficContext, register_traffic
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.task import Task

__all__ = [
    "TrafficContext",
    "poisson_times",
    "piecewise_times",
    "diurnal_times",
    "mmpp_times",
    "surge_times",
    "trace_times",
    "merge_times",
    "splice_times",
    "TaskFactory",
    "replay_tasks",
]


def poisson_times(
    rate: float, rng: np.random.Generator, *, start: float = 0.0
) -> Iterator[float]:
    """Unbounded homogeneous Poisson arrival times.

    The first arrival is one exponential gap after ``start`` (matching
    the batch generator, whose process starts at time zero).
    """
    if not (rate > 0.0):
        raise ValueError(f"rate must be positive, got {rate}")
    t = float(start)
    while True:
        t += float(rng.standard_exponential()) / rate
        yield t


def _nhpp(
    segments: Iterator[tuple[float, float]], rng: np.random.Generator, start: float
) -> Iterator[float]:
    """Nonhomogeneous Poisson times over ``(segment_end, rate)`` pieces.

    Each unit-exponential draw is one unit of hazard, spent across
    segments at their rates; a segment of rate zero contributes nothing.
    The iterator ends when the segments do.
    """
    try:
        seg_end, rate = next(segments)
    except StopIteration:
        return
    t = float(start)
    while True:
        need = float(rng.standard_exponential())
        while True:
            if rate > 0.0:
                nt = t + need / rate
                if nt < seg_end:
                    t = nt
                    break
                need -= (seg_end - t) * rate
            elif math.isinf(seg_end):
                return  # zero rate forever: no further arrivals
            t = seg_end
            try:
                seg_end, rate = next(segments)
            except StopIteration:
                return
        yield t


def piecewise_times(
    schedule: Sequence[tuple[float, float]],
    rng: np.random.Generator,
    *,
    cycle: bool = False,
    start: float = 0.0,
) -> Iterator[float]:
    """Arrival times of a piecewise-constant-rate Poisson process.

    ``schedule`` is a sequence of ``(duration, rate)`` segments laid out
    from ``start``; with ``cycle=True`` it repeats forever (a diurnal
    profile).  Rates may be zero (a quiet segment); the final duration
    may be ``inf`` for a non-cycled open-ended tail.
    """
    sched = [(float(d), float(r)) for d, r in schedule]
    if not sched:
        raise ValueError("schedule must have at least one segment")
    for dur, rate in sched:
        if not (dur > 0.0):
            raise ValueError(f"segment durations must be positive, got {dur}")
        if rate < 0.0:
            raise ValueError(f"rates must be non-negative, got {rate}")
    if cycle:
        if any(math.isinf(d) for d, _ in sched):
            raise ValueError("a cycled schedule needs finite durations")
        if all(r == 0.0 for _, r in sched):
            raise ValueError("a cycled schedule needs at least one positive rate")

    def segments() -> Iterator[tuple[float, float]]:
        t0 = float(start)
        pieces = itertools.cycle(sched) if cycle else iter(sched)
        for dur, rate in pieces:
            t0 += dur
            yield t0, rate

    return _nhpp(segments(), rng, start)


def diurnal_times(
    mean_rate: float,
    rng: np.random.Generator,
    *,
    period: float,
    swing: float = 0.75,
    start: float = 0.0,
) -> Iterator[float]:
    """Two-phase day/night cycle around ``mean_rate``.

    Each period spends half its length at ``(1 + swing)`` times the mean
    rate and half at ``(1 - swing)`` times it, so the long-run mean rate
    is ``mean_rate`` for any ``swing`` in ``[0, 1)``.
    """
    if not (mean_rate > 0.0):
        raise ValueError(f"mean_rate must be positive, got {mean_rate}")
    if not (period > 0.0):
        raise ValueError(f"period must be positive, got {period}")
    if not (0.0 <= swing < 1.0):
        raise ValueError(f"swing must be in [0, 1), got {swing}")
    half = period / 2.0
    schedule = [(half, mean_rate * (1.0 + swing)), (half, mean_rate * (1.0 - swing))]
    return piecewise_times(schedule, rng, cycle=True, start=start)


def mmpp_times(
    rates: Sequence[float],
    dwell_means: Sequence[float],
    rng: np.random.Generator,
    *,
    start: float = 0.0,
) -> Iterator[float]:
    """Markov-modulated Poisson process cycling its modulation states.

    State ``s`` emits Poisson arrivals at ``rates[s]`` for an
    exponential dwell of mean ``dwell_means[s]``, then hands over to the
    next state (wrapping around) — for two states this is the classic
    on/off burst model.  Dwell draws and arrival draws interleave on the
    single ``rng``, so the whole process is one reproducible stream.
    """
    rate_vec = [float(r) for r in rates]
    dwell_vec = [float(d) for d in dwell_means]
    if len(rate_vec) != len(dwell_vec) or not rate_vec:
        raise ValueError("rates and dwell_means must be equal-length and non-empty")
    if any(r < 0.0 for r in rate_vec) or all(r == 0.0 for r in rate_vec):
        raise ValueError("rates must be non-negative with at least one positive")
    if any(not d > 0.0 for d in dwell_vec):
        raise ValueError("dwell means must be positive")

    def segments() -> Iterator[tuple[float, float]]:
        t0 = float(start)
        for state in itertools.cycle(range(len(rate_vec))):
            t0 += dwell_vec[state] * float(rng.standard_exponential())
            yield t0, rate_vec[state]

    return _nhpp(segments(), rng, start)


def surge_times(
    base_rate: float,
    surges: Sequence[tuple[float, float, float]],
    rng: np.random.Generator,
    *,
    start: float = 0.0,
) -> Iterator[float]:
    """A base-rate Poisson stream with multiplicative surge windows.

    ``surges`` is a sequence of ``(at, duration, mult)`` triples: from
    time ``at`` for ``duration``, arrivals come at ``base_rate * mult``.
    Surges must be disjoint and time-ordered; between them the stream
    runs at ``base_rate`` (forever after the last one).  ``mult`` may be
    large (the overload stimulus a shedding study throws at the
    admission controller) or zero (a brownout).  Compiles to a
    :func:`piecewise_times`-style segment walk, so a surge-free call
    reproduces :func:`poisson_times` bit for bit.
    """
    if not (base_rate > 0.0):
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    windows = [(float(a), float(d), float(m)) for a, d, m in surges]
    prev_end = float(start)
    for at, dur, mult in windows:
        if at < prev_end:
            raise ValueError("surge windows must be disjoint and time-ordered")
        if not (dur > 0.0):
            raise ValueError(f"surge durations must be positive, got {dur}")
        if mult < 0.0:
            raise ValueError(f"surge multipliers must be non-negative, got {mult}")
        prev_end = at + dur

    def segments() -> Iterator[tuple[float, float]]:
        for at, dur, mult in windows:
            yield at, base_rate
            yield at + dur, base_rate * mult
        yield math.inf, base_rate

    return _nhpp(segments(), rng, start)


def trace_times(times: Iterable[float]) -> Iterator[float]:
    """Replay a recorded arrival-time trace, validating monotonicity."""
    last = -math.inf
    for raw in times:
        t = float(raw)
        if t < last:
            raise ValueError(f"trace arrival times must be non-decreasing: {t} < {last}")
        last = t
        yield t


def merge_times(*streams: Iterable[float]) -> Iterator[float]:
    """Merge monotone time streams into one monotone stream (lazy)."""
    return heapq.merge(*streams)


def splice_times(
    first: Iterable[float], second: Iterable[float], *, at: float
) -> Iterator[float]:
    """``first``'s arrivals before ``at``, then ``second``'s from ``at`` on.

    Models a regime change (e.g. a traffic model swapped mid-run).  Both
    inputs must be monotone; the output then is too.
    """
    for t in first:
        if t >= at:
            break
        yield t
    for t in second:
        if t >= at:
            yield t


@dataclass(frozen=True)
class TaskFactory:
    """Stamps arrival times into :class:`Task` streams.

    Types are drawn uniformly (as in the batch workload) from ``type_rng``
    one task at a time; deadlines follow the Section VI model — arrival
    plus the type's mean execution time plus the ``t_avg`` load factor —
    matching :func:`~repro.workload.deadlines.assign_deadlines` exactly.
    """

    cfg: WorkloadConfig
    mean_exec_per_type: np.ndarray
    t_avg: float

    @staticmethod
    def for_table(cfg: WorkloadConfig, table: ExecutionTimeTable) -> "TaskFactory":
        """Build from an execution-time table's per-type means."""
        return TaskFactory(
            cfg=cfg, mean_exec_per_type=table.mean_exec_per_type(), t_avg=table.t_avg()
        )

    def stream(
        self,
        times: Iterable[float],
        type_rng: np.random.Generator,
        *,
        start_id: int = 0,
    ) -> Iterator[Task]:
        """Lazily yield tasks with dense ids from ``start_id``."""
        load = self.cfg.load_factor_mult * self.t_avg
        num_types = self.cfg.num_task_types
        for task_id, t in enumerate(times, start=start_id):
            type_id = int(type_rng.integers(0, num_types))
            arrival = float(t)
            deadline = float(arrival + self.mean_exec_per_type[type_id] + load)
            yield Task(
                task_id=task_id, type_id=type_id, arrival=arrival, deadline=deadline
            )


def replay_tasks(tasks: Iterable[Task]) -> Iterator[Task]:
    """A finite stream replaying prebuilt tasks (batch-equivalent)."""
    return iter(tasks)


# ----------------------------------------------------------------------
# Traffic plugins: the service layer's arrival-stream construction
# ----------------------------------------------------------------------
#
# Each factory takes a :class:`repro.registry.TrafficContext` and returns
# the absolute arrival-time iterator :func:`repro.service.serve_system`
# drives the engine from.  Registering here (rather than in the service
# module) keeps stream construction next to the generators it composes;
# a third-party model registered under the same group is selectable as
# ``ServiceConfig(traffic="<name>")`` with no service-layer changes.


@register_traffic("poisson", summary="Open-loop Poisson arrivals at the mean rate")
def _poisson_stream(ctx: TrafficContext) -> Iterator[float]:
    return poisson_times(ctx.mean_rate, ctx.rng)


@register_traffic("diurnal", summary="Sinusoidal NHPP; period = 2 phase lengths")
def _diurnal_stream(ctx: TrafficContext) -> Iterator[float]:
    return diurnal_times(
        ctx.mean_rate, ctx.rng, period=2.0 * ctx.phase_length, swing=ctx.swing
    )


@register_traffic("mmpp", summary="Two-state MMPP at (1 ± swing) x mean rate")
def _mmpp_stream(ctx: TrafficContext) -> Iterator[float]:
    hi = ctx.mean_rate * (1.0 + ctx.swing)
    lo = ctx.mean_rate * (1.0 - ctx.swing)
    return mmpp_times([hi, lo], [ctx.phase_length, ctx.phase_length], ctx.rng)


@register_traffic("burst", summary="The paper's fast/slow/fast cadence, cycled")
def _burst_stream(ctx: TrafficContext) -> Iterator[float]:
    from repro.workload.arrivals import burst_schedule

    schedule = [
        (dur, rate * ctx.rate_mult)
        for dur, rate in burst_schedule(ctx.workload, ctx.rates)
    ]
    return piecewise_times(schedule, ctx.rng, cycle=True)


@register_traffic("replay", summary="The batch workload's own tasks (finite, scored)")
def _replay_stream(ctx: TrafficContext) -> Iterator[float]:
    # Replay streams *tasks*, not arrival times; serve_system handles it
    # before stream construction.  Registered so catalogs and scenario
    # validation see the full traffic namespace.
    raise ValueError("not a generative traffic model: 'replay'")
