"""Assembling a trial's full workload."""

from __future__ import annotations

from dataclasses import dataclass


from repro import rng as rng_mod
from repro.config import WorkloadConfig
from repro.workload.arrivals import ArrivalRates, bursty_poisson_arrivals, derive_rates
from repro.workload.deadlines import assign_deadlines
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.task import Task

__all__ = ["Workload", "build_workload"]


@dataclass(frozen=True)
class Workload:
    """One trial's tasks plus the environment constants they imply.

    Attributes
    ----------
    tasks:
        Tasks in arrival order (``tasks[i].task_id == i``).
    rates:
        The Poisson rate triple used to generate arrivals.
    t_avg:
        Overall average execution time (Section VI), the deadline load
        factor and a term of the energy budget.
    """

    tasks: tuple[Task, ...]
    rates: ArrivalRates
    t_avg: float

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a workload needs at least one task")
        for i, task in enumerate(self.tasks):
            if task.task_id != i:
                raise ValueError("tasks must be dense and in arrival order")
        arr = [t.arrival for t in self.tasks]
        if any(b < a for a, b in zip(arr, arr[1:])):
            raise ValueError("arrival times must be non-decreasing")

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the trial."""
        return len(self.tasks)

    def arrival_span(self) -> float:
        """Time between the first and last arrival."""
        return self.tasks[-1].arrival - self.tasks[0].arrival


def build_workload(
    cfg: WorkloadConfig,
    table: ExecutionTimeTable,
    seed: int,
) -> Workload:
    """Generate one trial's task stream.

    Independent sub-streams (types, arrivals) derive from ``seed`` so the
    workload is reproducible and uncorrelated with cluster generation or
    the simulator's execution-time draws.
    """
    type_rng = rng_mod.stream(seed, "task-types")
    arrival_rng = rng_mod.stream(seed, "arrivals")

    type_ids = type_rng.integers(0, cfg.num_task_types, size=cfg.num_tasks)
    t_avg = table.t_avg()
    rates = derive_rates(cfg, table.cluster.num_cores, t_avg)
    arrivals = bursty_poisson_arrivals(cfg, rates, arrival_rng)
    deadlines = assign_deadlines(
        cfg, arrivals, type_ids, table.mean_exec_per_type(), t_avg
    )
    tasks = tuple(
        Task(
            task_id=i,
            type_id=int(type_ids[i]),
            arrival=float(arrivals[i]),
            deadline=float(deadlines[i]),
        )
        for i in range(cfg.num_tasks)
    )
    return Workload(tasks=tasks, rates=rates, t_avg=t_avg)
