"""Workload substrate (paper Sections III-B and VI).

The workload is a dynamically-arriving stream of independent tasks:

* each task's type is uniform over 100 well-known types;
* the CVB (coefficient-of-variation based) method of [AlS00] generates a
  heterogeneous, *inconsistent* mean execution-time matrix (task type x
  node) with gamma sampling;
* each (type, node, P-state) combination gets an execution-time pmf — a
  discretized gamma around the CVB mean scaled by the node's P-state
  multiplier;
* arrivals follow a three-phase bursty Poisson process (fast / slow /
  fast) that oversubscribes the system during bursts;
* each task's hard deadline is its arrival time plus the mean execution
  time of its type plus a "load factor" (t_avg).

For continuous-service mode, :mod:`repro.workload.traffic` generates
*lazy* arrival streams (open-loop Poisson, diurnal/piecewise schedules,
MMPP bursts, trace replay) instead of materialized workloads.
"""

from repro.workload.task import Task
from repro.workload.cvb import cvb_etc_matrix
from repro.workload.etc_matrix import ETCMatrix
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.arrivals import (
    ArrivalRates,
    burst_schedule,
    bursty_poisson_arrivals,
    derive_rates,
    per_task_rates,
)
from repro.workload.deadlines import assign_deadlines
from repro.workload.workload import Workload, build_workload
from repro.workload.traffic import (
    TaskFactory,
    diurnal_times,
    merge_times,
    mmpp_times,
    piecewise_times,
    poisson_times,
    replay_tasks,
    splice_times,
    trace_times,
)

__all__ = [
    "Task",
    "cvb_etc_matrix",
    "ETCMatrix",
    "ExecutionTimeTable",
    "ArrivalRates",
    "burst_schedule",
    "bursty_poisson_arrivals",
    "derive_rates",
    "per_task_rates",
    "assign_deadlines",
    "Workload",
    "build_workload",
    "TaskFactory",
    "poisson_times",
    "piecewise_times",
    "diurnal_times",
    "mmpp_times",
    "trace_times",
    "merge_times",
    "splice_times",
    "replay_tasks",
]
