"""The :class:`Task` value type."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Task"]


@dataclass(frozen=True, slots=True)
class Task:
    """One independent task of the workload.

    Attributes
    ----------
    task_id:
        Dense index in arrival order (0-based).
    type_id:
        Index into the task-type axis of the ETC matrix / pmf table.
    arrival:
        Arrival time; the task is unknown to the mapper before this.
    deadline:
        Hard individual deadline ``delta(z)``; completing later has no
        value (the task still runs to completion, best-effort, but is not
        counted).
    priority:
        Task priority for the :mod:`repro.extensions.priorities`
        extension; the baseline paper model ignores it (all 1.0).
    """

    task_id: int
    type_id: int
    arrival: float
    deadline: float
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.task_id < 0 or self.type_id < 0:
            raise ValueError("task_id and type_id must be non-negative")
        if self.deadline < self.arrival:
            raise ValueError("deadline cannot precede arrival")
        if self.priority <= 0.0:
            raise ValueError("priority must be positive")
