"""ASCII box-and-whisker rendering, mirroring the paper's Figures 2-6."""

from __future__ import annotations

import numpy as np

from repro.experiments.stats import BoxStats, box_stats

__all__ = ["ascii_boxplot", "ascii_boxplot_group"]


def _render_row(stats: BoxStats, lo: float, hi: float, width: int) -> str:
    """One box-plot row scaled into [lo, hi] across ``width`` columns."""
    span = max(hi - lo, 1e-12)

    def col(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    cells = [" "] * width
    wl, q1, med, q3, wh = (
        col(stats.whisker_low),
        col(stats.q1),
        col(stats.median),
        col(stats.q3),
        col(stats.whisker_high),
    )
    for c in range(wl, q1):
        cells[c] = "-"
    for c in range(q3 + 1, wh + 1):
        cells[c] = "-"
    for c in range(q1, q3 + 1):
        cells[c] = "="
    cells[wl] = "|"
    cells[wh] = "|"
    cells[med] = "#"
    for out in stats.outliers:
        c = col(out)
        if 0 <= c < width:
            cells[c] = "o"
    return "".join(cells)


def ascii_boxplot(values, label: str = "", width: int = 60) -> str:
    """Render a single sample as one box-plot line with its stats."""
    stats = box_stats(values)
    lo = min(stats.minimum, stats.whisker_low)
    hi = max(stats.maximum, stats.whisker_high)
    if hi <= lo:
        lo, hi = lo - 1.0, hi + 1.0
    row = _render_row(stats, lo, hi, width)
    return f"{label:>12} [{row}]  med={stats.median:g}"


def ascii_boxplot_group(
    samples: dict[str, np.ndarray], width: int = 60, title: str = ""
) -> str:
    """Render several samples on a shared scale (one figure's columns).

    Returns a multi-line string: optional title, one row per sample, and
    an axis line with the scale bounds.
    """
    if not samples:
        raise ValueError("need at least one sample")
    all_stats = {k: box_stats(v) for k, v in samples.items()}
    lo = min(s.minimum for s in all_stats.values())
    hi = max(s.maximum for s in all_stats.values())
    if hi <= lo:
        lo, hi = lo - 1.0, hi + 1.0
    lines = []
    if title:
        lines.append(title)
    for label, stats in all_stats.items():
        row = _render_row(stats, lo, hi, width)
        lines.append(f"{label:>12} [{row}]  med={stats.median:g}")
    pad = " " * 13
    lines.append(f"{pad} {lo:<{width // 2}g}{hi:>{width - width // 2}g}")
    return "\n".join(lines)
