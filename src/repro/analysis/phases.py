"""Per-arrival-phase breakdown of trial outcomes.

The workload's three phases (early burst / lull / late burst) fail for
different reasons: bursts miss by congestion, the late burst additionally
misses by budget exhaustion when the early phases overspent.  These
helpers attribute each task's outcome to its phase — the diagnostic view
behind the paper's Section VII explanations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import WorkloadConfig
from repro.sim.results import TrialResult
from repro.workload.arrivals import phase_of_task

__all__ = ["PhaseBreakdown", "phase_breakdown"]

_PHASES = ("head", "lull", "tail")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Counts of one phase's tasks by outcome."""

    phase: str
    total: int
    completed: int
    late: int
    discarded: int
    energy_cutoff: int

    @property
    def missed(self) -> int:
        """Total missed tasks in the phase."""
        return self.late + self.discarded + self.energy_cutoff

    @property
    def miss_fraction(self) -> float:
        """Missed tasks over phase size."""
        return self.missed / self.total if self.total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.phase}: {self.missed}/{self.total} missed "
            f"(late {self.late}, discarded {self.discarded}, "
            f"cutoff {self.energy_cutoff})"
        )


def phase_breakdown(
    result: TrialResult, workload_cfg: WorkloadConfig
) -> dict[str, PhaseBreakdown]:
    """Attribute a trial's outcomes to arrival phases.

    Requires per-task outcomes (run the trial with ``keep_outcomes`` or
    via :func:`repro.sim.engine.run_trial`, which keeps them by default).
    """
    if len(result.outcomes) != result.num_tasks:
        raise ValueError("result lacks per-task outcomes")
    counts = {
        p: {"total": 0, "completed": 0, "late": 0, "discarded": 0, "cutoff": 0}
        for p in _PHASES
    }
    exhaustion = result.exhaustion_time
    for outcome in result.outcomes:
        phase = phase_of_task(workload_cfg, outcome.task_id)
        bucket = counts[phase]
        bucket["total"] += 1
        if outcome.discarded:
            bucket["discarded"] += 1
        elif not outcome.on_time():
            bucket["late"] += 1
        elif outcome.completion > exhaustion:
            bucket["cutoff"] += 1
        else:
            bucket["completed"] += 1
    return {
        p: PhaseBreakdown(
            phase=p,
            total=c["total"],
            completed=c["completed"],
            late=c["late"],
            discarded=c["discarded"],
            energy_cutoff=c["cutoff"],
        )
        for p, c in counts.items()
    }
