"""Degraded-vs-clean robustness reporting for the fault layer.

A fault study runs the same scenario at least twice — once clean, once
with a :class:`~repro.faults.FaultSchedule` injected (and optionally a
third time with recovery machinery disabled, the ablation) — and asks
what fraction of the clean run's service the degraded run retained.
This module computes that comparison from finished results; it never
re-simulates.

Batch comparisons work on :class:`~repro.sim.results.TrialResult`;
service comparisons fold a :class:`~repro.service.ServiceResult`'s
windows and also surface the fault-layer counters (orphaned, remapped,
lost, shed) that batch scoring has no column for.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.tables import markdown_table
from repro.service import ServiceResult
from repro.sim.results import TrialResult

__all__ = [
    "robustness_delta",
    "service_robustness_delta",
    "faults_report",
]


def _retained(clean_completed: int, degraded_completed: int) -> float:
    """Fraction of clean completions the degraded run kept (1.0 if both idle)."""
    if clean_completed <= 0:
        return 1.0 if degraded_completed <= 0 else float("inf")
    return degraded_completed / clean_completed


def robustness_delta(clean: TrialResult, degraded: TrialResult) -> dict[str, float]:
    """Compare a degraded batch trial against its clean twin.

    Both results should come from the same scenario and seed (the same
    ``TrialSystem``), differing only in the injected fault layer —
    otherwise the deltas mix workload noise into the fault effect.

    Returns a flat dict: ``completed_clean``/``completed_degraded``,
    ``retained`` (degraded completions over clean completions),
    ``missed_delta``, ``discarded_delta`` and ``energy_delta`` (degraded
    minus clean, joules).
    """
    if (clean.seed, clean.num_tasks) != (degraded.seed, degraded.num_tasks):
        raise ValueError(
            "robustness_delta compares twin runs; got "
            f"seed/num_tasks {clean.seed}/{clean.num_tasks} vs "
            f"{degraded.seed}/{degraded.num_tasks}"
        )
    return {
        "completed_clean": float(clean.completed_within),
        "completed_degraded": float(degraded.completed_within),
        "retained": _retained(clean.completed_within, degraded.completed_within),
        "missed_delta": float(degraded.missed - clean.missed),
        "discarded_delta": float(degraded.discarded - clean.discarded),
        "energy_delta": degraded.total_energy - clean.total_energy,
    }


def service_robustness_delta(
    clean: ServiceResult, degraded: ServiceResult
) -> dict[str, float]:
    """Compare a degraded service run against its clean twin.

    Works on the folded window totals, so it applies to generative
    streams (no :class:`TrialResult` exists there).  On top of the
    batch-style retention numbers it reports the degraded run's fault
    accounting: ``orphaned``/``remapped``/``lost`` (outage casualties
    and how many were saved) and ``shed``/``deferred`` (admission
    control).
    """
    if clean.seed != degraded.seed:
        raise ValueError(
            f"service_robustness_delta compares twin runs; got seeds "
            f"{clean.seed} vs {degraded.seed}"
        )
    ct, dt = clean.totals, degraded.totals
    totals = degraded.fault_totals or {}
    return {
        "completed_clean": float(ct.completed),
        "completed_degraded": float(dt.completed),
        "retained": _retained(ct.completed, dt.completed),
        "late_delta": float(dt.late - ct.late),
        "energy_delta": degraded.total_energy - clean.total_energy,
        "orphaned": float(totals.get("orphaned", dt.orphaned)),
        "remapped": float(totals.get("remapped", dt.remapped)),
        "lost": float(totals.get("lost", dt.lost)),
        "shed": float(totals.get("shed", dt.shed)),
        "deferred": float(totals.get("deferred", dt.deferred)),
    }


_REPORT_COLUMNS: Sequence[tuple[str, str]] = (
    ("completed_degraded", "completed"),
    ("retained", "retained"),
    ("missed_delta", "missed Δ"),
    ("late_delta", "late Δ"),
    ("orphaned", "orphaned"),
    ("remapped", "remapped"),
    ("lost", "lost"),
    ("shed", "shed"),
)


def faults_report(deltas: Mapping[str, Mapping[str, float]]) -> str:
    """Render named robustness deltas as a markdown table.

    ``deltas`` maps a row label (e.g. ``"remap+shed"``, ``"no
    recovery"``) to the output of :func:`robustness_delta` or
    :func:`service_robustness_delta`; columns a delta lacks render
    as ``-``.  Row order follows the mapping's insertion order.
    """
    if not deltas:
        raise ValueError("need at least one delta row")
    headers = ["run"] + [title for _, title in _REPORT_COLUMNS]
    rows = []
    for label, delta in deltas.items():
        row: list[object] = [label]
        for key, _ in _REPORT_COLUMNS:
            value = delta.get(key)
            if value is None:
                row.append("-")
            elif key == "retained":
                row.append(f"{value:.3f}")
            else:
                row.append(f"{value:g}")
        rows.append(row)
    return markdown_table(headers, rows)
