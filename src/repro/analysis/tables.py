"""Minimal markdown table builder for reports and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence

__all__ = ["markdown_table"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavored markdown table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller.  Column count of every row must match the header.
    """
    if not headers:
        raise ValueError("need at least one column")
    str_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width must match headers")
        str_rows.append([str(c) for c in row])
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [fmt(list(headers)), "| " + " | ".join("-" * w for w in widths) + " |"]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
