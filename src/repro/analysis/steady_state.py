"""Warm-up truncation and batch-means confidence intervals over windows.

A continuous-service run starts from an empty system, so its early
windows are transient: queue depth, on-time probability and energy all
drift while the system fills.  Averaging over the whole run biases any
steady-state claim.  This module provides the two standard tools for an
honest answer:

* **MSER-5 warm-up detection** (White 1997): batch the per-window series
  into means of 5, then truncate at the point minimizing the marginal
  standard error of the remaining mean.  The minimizing truncation is
  where deleting more data stops reducing estimator variance — the
  classic data-driven warm-up rule.
* **Batch-means confidence intervals**: per-window values of a service
  run are autocorrelated, so the iid t-interval is too narrow.  Grouping
  post-warm-up windows into a small number of long batches makes the
  batch means approximately independent; the t-interval over *them* is
  asymptotically valid (Law & Kelton, ch. 9).

The estimators are pure NumPy over plain sequences (package imports are
deferred inside the window-row conveniences), so both the offline report
path and the live telemetry layer (:mod:`repro.obs.telemetry`) can call
them without import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "SteadyStateSummary",
    "mser_truncation",
    "batch_means_ci",
    "analyze_series",
    "analyze_windows",
    "steady_state_table",
]

#: MSER-5: the series is pre-averaged into batches of this many windows.
MSER_BATCH = 5

#: Fewest post-warm-up samples worth a confidence interval.
_MIN_CI_SAMPLES = 4


def _t_quantile(p: float, dof: int) -> float:
    """Two-sided Student-t critical value (normal fallback without scipy)."""
    try:
        from scipy import stats

        return float(stats.t.ppf(p, dof))
    except ImportError:  # pragma: no cover - scipy is present in CI
        from statistics import NormalDist

        return float(NormalDist().inv_cdf(p))


def mser_truncation(values: Sequence[float], *, batch: int = MSER_BATCH) -> int:
    """MSER warm-up point of a series: samples to drop from the front.

    The series is pre-averaged into non-overlapping batches of ``batch``
    (MSER-5 for the default), and the truncation ``d`` minimizes

    ``MSER(d) = sum_{i>=d} (x_i - mean_d)^2 / (n - d)^2``

    over ``d <= n/2`` (truncating more than half the data means the run
    is too short to call converged).  Returns the number of *raw*
    samples to drop (a multiple of ``batch``); 0 when the series is too
    short to batch twice.
    """
    if batch < 1:
        raise ValueError(f"batch must be positive, got {batch}")
    x = np.asarray(list(values), dtype=float)
    n_batches = len(x) // batch
    if n_batches < 2:
        return 0
    means = x[: n_batches * batch].reshape(n_batches, batch).mean(axis=1)
    # Suffix sums: mser(d) for every candidate in one vectorized pass.
    d_max = n_batches // 2
    suffix = np.cumsum(means[::-1])[::-1]
    suffix_sq = np.cumsum((means**2)[::-1])[::-1]
    m = n_batches - np.arange(d_max + 1)
    s1 = suffix[: d_max + 1]
    s2 = suffix_sq[: d_max + 1]
    mser = (s2 - s1**2 / m) / m**2
    return int(np.argmin(mser)) * batch


def batch_means_ci(
    values: Sequence[float], *, num_batches: int = 20, level: float = 0.95
) -> tuple[float, float, int, int]:
    """Batch-means mean and CI half-width of a (post-warm-up) series.

    Returns ``(mean, half_width, batches_used, batch_len)``.  The series
    is split into ``num_batches`` equal batches (capped so each holds at
    least two samples; leftovers are dropped from the *front*, keeping
    the most recent data); the half-width is the Student-t interval over
    the batch means.  ``half_width`` is ``nan`` when fewer than
    :data:`_MIN_CI_SAMPLES` samples or two batches are available — the
    mean is still reported.
    """
    if not (0.0 < level < 1.0):
        raise ValueError(f"level must be in (0, 1), got {level}")
    if num_batches < 2:
        raise ValueError(f"num_batches must be >= 2, got {num_batches}")
    x = np.asarray(list(values), dtype=float)
    m = len(x)
    if m == 0:
        return math.nan, math.nan, 0, 0
    mean = float(x.mean())
    k = min(num_batches, m // 2)
    if m < _MIN_CI_SAMPLES or k < 2:
        return mean, math.nan, 0, 0
    b = m // k
    batches = x[m - k * b :].reshape(k, b).mean(axis=1)
    spread = float(batches.std(ddof=1))
    half = _t_quantile(0.5 + level / 2.0, k - 1) * spread / math.sqrt(k)
    return mean, half, k, b


@dataclass(frozen=True)
class SteadyStateSummary:
    """Steady-state estimate of one per-window metric.

    ``warmup_windows`` raw windows are truncated (MSER decision over the
    finite values; ``nan`` windows — e.g. on-time probability with no
    completions — are excluded from the series but keep their indices).
    ``mean``/``ci_half_width`` describe the post-warm-up batch-means
    estimate at ``ci_level``.  ``converged`` is false when the MSER
    minimum sits at its half-series bound or too little post-warm-up
    data remains — the run is then too short to claim a steady state.
    """

    metric: str
    num_windows: int
    used_windows: int
    warmup_windows: int
    mean: float
    ci_half_width: float
    ci_level: float
    num_batches: int
    batch_len: int
    converged: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (``nan`` encodes as ``None``)."""
        return {
            "metric": self.metric,
            "num_windows": self.num_windows,
            "used_windows": self.used_windows,
            "warmup_windows": self.warmup_windows,
            "mean": None if math.isnan(self.mean) else self.mean,
            "ci_half_width": (
                None if math.isnan(self.ci_half_width) else self.ci_half_width
            ),
            "ci_level": self.ci_level,
            "num_batches": self.num_batches,
            "batch_len": self.batch_len,
            "converged": self.converged,
        }


def analyze_series(
    values: Sequence[float],
    *,
    metric: str = "value",
    batch: int = MSER_BATCH,
    num_batches: int = 20,
    level: float = 0.95,
) -> SteadyStateSummary:
    """Full steady-state analysis of one per-window series."""
    x = np.asarray(list(values), dtype=float)
    finite = np.isfinite(x)
    kept = x[finite]
    kept_idx = np.flatnonzero(finite)
    warmup_kept = mser_truncation(kept, batch=batch)
    # Report the warm-up as a raw window index: the first retained one.
    if warmup_kept == 0:
        warmup_raw = 0
    elif warmup_kept < len(kept):
        warmup_raw = int(kept_idx[warmup_kept])
    else:
        warmup_raw = int(len(x))
    post = kept[warmup_kept:]
    mean, half, k, b = batch_means_ci(post, num_batches=num_batches, level=level)
    n_batches = len(kept) // batch
    at_bound = n_batches >= 2 and warmup_kept >= (n_batches // 2) * batch
    converged = (
        len(post) >= _MIN_CI_SAMPLES and not at_bound and not math.isnan(half)
    )
    return SteadyStateSummary(
        metric=metric,
        num_windows=int(len(x)),
        used_windows=int(len(kept)),
        warmup_windows=warmup_raw,
        mean=mean,
        ci_half_width=half,
        ci_level=level,
        num_batches=k,
        batch_len=b,
        converged=converged,
    )


#: Metrics ``analyze_windows`` / the CLI report cover by default.
DEFAULT_METRICS = ("on_time_prob", "throughput", "queue_depth", "power")


def analyze_windows(
    rows: Sequence[Mapping[str, Any]],
    metrics: Sequence[str] = DEFAULT_METRICS,
    *,
    budget_rate: float | None = None,
    batch: int = MSER_BATCH,
    num_batches: int = 20,
    level: float = 0.95,
) -> dict[str, SteadyStateSummary]:
    """Steady-state summaries of several metrics over window rows.

    ``rows`` are :meth:`~repro.sim.metrics.WindowStats.to_dict` mappings
    (or parsed window JSONL rows).  Trailing partial windows are *not*
    dropped here; pass a sliced sequence if the last window should be
    excluded.
    """
    from repro.sim.metrics import derived_window_metrics

    derived = [derived_window_metrics(row, budget_rate=budget_rate) for row in rows]
    return {
        metric: analyze_series(
            [d.get(metric, math.nan) for d in derived],
            metric=metric,
            batch=batch,
            num_batches=num_batches,
            level=level,
        )
        for metric in metrics
    }


def steady_state_table(summaries: Mapping[str, SteadyStateSummary]) -> str:
    """Markdown table over per-metric steady-state summaries."""
    from repro.analysis.tables import markdown_table

    rows = []
    for name, s in summaries.items():
        ci = "-" if math.isnan(s.ci_half_width) else f"±{s.ci_half_width:.4g}"
        mean = "-" if math.isnan(s.mean) else f"{s.mean:.4g}"
        rows.append(
            (
                name,
                s.num_windows,
                s.warmup_windows,
                mean,
                ci,
                f"{s.num_batches}x{s.batch_len}" if s.num_batches else "-",
                "yes" if s.converged else "no",
            )
        )
    return markdown_table(
        ["metric", "windows", "warm-up", "mean", "CI", "batches", "converged"],
        rows,
    )
