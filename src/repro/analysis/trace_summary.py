"""Summarizing a structured event trace into a table.

Complements the per-trial scalar results: given the events of one or
more observed trials (from :func:`repro.io.trace_io.load_trace` or a
:class:`~repro.obs.sinks.RingBufferSink`), compute per-kind counts,
discard causes, and mapping-time aggregates (mean queue depth, final
energy estimate, P-state usage), rendered with the shared markdown
table builder.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.tables import markdown_table
from repro.obs.events import (
    CheckpointWritten,
    EnergyExhausted,
    Event,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialQuarantined,
    TrialRetried,
    TrialStarted,
)

__all__ = ["TraceSummary", "summarize_trace", "trace_summary_table"]


@dataclass
class TraceSummary:
    """Aggregates of one event stream.

    ``pstate_counts`` maps chosen P-state to how many mappings chose it;
    ``discard_causes`` maps cause string to its count.
    """

    trials: int = 0
    mapped: int = 0
    discarded: int = 0
    completed: int = 0
    exhaustions: int = 0
    finished: int = 0
    retries: int = 0
    quarantines: int = 0
    checkpoints: int = 0
    mean_queue_depth: float = math.nan
    last_energy_estimate: float = math.nan
    pstate_counts: Counter = field(default_factory=Counter)
    discard_causes: Counter = field(default_factory=Counter)
    fault_kinds: Counter = field(default_factory=Counter)

    @property
    def discard_fraction(self) -> float:
        """Discards as a fraction of all mapping decisions."""
        total = self.mapped + self.discarded
        return self.discarded / total if total else math.nan


def summarize_trace(events: Iterable[Event]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    depth_sum = 0.0
    for event in events:
        if isinstance(event, TaskMapped):
            summary.mapped += 1
            depth_sum += event.queue_depth
            summary.pstate_counts[event.pstate] += 1
            summary.last_energy_estimate = event.energy_estimate
        elif isinstance(event, TaskDiscarded):
            summary.discarded += 1
            summary.discard_causes[event.cause] += 1
        elif isinstance(event, TaskCompleted):
            summary.completed += 1
        elif isinstance(event, TrialStarted):
            summary.trials += 1
        elif isinstance(event, EnergyExhausted):
            summary.exhaustions += 1
        elif isinstance(event, TrialFinished):
            summary.finished += 1
        elif isinstance(event, TrialRetried):
            summary.retries += 1
            summary.fault_kinds[event.fault] += 1
        elif isinstance(event, TrialQuarantined):
            summary.quarantines += 1
            summary.fault_kinds[event.fault] += 1
        elif isinstance(event, CheckpointWritten):
            summary.checkpoints += 1
    if summary.mapped:
        summary.mean_queue_depth = depth_sum / summary.mapped
    return summary


def trace_summary_table(events: Iterable[Event]) -> str:
    """Render a markdown summary table of an event trace."""
    s = summarize_trace(events)
    rows: list[tuple[str, str]] = [
        ("trials", str(s.trials)),
        ("tasks mapped", str(s.mapped)),
        ("tasks discarded", str(s.discarded)),
        ("tasks completed", str(s.completed)),
        ("energy exhaustions", str(s.exhaustions)),
    ]
    if s.retries:
        rows.append(("trial retries", str(s.retries)))
    if s.quarantines:
        rows.append(("trials quarantined", str(s.quarantines)))
    if s.checkpoints:
        rows.append(("checkpoint records", str(s.checkpoints)))
    for fault, count in sorted(s.fault_kinds.items()):
        rows.append((f"faults[{fault}]", str(count)))
    for cause, count in sorted(s.discard_causes.items()):
        rows.append((f"discards[{cause}]", str(count)))
    for pstate, count in sorted(s.pstate_counts.items()):
        rows.append((f"mappings[P{pstate}]", str(count)))
    if not math.isnan(s.mean_queue_depth):
        rows.append(("mean queue depth at mapping", f"{s.mean_queue_depth:.3f}"))
    if not math.isnan(s.last_energy_estimate):
        rows.append(("final energy estimate", f"{s.last_energy_estimate:.4g}"))
    return markdown_table(["quantity", "value"], rows)
