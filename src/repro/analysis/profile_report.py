"""Top-spans tables from Chrome trace-event profiles and timeline views.

The ``repro profile`` CLI renders these; they also serve notebook /
script users who saved a profile with ``--profile-out`` and want the
numbers without opening Perfetto.

Self time is reconstructed from the complete ("X") events alone: within
each ``(pid, tid)`` track, events are nested by interval containment —
an event's self time is its duration minus the durations of its direct
children.  The exporter also embeds ``args.self_us`` per event, but
recomputing from intervals keeps this reader usable on any conforming
Chrome trace, not only ours.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.analysis.tables import markdown_table
from repro.obs.timeline import TimelineSet

__all__ = [
    "SpanStat",
    "span_summary",
    "profile_table",
    "timeline_table",
    "metrics_tables",
]


class SpanStat:
    """Aggregated statistics for one span name."""

    __slots__ = ("name", "count", "total_us", "self_us")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_us = 0.0
        self.self_us = 0.0


def _complete_events(events: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    out = []
    for e in events:
        if e.get("ph") == "X" and "ts" in e and "dur" in e:
            out.append(
                {
                    "name": str(e.get("name", "?")),
                    "ts": float(e["ts"]),
                    "dur": float(e["dur"]),
                    "pid": e.get("pid", 0),
                    "tid": e.get("tid", 0),
                }
            )
    return out


def span_summary(events: Sequence[Mapping[str, Any]]) -> list[SpanStat]:
    """Aggregate trace events into per-name stats, total-time descending.

    Ties in total time break by name, so the ordering is deterministic
    for any input event order.
    """
    stats: dict[str, SpanStat] = {}
    tracks: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    for e in _complete_events(events):
        tracks.setdefault((e["pid"], e["tid"]), []).append(e)
    for track in tracks.values():
        # Sort by start, longest-first on ties, so a parent precedes the
        # children it encloses; a stack then yields direct-child time.
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict[str, Any]] = []
        for e in track:
            while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            stat = stats.setdefault(e["name"], SpanStat(e["name"]))
            stat.count += 1
            stat.total_us += e["dur"]
            stat.self_us += e["dur"]
            if stack:
                parent = stats.setdefault(stack[-1]["name"], SpanStat(stack[-1]["name"]))
                parent.self_us -= e["dur"]
            stack.append(e)
    return sorted(stats.values(), key=lambda s: (-s.total_us, s.name))


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.3f} ms"
    return f"{us:.1f} us"


def profile_table(events: Sequence[Mapping[str, Any]], *, limit: int = 20) -> str:
    """Markdown top-spans table: count, total, self, mean per call."""
    stats = span_summary(events)[: max(limit, 1)]
    rows = [
        (
            s.name,
            s.count,
            _fmt_us(s.total_us),
            _fmt_us(max(s.self_us, 0.0)),
            _fmt_us(s.total_us / s.count if s.count else 0.0),
        )
        for s in stats
    ]
    return markdown_table(["span", "count", "total", "self", "mean/call"], rows)


def timeline_table(timeline: TimelineSet, *, limit: int = 10) -> str:
    """Markdown per-stream timeline digest: peaks and final counts."""
    rows = []
    for stream in timeline.sorted_streams()[: max(limit, 1)]:
        ts = stream["t"]
        busy = stream["busy_cores"]
        depth_peak = max((sum(d) for d in stream["node_depth"]), default=0)
        rows.append(
            (
                stream["label"],
                len(ts),
                f"{ts[-1]:.0f}" if ts else "-",
                max(busy, default=0),
                depth_peak,
                stream["completed"][-1] if stream["completed"] else 0,
                stream["discarded"][-1] if stream["discarded"] else 0,
            )
        )
    return markdown_table(
        ["timeline", "samples", "t_end", "peak busy", "peak in-system", "completed", "discarded"],
        rows,
    )


#: Cache counters folded per spec by ``observe_trial``; the order here
#: is the column order of the kernel-cache table.
_CACHE_FIELDS = ("hits", "misses", "evictions", "entries")


def _cache_table(counters: Mapping[str, int]) -> str | None:
    """Per-spec kernel-cache stats from ``perf.cache.*`` counters.

    One row per ``heuristic/variant`` label (the attribution deltas the
    engine reports even when specs share one warm
    :class:`~repro.perf.TrialCache`), plus a total row; hit rate is
    derived.  Returns ``None`` when the registry carries no cache
    counters at all.
    """
    if not any(k.startswith("perf.cache.") for k in counters):
        return None
    labels = sorted(
        {
            k.split(".", 3)[3]
            for k in counters
            if k.startswith("perf.cache.") and k.count(".") >= 3
        }
    )
    rows = []
    for label in labels + ["(total)"]:
        suffix = "" if label == "(total)" else f".{label}"
        values = [counters.get(f"perf.cache.{f}{suffix}", 0) for f in _CACHE_FIELDS]
        lookups = values[0] + values[1]
        rate = f"{values[0] / lookups:.1%}" if lookups else "-"
        rows.append((label, *values, rate))
    return markdown_table(["spec", *_CACHE_FIELDS, "hit rate"], rows)


def _executor_table(counters: Mapping[str, int]) -> str | None:
    """Chunk-level dispatch and recovery stats from ``executor.*`` counters."""
    items = {k: v for k, v in counters.items() if k.startswith("executor.")}
    if not items:
        return None
    rows: list[tuple[str, str]] = []
    chunks = items.pop("executor.chunks_dispatched", 0)
    trials = items.pop("executor.trials_dispatched", 0)
    if chunks:
        rows.append(("chunks dispatched", str(chunks)))
        rows.append(("trials dispatched", str(trials)))
        rows.append(("mean trials/chunk", f"{trials / chunks:.2f}"))
    for key, value in sorted(items.items()):
        rows.append((key.removeprefix("executor.").replace("_", " "), str(value)))
    return markdown_table(["executor", "value"], rows)


#: Counter prefixes the fault/shedding table claims from the registry.
_FAULT_PREFIXES = ("faults.", "tasks_orphaned.", "tasks_shed.", "tasks_deferred")


def _faults_table(counters: Mapping[str, int]) -> str | None:
    """Fault-layer counters (PR 7's ``faults.*``/``tasks_*`` families).

    Rows are grouped: fault transitions (``faults.<action>.<kind>``),
    then orphan dispositions, then shedding causes and deferrals.
    Returns ``None`` when no fault-layer counter is present (the common
    fault-free run).
    """
    items = {
        k: v for k, v in counters.items() if k.startswith(_FAULT_PREFIXES)
    }
    if not items:
        return None
    rows: list[tuple[str, str, int]] = []
    for key in sorted(items):
        if key.startswith("faults."):
            _, action, kind = (key.split(".", 2) + ["", ""])[:3]
            rows.append(("fault", f"{action} {kind}".strip(), items[key]))
        elif key.startswith("tasks_orphaned."):
            rows.append(("orphaned", key.removeprefix("tasks_orphaned."), items[key]))
        elif key.startswith("tasks_shed."):
            rows.append(("shed", key.removeprefix("tasks_shed."), items[key]))
        else:  # tasks_deferred (no sub-key)
            rows.append(("deferred", "retry pushes", items[key]))
    return markdown_table(["family", "detail", "count"], rows)


def metrics_tables(data: Mapping[str, Any]) -> str:
    """Render a ``repro.metrics/1`` document as counter/histogram tables.

    ``perf.cache.*``, ``executor.*`` and the fault-layer families
    (``faults.*``, ``tasks_orphaned.*``, ``tasks_shed.*``,
    ``tasks_deferred``) get dedicated derived tables and are omitted
    from the generic counter dump.
    """
    if data.get("format") != "repro.metrics/1":
        raise ValueError("not a repro.metrics/1 document")
    parts: list[str] = []
    counters = data.get("counters", {})
    generic = {
        k: v
        for k, v in counters.items()
        if not k.startswith(("perf.cache.", "executor.", *_FAULT_PREFIXES))
    }
    if generic:
        parts.append("## Counters\n")
        parts.append(markdown_table(["counter", "value"], sorted(generic.items())))
    cache = _cache_table(counters)
    if cache is not None:
        parts.append("\n## Kernel cache\n")
        parts.append(cache)
    executor = _executor_table(counters)
    if executor is not None:
        parts.append("\n## Executor\n")
        parts.append(executor)
    faults = _faults_table(counters)
    if faults is not None:
        parts.append("\n## Faults / shedding\n")
        parts.append(faults)
    histograms = data.get("histograms", {})
    if histograms:
        parts.append("\n## Histograms\n")
        rows = []
        for name, hist in sorted(histograms.items()):
            count = int(hist.get("count", 0))
            total = float(hist.get("total", 0.0))
            mean = f"{total / count:.3g}" if count else "-"
            rows.append((name, count, mean, hist.get("min"), hist.get("max")))
        parts.append(markdown_table(["histogram", "count", "mean", "min", "max"], rows))
    return "\n".join(parts) if parts else "(empty metrics registry)"
