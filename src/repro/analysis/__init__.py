"""Analysis and presentation: box plots (ASCII + SVG), tables, phase
breakdowns and time-series views of finished trials."""

from repro.analysis.boxplot import ascii_boxplot, ascii_boxplot_group
from repro.analysis.phases import PhaseBreakdown, phase_breakdown
from repro.analysis.svg import boxplot_svg, save_boxplot_svg
from repro.analysis.tables import markdown_table
from repro.analysis.timeseries import (
    active_tasks_series,
    completion_rate_series,
    cumulative_energy_series,
)

__all__ = [
    "ascii_boxplot",
    "ascii_boxplot_group",
    "PhaseBreakdown",
    "phase_breakdown",
    "boxplot_svg",
    "save_boxplot_svg",
    "markdown_table",
    "active_tasks_series",
    "completion_rate_series",
    "cumulative_energy_series",
]
