"""Analysis and presentation: box plots (ASCII + SVG), tables, phase
breakdowns, event-trace summaries, span-profile reports, timeline
charts and time-series views of finished trials."""

from repro.analysis.boxplot import ascii_boxplot, ascii_boxplot_group
from repro.analysis.faults_report import (
    faults_report,
    robustness_delta,
    service_robustness_delta,
)
from repro.analysis.phases import PhaseBreakdown, phase_breakdown
from repro.analysis.profile_report import (
    SpanStat,
    metrics_tables,
    profile_table,
    span_summary,
    timeline_table,
)
from repro.analysis.steady_state import (
    SteadyStateSummary,
    analyze_series,
    analyze_windows,
    batch_means_ci,
    mser_truncation,
    steady_state_table,
)
from repro.analysis.svg import (
    boxplot_svg,
    save_boxplot_svg,
    save_timeline_svg,
    timeline_svg,
)
from repro.analysis.tables import markdown_table
from repro.analysis.timeseries import (
    active_tasks_series,
    completion_rate_series,
    cumulative_energy_series,
)
from repro.analysis.trace_summary import (
    TraceSummary,
    summarize_trace,
    trace_summary_table,
)

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "trace_summary_table",
    "ascii_boxplot",
    "ascii_boxplot_group",
    "PhaseBreakdown",
    "phase_breakdown",
    "boxplot_svg",
    "save_boxplot_svg",
    "timeline_svg",
    "save_timeline_svg",
    "SpanStat",
    "span_summary",
    "profile_table",
    "timeline_table",
    "metrics_tables",
    "markdown_table",
    "active_tasks_series",
    "completion_rate_series",
    "cumulative_energy_series",
    "faults_report",
    "robustness_delta",
    "service_robustness_delta",
    "SteadyStateSummary",
    "analyze_series",
    "analyze_windows",
    "batch_means_ci",
    "mser_truncation",
    "steady_state_table",
]
