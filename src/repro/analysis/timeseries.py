"""Time-series views of a finished trial.

Turns the engine's raw artifacts (per-task outcomes, ledger-derived
consumption events, collector traces) into uniformly-sampled series for
plotting or threshold analysis:

* :func:`cumulative_energy_series` — consumed energy over time from the
  ledger's consumption events;
* :func:`active_tasks_series` — number of tasks executing at each sample
  (from outcomes);
* :func:`completion_rate_series` — completed-by-deadline counts over
  time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.energy import EnergyLedger
from repro.sim.results import TrialResult

__all__ = [
    "cumulative_energy_series",
    "active_tasks_series",
    "completion_rate_series",
]


def cumulative_energy_series(
    ledger: EnergyLedger, t_end: float, samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled cumulative consumed energy on ``[0, t_end]``.

    Integrates the ledger's piecewise-constant consumed power exactly
    between samples (no quadrature error at the sample points).
    """
    if t_end <= 0.0 or samples < 2:
        raise ValueError("need t_end > 0 and at least two samples")
    times, deltas = ledger.consumption_events()
    ts = np.linspace(0.0, t_end, samples)
    energy = np.empty(samples)
    idx = 0
    rate = 0.0
    acc = 0.0
    prev = 0.0
    for i, t in enumerate(ts):
        while idx < times.size and times[idx] <= t:
            acc += rate * (float(times[idx]) - prev)
            rate += float(deltas[idx])
            prev = float(times[idx])
            idx += 1
        energy[i] = acc + rate * (t - prev)
    return ts, energy


def active_tasks_series(
    result: TrialResult, samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Number of concurrently executing tasks over the trial."""
    if not result.outcomes:
        raise ValueError("result lacks per-task outcomes")
    starts = np.array(
        [o.start for o in result.outcomes if not o.discarded]
    )
    ends = np.array(
        [o.completion for o in result.outcomes if not o.discarded]
    )
    ts = np.linspace(0.0, result.makespan, samples)
    active = (
        (starts[None, :] <= ts[:, None]) & (ends[None, :] > ts[:, None])
    ).sum(axis=1)
    return ts, active.astype(np.int64)


def completion_rate_series(
    result: TrialResult, samples: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative on-time-within-budget completions over the trial."""
    if not result.outcomes:
        raise ValueError("result lacks per-task outcomes")
    exhaustion = result.exhaustion_time
    counted = np.array(
        [
            o.completion
            for o in result.outcomes
            if o.on_time() and o.completion <= exhaustion
        ]
    )
    ts = np.linspace(0.0, result.makespan, samples)
    counts = (counted[None, :] <= ts[:, None]).sum(axis=1)
    return ts, counts.astype(np.int64)
