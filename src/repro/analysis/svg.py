"""Standalone SVG figures (no plotting dependency).

Produces self-contained SVG documents: box-and-whisker charts visually
equivalent to the paper's Figures 2-6 (one box per variant, Tukey
whiskers, outlier dots, a value axis) and timeline line charts of
sampled system state.  Used by the CLI's ``report --svg`` and
``profile --svg-dir``, and by anyone archiving results from a headless
full-scale run.
"""

from __future__ import annotations

import pathlib
from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.stats import box_stats

__all__ = ["boxplot_svg", "save_boxplot_svg", "timeline_svg", "save_timeline_svg"]

_MARGIN_L = 90
_MARGIN_R = 20
_MARGIN_T = 40
_MARGIN_B = 45
_ROW_H = 46
_BOX_H = 22


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def boxplot_svg(
    samples: Mapping[str, Sequence[float] | np.ndarray],
    *,
    title: str = "",
    width: int = 640,
    x_label: str = "missed deadlines",
) -> str:
    """Render named samples as a horizontal box-plot SVG document."""
    if not samples:
        raise ValueError("need at least one sample")
    all_stats = {name: box_stats(np.asarray(vals)) for name, vals in samples.items()}
    lo = min(s.minimum for s in all_stats.values())
    hi = max(s.maximum for s in all_stats.values())
    if hi <= lo:
        lo, hi = lo - 1.0, hi + 1.0
    span = hi - lo
    lo -= 0.05 * span
    hi += 0.05 * span

    height = _MARGIN_T + _ROW_H * len(all_stats) + _MARGIN_B
    plot_w = width - _MARGIN_L - _MARGIN_R

    def x(v: float) -> float:
        return _MARGIN_L + (v - lo) / (hi - lo) * plot_w

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="22" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )

    # Value axis with ~6 ticks.
    axis_y = height - _MARGIN_B + 10
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{axis_y}" x2="{width - _MARGIN_R}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    for tick in np.linspace(lo, hi, 6):
        tx = x(float(tick))
        parts.append(f'<line x1="{tx:.1f}" y1="{axis_y}" x2="{tx:.1f}" y2="{axis_y + 5}" stroke="black"/>')
        parts.append(
            f'<text x="{tx:.1f}" y="{axis_y + 18}" text-anchor="middle">{tick:.0f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{height - 6}" '
        f'text-anchor="middle" font-style="italic">{_esc(x_label)}</text>'
    )

    for row, (name, s) in enumerate(all_stats.items()):
        cy = _MARGIN_T + _ROW_H * row + _ROW_H / 2
        top = cy - _BOX_H / 2
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{cy + 4:.1f}" text-anchor="end">{_esc(name)}</text>'
        )
        # Whisker line and caps.
        parts.append(
            f'<line x1="{x(s.whisker_low):.1f}" y1="{cy:.1f}" '
            f'x2="{x(s.whisker_high):.1f}" y2="{cy:.1f}" stroke="black"/>'
        )
        for w in (s.whisker_low, s.whisker_high):
            parts.append(
                f'<line x1="{x(w):.1f}" y1="{top:.1f}" x2="{x(w):.1f}" '
                f'y2="{top + _BOX_H:.1f}" stroke="black"/>'
            )
        # IQR box and median.
        parts.append(
            f'<rect x="{x(s.q1):.1f}" y="{top:.1f}" '
            f'width="{max(x(s.q3) - x(s.q1), 1.0):.1f}" height="{_BOX_H}" '
            f'fill="#9ecae9" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{x(s.median):.1f}" y1="{top:.1f}" '
            f'x2="{x(s.median):.1f}" y2="{top + _BOX_H:.1f}" '
            f'stroke="black" stroke-width="2"/>'
        )
        for out in s.outliers:
            parts.append(
                f'<circle cx="{x(out):.1f}" cy="{cy:.1f}" r="3" '
                f'fill="none" stroke="black"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_boxplot_svg(
    samples: Mapping[str, Sequence[float] | np.ndarray],
    path: str | pathlib.Path,
    **kwargs,
) -> pathlib.Path:
    """Write :func:`boxplot_svg` output to disk and return the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(boxplot_svg(samples, **kwargs))
    return path


#: (label, color) of each timeline series, in draw order.
_TIMELINE_SERIES: tuple[tuple[str, str], ...] = (
    ("busy cores", "#d62728"),
    ("tasks in system", "#1f77b4"),
    ("completed", "#2ca02c"),
)


def timeline_svg(
    stream: Mapping[str, Any],
    *,
    title: str = "",
    width: int = 720,
    height: int = 280,
) -> str:
    """Render one serialized timeline stream as an SVG line chart.

    ``stream`` is one entry of a ``repro.timeline/1`` document (see
    :meth:`repro.obs.timeline.TimelineRecorder.to_dict`): busy cores,
    cluster-wide in-system tasks and cumulative completions over
    simulated time, sharing one value axis.
    """
    ts = [float(t) for t in stream["t"]]
    if not ts:
        raise ValueError("timeline stream has no samples")
    series = {
        "busy cores": [float(v) for v in stream["busy_cores"]],
        "tasks in system": [float(sum(d)) for d in stream["node_depth"]],
        "completed": [float(v) for v in stream["completed"]],
    }
    t_lo, t_hi = ts[0], ts[-1] if ts[-1] > ts[0] else ts[0] + 1.0
    v_hi = max(max(vals) for vals in series.values())
    if v_hi <= 0.0:
        v_hi = 1.0

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def x(t: float) -> float:
        return _MARGIN_L + (t - t_lo) / (t_hi - t_lo) * plot_w

    def y(v: float) -> float:
        return _MARGIN_T + plot_h - v / v_hi * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    label = title or str(stream.get("label", "timeline"))
    parts.append(
        f'<text x="{width / 2:.1f}" y="22" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_esc(label)}</text>'
    )
    axis_y = _MARGIN_T + plot_h
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{axis_y}" x2="{width - _MARGIN_R}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    for tick in np.linspace(t_lo, t_hi, 6):
        tx = x(float(tick))
        parts.append(
            f'<line x1="{tx:.1f}" y1="{axis_y}" x2="{tx:.1f}" y2="{axis_y + 5}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{tx:.1f}" y="{axis_y + 18}" text-anchor="middle">{tick:.0f}</text>'
        )
    for tick in np.linspace(0.0, v_hi, 5):
        ty = y(float(tick))
        parts.append(
            f'<line x1="{_MARGIN_L - 5}" y1="{ty:.1f}" x2="{_MARGIN_L}" y2="{ty:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{ty + 4:.1f}" text-anchor="end">{tick:.0f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{height - 6}" '
        f'text-anchor="middle" font-style="italic">simulated time</text>'
    )
    for i, (name, color) in enumerate(_TIMELINE_SERIES):
        points = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in zip(ts, series[name]))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="1.5"/>'
        )
        lx = _MARGIN_L + 10 + i * 140
        parts.append(
            f'<line x1="{lx}" y1="{_MARGIN_T - 8}" x2="{lx + 18}" '
            f'y2="{_MARGIN_T - 8}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 22}" y="{_MARGIN_T - 4}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_timeline_svg(
    stream: Mapping[str, Any],
    path: str | pathlib.Path,
    **kwargs,
) -> pathlib.Path:
    """Write :func:`timeline_svg` output to disk and return the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(timeline_svg(stream, **kwargs))
    return path
