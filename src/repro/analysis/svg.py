"""Standalone SVG box-and-whisker figures (no plotting dependency).

Produces self-contained SVG documents visually equivalent to the paper's
Figures 2-6: one box per variant, Tukey whiskers, outlier dots, a value
axis.  Used by the CLI's ``report --svg`` and by anyone archiving results
from a headless full-scale run.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.stats import box_stats

__all__ = ["boxplot_svg", "save_boxplot_svg"]

_MARGIN_L = 90
_MARGIN_R = 20
_MARGIN_T = 40
_MARGIN_B = 45
_ROW_H = 46
_BOX_H = 22


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def boxplot_svg(
    samples: Mapping[str, Sequence[float] | np.ndarray],
    *,
    title: str = "",
    width: int = 640,
    x_label: str = "missed deadlines",
) -> str:
    """Render named samples as a horizontal box-plot SVG document."""
    if not samples:
        raise ValueError("need at least one sample")
    all_stats = {name: box_stats(np.asarray(vals)) for name, vals in samples.items()}
    lo = min(s.minimum for s in all_stats.values())
    hi = max(s.maximum for s in all_stats.values())
    if hi <= lo:
        lo, hi = lo - 1.0, hi + 1.0
    span = hi - lo
    lo -= 0.05 * span
    hi += 0.05 * span

    height = _MARGIN_T + _ROW_H * len(all_stats) + _MARGIN_B
    plot_w = width - _MARGIN_L - _MARGIN_R

    def x(v: float) -> float:
        return _MARGIN_L + (v - lo) / (hi - lo) * plot_w

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="22" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )

    # Value axis with ~6 ticks.
    axis_y = height - _MARGIN_B + 10
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{axis_y}" x2="{width - _MARGIN_R}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    for tick in np.linspace(lo, hi, 6):
        tx = x(float(tick))
        parts.append(f'<line x1="{tx:.1f}" y1="{axis_y}" x2="{tx:.1f}" y2="{axis_y + 5}" stroke="black"/>')
        parts.append(
            f'<text x="{tx:.1f}" y="{axis_y + 18}" text-anchor="middle">{tick:.0f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.1f}" y="{height - 6}" '
        f'text-anchor="middle" font-style="italic">{_esc(x_label)}</text>'
    )

    for row, (name, s) in enumerate(all_stats.items()):
        cy = _MARGIN_T + _ROW_H * row + _ROW_H / 2
        top = cy - _BOX_H / 2
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{cy + 4:.1f}" text-anchor="end">{_esc(name)}</text>'
        )
        # Whisker line and caps.
        parts.append(
            f'<line x1="{x(s.whisker_low):.1f}" y1="{cy:.1f}" '
            f'x2="{x(s.whisker_high):.1f}" y2="{cy:.1f}" stroke="black"/>'
        )
        for w in (s.whisker_low, s.whisker_high):
            parts.append(
                f'<line x1="{x(w):.1f}" y1="{top:.1f}" x2="{x(w):.1f}" '
                f'y2="{top + _BOX_H:.1f}" stroke="black"/>'
            )
        # IQR box and median.
        parts.append(
            f'<rect x="{x(s.q1):.1f}" y="{top:.1f}" '
            f'width="{max(x(s.q3) - x(s.q1), 1.0):.1f}" height="{_BOX_H}" '
            f'fill="#9ecae9" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{x(s.median):.1f}" y1="{top:.1f}" '
            f'x2="{x(s.median):.1f}" y2="{top + _BOX_H:.1f}" '
            f'stroke="black" stroke-width="2"/>'
        )
        for out in s.outliers:
            parts.append(
                f'<circle cx="{x(out):.1f}" cy="{cy:.1f}" r="3" '
                f'fill="none" stroke="black"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_boxplot_svg(
    samples: Mapping[str, Sequence[float] | np.ndarray],
    path: str | pathlib.Path,
    **kwargs,
) -> pathlib.Path:
    """Write :func:`boxplot_svg` output to disk and return the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(boxplot_svg(samples, **kwargs))
    return path
