"""repro.api — the stable facade over the reproduction.

Everything a study script needs lives here under one import, with the
compatibility promise that names in ``__all__`` keep their signatures
across releases (internal modules may move; this module will keep
re-exporting them):

>>> from repro import api
>>> result = api.run_trial(api.Scenario("LL", "en+rob", seed=42, num_tasks=100))
>>> 0 <= result.missed <= 100
True

The facade groups five things:

* **Describing an experiment** — :class:`Scenario` names a policy
  (heuristic + filter variant), the workload scale/seed, and the run
  shape (trial / ensemble / service).  The same object round-trips
  through one TOML or JSON file (:meth:`Scenario.from_file` /
  :meth:`Scenario.to_file`, :mod:`repro.scenario`).
* **Extending it** — every policy-shaped family (heuristics, filters,
  traffic models, admission policies) is a plugin registry
  (:mod:`repro.registry`): ``@register_heuristic("mine")`` — or an
  ``entry_points(group="repro.plugins")`` hook in a third-party
  package — makes a name constructible from the CLI and from scenario
  files; :func:`describe_plugins` renders the catalog.
* **Running it** — :func:`run_scenario` (a scenario object or file,
  dispatched on its mode), :func:`run_trial` (one trial, built on
  :class:`TrialPlan`), :func:`run_ensemble` (paired trials, optionally
  fanned out over processes), :func:`run_service` (continuous-service
  mode) and :func:`budget_sweep` (the energy-tightness sweep).  All
  accept the observability collectors (:class:`MetricsRegistry`,
  :class:`SpanProfile`, :class:`TimelineSet`, event sinks) and the
  results-neutral :class:`PerfConfig` performance knobs.
* **Inspecting results** — :class:`TrialResult`,
  :class:`EnsembleResult` and :class:`PartialEnsembleResult`.
* **The value types underneath** — :class:`PMF` and
  :class:`SimulationConfig`, for scripts that construct custom
  workloads or distributions.

Deprecated entry points (kept as warning shims for one release):
``make_heuristic`` / ``make_filter_chain`` (use :func:`build_heuristic`
/ :func:`build_filter_chain` or the registries),
``repro.experiments.runner.run_trial_variant`` (build a
:class:`TrialPlan`), ``repro.sim.mapper.build_candidates`` (use
:func:`repro.sim.mapper.build_candidate_set`) and
``repro.obs.hooks.run_observed_trial`` (use
:func:`repro.obs.hooks.observe_trial`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import (
    EnsembleResult,
    PartialEnsembleResult,
    TrialPlan,
    VariantSpec,
)
from repro.experiments.runner import run_ensemble as _run_ensemble
from repro.experiments.sweep import SweepResult
from repro.experiments.sweep import budget_sweep as _budget_sweep
from repro.faults import (
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
    FaultStats,
    SheddingConfig,
)
from repro.filters.chain import VARIANTS as FILTER_VARIANTS
from repro.filters.chain import (
    FilterChain,
    build_filter_chain,
    canonical_variant,
    make_filter_chain,
)
from repro.heuristics.registry import HEURISTICS, build_heuristic, make_heuristic
from repro.registry import (
    ADMISSION_PLUGINS,
    FILTER_PLUGINS,
    HEURISTIC_PLUGINS,
    TRAFFIC_PLUGINS,
    PluginRegistry,
    UnknownPluginError,
    describe_plugins,
    load_entry_point_plugins,
    register_admission,
    register_filter,
    register_heuristic,
    register_traffic,
)
from repro.scenario import (
    MODES,
    SCENARIO_FORMAT,
    EnsembleSettings,
    FaultSettings,
    Scenario,
    ScenarioError,
)
from repro.analysis.steady_state import (
    SteadyStateSummary,
    analyze_windows,
    steady_state_table,
)
from repro.obs.export import FileExporter, TelemetryServer
from repro.obs.hooks import observe_trial
from repro.obs.sinks import EventSink, JsonlSink, MetricsRegistry, RingBufferSink
from repro.obs.spans import SpanProfile, SpanRecorder
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    AlertRule,
    Telemetry,
    parse_rule,
)
from repro.obs.timeline import TimelineRecorder, TimelineSet
from repro.perf.kernel_cache import CacheStats, PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.service import ServiceConfig, ServiceResult, write_windows_jsonl
from repro.service import serve_system as _serve_system
from repro.sim.metrics import WindowStats
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem, build_trial_system
from repro.stoch.pmf import PMF

__all__ = [
    # describing an experiment
    "Scenario",
    "ScenarioError",
    "EnsembleSettings",
    "FaultSettings",
    "MODES",
    "SCENARIO_FORMAT",
    "VariantSpec",
    "HEURISTICS",
    "FILTER_VARIANTS",
    "build_heuristic",
    "build_filter_chain",
    "canonical_variant",
    "make_heuristic",
    "make_filter_chain",
    "FilterChain",
    "SimulationConfig",
    "build_trial_system",
    "TrialSystem",
    # the plugin registries
    "PluginRegistry",
    "UnknownPluginError",
    "HEURISTIC_PLUGINS",
    "FILTER_PLUGINS",
    "TRAFFIC_PLUGINS",
    "ADMISSION_PLUGINS",
    "register_heuristic",
    "register_filter",
    "register_traffic",
    "register_admission",
    "describe_plugins",
    "load_entry_point_plugins",
    # running it
    "run_scenario",
    "run_trial",
    "TrialPlan",
    "run_ensemble",
    "budget_sweep",
    "run_service",
    "ServiceConfig",
    "ServiceResult",
    "WindowStats",
    "write_windows_jsonl",
    # live telemetry + steady state
    "Telemetry",
    "NULL_TELEMETRY",
    "AlertRule",
    "parse_rule",
    "FileExporter",
    "TelemetryServer",
    "SteadyStateSummary",
    "analyze_windows",
    "steady_state_table",
    # fault layer
    "FaultEvent",
    "FaultSchedule",
    "FaultPolicy",
    "FaultStats",
    "SheddingConfig",
    "observe_trial",
    "PerfConfig",
    "CacheStats",
    "TrialCache",
    # observability collectors
    "MetricsRegistry",
    "JsonlSink",
    "RingBufferSink",
    "SpanProfile",
    "SpanRecorder",
    "TimelineRecorder",
    "TimelineSet",
    # results
    "TrialResult",
    "EnsembleResult",
    "PartialEnsembleResult",
    "SweepResult",
    # value types
    "PMF",
]


def run_trial(
    scenario: Scenario,
    *,
    system: TrialSystem | None = None,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanRecorder | None = None,
    timeline: TimelineRecorder | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    shedding: SheddingConfig | None = None,
) -> TrialResult:
    """Run one trial of a scenario.

    Pass ``system`` to reuse an already-built
    :class:`TrialSystem` (e.g. to run several scenarios against the
    identical workload draw, the paper's pairing discipline); otherwise
    the scenario builds its own.  When reusing a system across
    scenarios, a single :class:`TrialCache` passed as ``shared`` lets
    later runs reuse the kernel cache and mapper tables the first run
    warmed.  Observability collectors, the ``perf`` knobs and
    ``shared`` are results-neutral: the returned :class:`TrialResult`
    is bitwise identical for any combination.

    ``faults`` injects an in-simulation :class:`FaultSchedule` (node or
    core outages, slowdowns) with recovery behavior set by
    ``fault_policy``; ``shedding`` attaches the overload admission
    controller.  All three default to ``None``: a fault-free run is
    bitwise identical to one on a build without the fault layer.
    """
    return TrialPlan.from_scenario(
        scenario,
        system=system,
        keep_outcomes=keep_outcomes,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
        shared=shared,
        faults=faults,
        fault_policy=fault_policy,
        shedding=shedding,
    ).run()


def run_service(
    scenario: Scenario,
    service: ServiceConfig | None = None,
    *,
    system: TrialSystem | None = None,
    timeline: TimelineRecorder | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
    perf: PerfConfig | None = None,
) -> ServiceResult:
    """Run one scenario in continuous-service mode.

    ``service`` selects the traffic model, windowing and rolling energy
    budget (default: equilibrium-rate Poisson replayed over the batch
    workload is *not* assumed — the default :class:`ServiceConfig` is
    generative, so a ``horizon`` or ``task_limit`` is required; pass
    ``ServiceConfig(traffic="replay")`` for the finite batch-equivalent
    run).  ``system`` reuses a prebuilt :class:`TrialSystem` exactly as
    in :func:`run_trial`; ``timeline`` attaches a (optionally
    ring-buffered) :class:`TimelineRecorder`.

    Replay mode's :attr:`ServiceResult.trial_result` is bitwise
    identical to what :func:`run_trial` returns for the same scenario.

    ``telemetry`` attaches a live :class:`Telemetry` hub (streaming
    quantiles, SLO rules, online steady-state detection); the inert
    default keeps the run bitwise identical to an untelemetered one.

    ``perf`` selects the hot-path performance knobs
    (:class:`PerfConfig`, including the compiled kernel ``backend``).
    """
    if service is None:
        service = ServiceConfig(traffic="replay")
    if system is None:
        system = scenario.build_system()
    return _serve_system(
        system,
        scenario.spec,
        service,
        timeline=timeline,
        telemetry=telemetry,
        perf=perf,
    )


def run_scenario(
    scenario: Scenario | str | Path,
    **options: object,
):
    """Run a scenario — an object or a ``.toml`` / ``.json`` file path.

    Dispatches on :attr:`Scenario.mode`:

    * ``"trial"`` — one :class:`TrialPlan` run, returning a
      :class:`TrialResult`.  Scenario-level ``[faults]`` / ``[shedding]``
      sections are resolved and injected.
    * ``"ensemble"`` — paired trials per the scenario's ``[ensemble]``
      settings, returning an :class:`EnsembleResult`; bitwise identical
      to :func:`run_ensemble` with the same arguments.
    * ``"service"`` — continuous-service mode per the scenario's
      ``[service]`` settings (batch-equivalent replay when omitted),
      returning a :class:`ServiceResult`.

    Extra keyword ``options`` forward to the mode's runner (collectors,
    ``n_jobs``, ``perf``, ...), so a scenario file pins the experiment
    while the call site adds observability.
    """
    if isinstance(scenario, (str, Path)):
        scenario = Scenario.from_file(scenario)
    if scenario.mode == "trial":
        faults, fault_policy = scenario.resolved_faults()
        return run_trial(
            scenario,
            faults=faults,
            fault_policy=fault_policy,
            shedding=scenario.shedding,
            **options,  # type: ignore[arg-type]
        )
    if scenario.mode == "ensemble":
        settings = scenario.resolved_ensemble()
        options.setdefault("n_jobs", settings.n_jobs)
        return run_ensemble(
            scenario,
            settings.num_trials,
            base_seed=settings.base_seed,
            **options,  # type: ignore[arg-type]
        )
    return run_service(scenario, scenario.resolved_service(), **options)  # type: ignore[arg-type]


def _common_config(scenarios: Sequence[Scenario]) -> SimulationConfig:
    """The single resolved config an ensemble's scenarios must share."""
    config = scenarios[0].resolved_config()
    for other in scenarios[1:]:
        if other.resolved_config() != config:
            raise ValueError(
                "ensemble scenarios must share one workload configuration "
                f"({other.label} differs from {scenarios[0].label}); vary only "
                "the heuristic/filters, or run separate ensembles"
            )
    return config


def run_ensemble(
    scenarios: Scenario | Sequence[Scenario],
    num_trials: int,
    *,
    base_seed: int | None = None,
    n_jobs: int = 1,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanProfile | None = None,
    timeline: TimelineSet | None = None,
    perf: PerfConfig | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    chunk_size: int | None = None,
) -> EnsembleResult:
    """Run ``num_trials`` paired trials of one or more scenarios.

    All scenarios must resolve to the same workload configuration (the
    pairing discipline: within a trial every policy sees the identical
    task stream).  ``base_seed`` defaults to the scenarios' shared seed
    override, falling back to the configured master seed; trial ``i``
    derives its own seed from it.  The resilience options
    (``checkpoint``/``resume``/``trial_timeout``/``max_retries``), the
    ``chunk_size`` dispatch knob, and collectors forward to
    :func:`repro.experiments.runner.run_ensemble`.
    """
    scens = (scenarios,) if isinstance(scenarios, Scenario) else tuple(scenarios)
    if not scens:
        raise ValueError("need at least one scenario")
    config = _common_config(scens)
    if base_seed is None:
        base_seed = config.seed
    return _run_ensemble(
        [s.spec for s in scens],
        config,
        num_trials,
        base_seed,
        n_jobs=n_jobs,
        keep_outcomes=keep_outcomes,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
        checkpoint=checkpoint,
        resume=resume,
        trial_timeout=trial_timeout,
        max_retries=max_retries,
        chunk_size=chunk_size,
    )


def budget_sweep(
    scenarios: Scenario | Sequence[Scenario],
    multipliers: Sequence[float],
    num_trials: int,
    *,
    base_seed: int | None = None,
    n_jobs: int = 1,
    perf: PerfConfig | None = None,
) -> SweepResult:
    """Sweep the energy-budget multiplier over one or more scenarios."""
    scens = (scenarios,) if isinstance(scenarios, Scenario) else tuple(scenarios)
    if not scens:
        raise ValueError("need at least one scenario")
    config = _common_config(scens)
    if base_seed is None:
        base_seed = config.seed
    return _budget_sweep(
        multipliers,
        [s.spec for s in scens],
        config,
        num_trials,
        base_seed,
        n_jobs=n_jobs,
        perf=perf,
    )
