"""repro.api — the stable facade over the reproduction.

Everything a study script needs lives here under one import, with the
compatibility promise that names in ``__all__`` keep their signatures
across releases (internal modules may move; this module will keep
re-exporting them):

>>> from repro import api
>>> result = api.run_trial(api.Scenario("LL", "en+rob", seed=42, num_tasks=100))
>>> 0 <= result.missed <= 100
True

The facade groups four things:

* **Describing an experiment** — :class:`Scenario` names a policy
  (heuristic + filter variant) and the workload scale/seed; the
  :data:`HEURISTICS` and :data:`FILTER_VARIANTS` registries enumerate
  the valid names.
* **Running it** — :func:`run_trial` (one trial), :func:`run_ensemble`
  (paired trials, optionally fanned out over processes), and
  :func:`budget_sweep` (the energy-tightness sweep).  All accept the
  observability collectors (:class:`MetricsRegistry`,
  :class:`SpanProfile`, :class:`TimelineSet`, event sinks) and the
  results-neutral :class:`PerfConfig` performance knobs.
* **Inspecting results** — :class:`TrialResult`,
  :class:`EnsembleResult` and :class:`PartialEnsembleResult`.
* **The value types underneath** — :class:`PMF` and
  :class:`SimulationConfig`, for scripts that construct custom
  workloads or distributions.

Deprecated pre-facade entry points (kept as warning shims for one
release): ``repro.sim.mapper.build_candidates`` (use
:func:`repro.sim.mapper.build_candidate_set`) and
``repro.obs.hooks.run_observed_trial`` (use
:func:`repro.obs.hooks.observe_trial`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro.config import SimulationConfig
from repro.experiments.runner import (
    EnsembleResult,
    PartialEnsembleResult,
    VariantSpec,
    run_trial_variant,
)
from repro.experiments.runner import run_ensemble as _run_ensemble
from repro.experiments.sweep import SweepResult
from repro.experiments.sweep import budget_sweep as _budget_sweep
from repro.faults import (
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
    FaultStats,
    SheddingConfig,
)
from repro.filters.chain import VARIANTS as FILTER_VARIANTS
from repro.filters.chain import FilterChain, make_filter_chain
from repro.heuristics.registry import HEURISTICS, make_heuristic
from repro.analysis.steady_state import (
    SteadyStateSummary,
    analyze_windows,
    steady_state_table,
)
from repro.obs.export import FileExporter, TelemetryServer
from repro.obs.hooks import observe_trial
from repro.obs.sinks import EventSink, JsonlSink, MetricsRegistry, RingBufferSink
from repro.obs.spans import SpanProfile, SpanRecorder
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    AlertRule,
    Telemetry,
    parse_rule,
)
from repro.obs.timeline import TimelineRecorder, TimelineSet
from repro.perf.kernel_cache import CacheStats, PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.service import ServiceConfig, ServiceResult, write_windows_jsonl
from repro.service import serve_system as _serve_system
from repro.sim.metrics import WindowStats
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem, build_trial_system
from repro.stoch.pmf import PMF

__all__ = [
    # describing an experiment
    "Scenario",
    "VariantSpec",
    "HEURISTICS",
    "FILTER_VARIANTS",
    "make_heuristic",
    "make_filter_chain",
    "FilterChain",
    "SimulationConfig",
    "build_trial_system",
    "TrialSystem",
    # running it
    "run_trial",
    "run_ensemble",
    "budget_sweep",
    "run_service",
    "ServiceConfig",
    "ServiceResult",
    "WindowStats",
    "write_windows_jsonl",
    # live telemetry + steady state
    "Telemetry",
    "NULL_TELEMETRY",
    "AlertRule",
    "parse_rule",
    "FileExporter",
    "TelemetryServer",
    "SteadyStateSummary",
    "analyze_windows",
    "steady_state_table",
    # fault layer
    "FaultEvent",
    "FaultSchedule",
    "FaultPolicy",
    "FaultStats",
    "SheddingConfig",
    "observe_trial",
    "PerfConfig",
    "CacheStats",
    "TrialCache",
    # observability collectors
    "MetricsRegistry",
    "JsonlSink",
    "RingBufferSink",
    "SpanProfile",
    "SpanRecorder",
    "TimelineRecorder",
    "TimelineSet",
    # results
    "TrialResult",
    "EnsembleResult",
    "PartialEnsembleResult",
    "SweepResult",
    # value types
    "PMF",
]


@dataclass(frozen=True)
class Scenario:
    """One named experiment: a policy plus the workload it runs against.

    Attributes
    ----------
    heuristic:
        One of :data:`HEURISTICS` (``"SQ"``, ``"MECT"``, ``"LL"``,
        ``"Random"``).
    filters:
        One of :data:`FILTER_VARIANTS` (``"none"``, ``"en"``, ``"rob"``,
        ``"en+rob"``).
    seed:
        Master seed; ``None`` keeps the seed of ``config`` (or the
        default configuration's seed).
    num_tasks:
        Tasks per trial; ``None`` keeps the configured workload size.
    config:
        Optional base :class:`SimulationConfig`; ``seed`` and
        ``num_tasks`` override it when given.  ``None`` starts from the
        paper's Section VI defaults.
    """

    heuristic: str = "LL"
    filters: str = "en+rob"
    seed: int | None = None
    num_tasks: int | None = None
    config: SimulationConfig | None = None

    def __post_init__(self) -> None:
        if self.heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; known: {', '.join(HEURISTICS)}"
            )
        if self.filters not in FILTER_VARIANTS:
            raise ValueError(
                f"unknown filter variant {self.filters!r}; "
                f"known: {', '.join(FILTER_VARIANTS)}"
            )

    @property
    def spec(self) -> VariantSpec:
        """The (heuristic, variant) grid cell this scenario names."""
        return VariantSpec(self.heuristic, self.filters)

    @property
    def label(self) -> str:
        """Display label, e.g. ``"LL/en+rob"``."""
        return self.spec.label

    def resolved_config(self) -> SimulationConfig:
        """The full simulation configuration with overrides applied."""
        config = self.config if self.config is not None else SimulationConfig()
        if self.seed is not None:
            config = config.with_seed(self.seed)
        if self.num_tasks is not None and config.workload.num_tasks != self.num_tasks:
            config = replace(config, workload=config.workload.with_num_tasks(self.num_tasks))
        return config

    def build_system(self) -> TrialSystem:
        """Generate the trial environment this scenario describes."""
        return build_trial_system(self.resolved_config())


def run_trial(
    scenario: Scenario,
    *,
    system: TrialSystem | None = None,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanRecorder | None = None,
    timeline: TimelineRecorder | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    shedding: SheddingConfig | None = None,
) -> TrialResult:
    """Run one trial of a scenario.

    Pass ``system`` to reuse an already-built
    :class:`TrialSystem` (e.g. to run several scenarios against the
    identical workload draw, the paper's pairing discipline); otherwise
    the scenario builds its own.  When reusing a system across
    scenarios, a single :class:`TrialCache` passed as ``shared`` lets
    later runs reuse the kernel cache and mapper tables the first run
    warmed.  Observability collectors, the ``perf`` knobs and
    ``shared`` are results-neutral: the returned :class:`TrialResult`
    is bitwise identical for any combination.

    ``faults`` injects an in-simulation :class:`FaultSchedule` (node or
    core outages, slowdowns) with recovery behavior set by
    ``fault_policy``; ``shedding`` attaches the overload admission
    controller.  All three default to ``None``: a fault-free run is
    bitwise identical to one on a build without the fault layer.
    """
    if system is None:
        system = scenario.build_system()
    return run_trial_variant(
        system,
        scenario.spec,
        keep_outcomes=keep_outcomes,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
        shared=shared,
        faults=faults,
        fault_policy=fault_policy,
        shedding=shedding,
    )


def run_service(
    scenario: Scenario,
    service: ServiceConfig | None = None,
    *,
    system: TrialSystem | None = None,
    timeline: TimelineRecorder | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> ServiceResult:
    """Run one scenario in continuous-service mode.

    ``service`` selects the traffic model, windowing and rolling energy
    budget (default: equilibrium-rate Poisson replayed over the batch
    workload is *not* assumed — the default :class:`ServiceConfig` is
    generative, so a ``horizon`` or ``task_limit`` is required; pass
    ``ServiceConfig(traffic="replay")`` for the finite batch-equivalent
    run).  ``system`` reuses a prebuilt :class:`TrialSystem` exactly as
    in :func:`run_trial`; ``timeline`` attaches a (optionally
    ring-buffered) :class:`TimelineRecorder`.

    Replay mode's :attr:`ServiceResult.trial_result` is bitwise
    identical to what :func:`run_trial` returns for the same scenario.

    ``telemetry`` attaches a live :class:`Telemetry` hub (streaming
    quantiles, SLO rules, online steady-state detection); the inert
    default keeps the run bitwise identical to an untelemetered one.
    """
    if service is None:
        service = ServiceConfig(traffic="replay")
    if system is None:
        system = scenario.build_system()
    return _serve_system(
        system, scenario.spec, service, timeline=timeline, telemetry=telemetry
    )


def _common_config(scenarios: Sequence[Scenario]) -> SimulationConfig:
    """The single resolved config an ensemble's scenarios must share."""
    config = scenarios[0].resolved_config()
    for other in scenarios[1:]:
        if other.resolved_config() != config:
            raise ValueError(
                "ensemble scenarios must share one workload configuration "
                f"({other.label} differs from {scenarios[0].label}); vary only "
                "the heuristic/filters, or run separate ensembles"
            )
    return config


def run_ensemble(
    scenarios: Scenario | Sequence[Scenario],
    num_trials: int,
    *,
    base_seed: int | None = None,
    n_jobs: int = 1,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanProfile | None = None,
    timeline: TimelineSet | None = None,
    perf: PerfConfig | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    chunk_size: int | None = None,
) -> EnsembleResult:
    """Run ``num_trials`` paired trials of one or more scenarios.

    All scenarios must resolve to the same workload configuration (the
    pairing discipline: within a trial every policy sees the identical
    task stream).  ``base_seed`` defaults to the scenarios' shared seed
    override, falling back to the configured master seed; trial ``i``
    derives its own seed from it.  The resilience options
    (``checkpoint``/``resume``/``trial_timeout``/``max_retries``), the
    ``chunk_size`` dispatch knob, and collectors forward to
    :func:`repro.experiments.runner.run_ensemble`.
    """
    scens = (scenarios,) if isinstance(scenarios, Scenario) else tuple(scenarios)
    if not scens:
        raise ValueError("need at least one scenario")
    config = _common_config(scens)
    if base_seed is None:
        base_seed = config.seed
    return _run_ensemble(
        [s.spec for s in scens],
        config,
        num_trials,
        base_seed,
        n_jobs=n_jobs,
        keep_outcomes=keep_outcomes,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
        checkpoint=checkpoint,
        resume=resume,
        trial_timeout=trial_timeout,
        max_retries=max_retries,
        chunk_size=chunk_size,
    )


def budget_sweep(
    scenarios: Scenario | Sequence[Scenario],
    multipliers: Sequence[float],
    num_trials: int,
    *,
    base_seed: int | None = None,
    n_jobs: int = 1,
    perf: PerfConfig | None = None,
) -> SweepResult:
    """Sweep the energy-budget multiplier over one or more scenarios."""
    scens = (scenarios,) if isinstance(scenarios, Scenario) else tuple(scenarios)
    if not scens:
        raise ValueError("need at least one scenario")
    config = _common_config(scens)
    if base_seed is None:
        base_seed = config.seed
    return _budget_sweep(
        multipliers,
        [s.spec for s in scens],
        config,
        num_trials,
        base_seed,
        n_jobs=n_jobs,
        perf=perf,
    )
