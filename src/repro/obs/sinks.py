"""Event sinks: JSONL traces, ring buffers, and a metrics registry.

A *sink* is anything with an ``emit(event)`` method; the
:class:`~repro.obs.hooks.ObservingHooks` adapter fans every event out to
all attached sinks.  Sinks are deliberately dumb — no threading, no
buffering policy beyond what the host object provides — because a trial
is single-threaded and the ensemble runner isolates workers per process
(each worker owns its own :class:`MetricsRegistry`, merged afterwards).
"""

from __future__ import annotations

import collections
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import IO, Any, Iterator, Protocol, runtime_checkable

from repro.obs.events import Event, event_to_dict

__all__ = [
    "EventSink",
    "JsonlSink",
    "RingBufferSink",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_EDGES",
    "DEPTH_EDGES",
    "GRID_EDGES",
]


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive a stream of events."""

    def emit(self, event: Event) -> None:
        """Consume one event."""


class JsonlSink:
    """Append events to a JSON-lines trace file (one object per line).

    Accepts a path (opened lazily, closed by :meth:`close` or the
    context manager) or an already-open text file object (left open).

    Durability: path-backed sinks open their file *line-buffered* and
    each event is written as a single ``write`` call, so a sink
    abandoned mid-trial (worker crash, ``os._exit``) leaves only whole,
    parseable lines behind — a truncated trace is still a valid trace
    prefix for :func:`repro.io.trace_io.load_trace`.
    """

    def __init__(self, target: str | pathlib.Path | IO[str]) -> None:
        if isinstance(target, (str, pathlib.Path)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file: IO[str] = path.open("w", encoding="utf-8", buffering=1)
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.count = 0

    def emit(self, event: Event) -> None:
        """Write one event as a compact JSON line (a single ``write``)."""
        self._file.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
        self.count += 1

    def flush(self) -> None:
        """Push buffered lines to the OS without closing the sink."""
        self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file if this sink opened it."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    Useful for post-mortem inspection of long runs where a full trace
    would be too large: attach a ring, and on an anomaly read back the
    tail of the event stream.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: collections.deque[Event] = collections.deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: Event) -> None:
        self._buffer.append(event)
        self.total_emitted += 1

    @property
    def events(self) -> tuple[Event, ...]:
        """The retained events, oldest first."""
        return tuple(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def _encode_float(x: float) -> float | str:
    """JSON has no inf/nan; encode them as strings (see results_io)."""
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if math.isnan(x):
        return "nan"
    return x


#: Default bucket upper bounds (seconds) for decision-latency histograms:
#: ten powers of four from 1 µs up, the last bucket catching everything.
LATENCY_EDGES: tuple[float, ...] = tuple(1e-6 * 4.0**k for k in range(10))

#: Default bucket upper bounds for cluster-average queue depth.
DEPTH_EDGES: tuple[float, ...] = (0.25, 0.5, 0.8, 1.2, 2.0, 4.0, 8.0, 16.0)

#: Default bucket upper bounds for pmf grid sizes (support lengths) seen
#: by the stoch op observer: powers of four from 4 up, overflow catches
#: pathologically wide supports.
GRID_EDGES: tuple[float, ...] = tuple(4.0**k for k in range(1, 8))


@dataclass
class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``edges`` are *upper bounds* of the first ``len(edges)`` buckets; one
    overflow bucket is appended, so ``counts`` has ``len(edges) + 1``
    entries.  Fixed buckets make merging across worker processes an
    element-wise add.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("need at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("edges must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise ValueError("counts length must be len(edges) + 1")

    def observe(self, value: float) -> None:
        """Record one sample."""
        i = 0
        for i, edge in enumerate(self.edges):
            if value <= edge:
                break
        else:
            i = len(self.edges)
        self.counts[i] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self) -> float:
        """Mean of all observed samples (``nan`` when empty)."""
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical edges into this one."""
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        """Serialize (infinities encoded as strings for JSON)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": _encode_float(self.min),
            "max": _encode_float(self.max),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`to_dict` output."""
        return Histogram(
            edges=tuple(data["edges"]),
            counts=[int(c) for c in data["counts"]],
            count=int(data["count"]),
            total=float(data["total"]),
            min=float(data["min"]),
            max=float(data["max"]),
        )


class MetricsRegistry:
    """Named counters and histograms, mergeable across processes.

    The registry itself is schema-free; :mod:`repro.obs.hooks` uses the
    conventional names

    * ``tasks_mapped``, ``tasks_completed`` — counters;
    * ``tasks_discarded.<cause>`` — one counter per discard cause;
    * ``decision_latency_s.<heuristic>`` — histogram of
      ``Heuristic.select`` wall time (:data:`LATENCY_EDGES`);
    * ``queue_depth`` — histogram of cluster-average queue depth at
      each mapping event (:data:`DEPTH_EDGES`).

    The supervised ensemble executor
    (:mod:`repro.experiments.executor`) adds

    * ``executor.trials_retried``, ``executor.trials_quarantined``,
      ``executor.trials_resumed``, ``executor.checkpoints_written`` —
      recovery-action counters;
    * ``executor.faults.<kind>`` — one counter per observed fault kind
      (``crash``, ``timeout``, ``corrupt``, ``error``).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float, edges: tuple[float, ...]) -> None:
        """Record ``value`` into histogram ``name`` (created with ``edges``)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(edges)
        hist.observe(value)

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. from a worker process) into this one."""
        for name, n in other.counters.items():
            self.inc(name, n)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(hist.to_dict())
            else:
                mine.merge(hist)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix`` (suffix-keyed)."""
        cut = len(prefix)
        return {
            name[cut:]: n for name, n in self.counters.items() if name.startswith(prefix)
        }

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize for JSON dumps and cross-process transfer."""
        return {
            "format": "repro.metrics/1",
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.to_dict() for name, hist in sorted(self.histograms.items())
            },
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild from :meth:`to_dict` output."""
        if data.get("format") != "repro.metrics/1":
            raise ValueError("not a repro.metrics/1 document")
        registry = MetricsRegistry()
        registry.counters = {str(k): int(v) for k, v in data["counters"].items()}
        registry.histograms = {
            str(k): Histogram.from_dict(v) for k, v in data["histograms"].items()
        }
        return registry
