"""Observability: structured events, sinks, metrics and run manifests.

The simulator's headline numbers compress thousands of per-event
decisions — the running energy estimate ``zeta(t_l)``, the chosen
assignment's on-time probability ``rho``, discard causes — into a
handful of scalars per trial.  This package makes those decisions
inspectable without touching the engine's hot path:

* :mod:`repro.obs.events` — typed, frozen event records
  (``TaskMapped``, ``TaskDiscarded``, ``TaskCompleted``,
  ``EnergyExhausted``, ``TrialStarted``, ``TrialFinished``, plus the
  executor's recovery events ``TrialRetried``, ``TrialQuarantined``,
  ``CheckpointWritten``) with a stable JSON round-trip;
* :mod:`repro.obs.sinks` — destinations for those events: a JSONL
  trace writer, an in-memory ring buffer, and a
  :class:`~repro.obs.sinks.MetricsRegistry` of counters and histograms
  that merges across worker processes;
* :mod:`repro.obs.hooks` — the :class:`~repro.obs.hooks.ObservingHooks`
  adapter that plugs into the engine's ``EngineHooks`` protocol, plus
  :func:`~repro.obs.hooks.observe_trial` (formerly
  ``run_observed_trial``, kept as a deprecated alias);
* :mod:`repro.obs.manifest` — run manifests (config digest, seeds,
  version, git SHA, per-trial result digests) so any saved figure is
  reproducible from the manifest sitting next to it;
* :mod:`repro.obs.spans` — nested wall-clock span profiling with
  per-worker streams, merged deterministically and exportable as
  Chrome trace-event JSON (Perfetto-loadable);
* :mod:`repro.obs.timeline` — system-state snapshots (queue depth,
  busy cores, energy estimate, completions/discards) sampled on a
  uniform simulated-time grid;
* :mod:`repro.obs.telemetry` — live service instruments (counters,
  EWMA rates, P² streaming quantiles), SLO alert rules and online
  steady-state estimates, inert by default (:data:`NULL_TELEMETRY`);
* :mod:`repro.obs.export` — telemetry export surfaces: Prometheus text
  rendering, an atomic file exporter, and a stdlib HTTP scrape
  endpoint (:class:`TelemetryServer`);
* :mod:`repro.obs.monitor` — the ``repro monitor`` dashboard: tail
  window JSONL (or scrape a live endpoint) into a terminal view.

Observability is strictly opt-in: ``run_trial`` with no hooks allocates
no event objects, and :mod:`repro.sim.engine` never imports this
package.
"""

from repro.obs.events import (
    AlertFired,
    AlertResolved,
    CheckpointWritten,
    EnergyExhausted,
    Event,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialQuarantined,
    TrialRetried,
    TrialStarted,
    event_from_dict,
    event_to_dict,
)
from repro.obs.export import FileExporter, TelemetryServer, to_prometheus
from repro.obs.hooks import (
    ObservingHooks,
    TimedFilterChain,
    TimedHeuristic,
    observe_trial,
    run_observed_trial,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    load_manifest,
    manifest_for_results,
    save_manifest,
    trial_digest,
    verify_ensemble,
)
from repro.obs.sinks import JsonlSink, MetricsRegistry, RingBufferSink
from repro.obs.spans import SpanProfile, SpanRecorder, recording, span, traced
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    AlertRule,
    NullTelemetry,
    P2Quantile,
    Telemetry,
    parse_rule,
)
from repro.obs.timeline import TimelineRecorder, TimelineSet

__all__ = [
    "AlertFired",
    "AlertResolved",
    "AlertRule",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "P2Quantile",
    "Telemetry",
    "parse_rule",
    "FileExporter",
    "TelemetryServer",
    "to_prometheus",
    "CheckpointWritten",
    "EnergyExhausted",
    "Event",
    "TaskCompleted",
    "TaskDiscarded",
    "TaskMapped",
    "TrialFinished",
    "TrialQuarantined",
    "TrialRetried",
    "TrialStarted",
    "event_from_dict",
    "event_to_dict",
    "ObservingHooks",
    "TimedFilterChain",
    "TimedHeuristic",
    "observe_trial",
    "run_observed_trial",
    "RunManifest",
    "build_manifest",
    "config_digest",
    "load_manifest",
    "manifest_for_results",
    "save_manifest",
    "trial_digest",
    "verify_ensemble",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "SpanProfile",
    "SpanRecorder",
    "recording",
    "span",
    "traced",
    "TimelineRecorder",
    "TimelineSet",
]
