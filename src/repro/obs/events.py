"""Typed structured events emitted by an observed trial.

Every event is a small frozen dataclass with a class-level ``kind``
string.  ``event_to_dict`` / ``event_from_dict`` give a stable JSON
round-trip (the JSONL trace format written by
:class:`~repro.obs.sinks.JsonlSink` and read back by
:func:`repro.io.trace_io.load_trace`).

Trial-level events are only ever constructed inside
:class:`~repro.obs.hooks.ObservingHooks`; with no hooks attached the
engine allocates none of them.  The ensemble-level recovery events
(``TrialRetried``, ``TrialQuarantined``, ``CheckpointWritten``) are
emitted by :mod:`repro.experiments.executor` in the parent process.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Union

__all__ = [
    "Event",
    "TrialStarted",
    "TaskMapped",
    "TaskDiscarded",
    "TaskCompleted",
    "EnergyExhausted",
    "TrialFinished",
    "TrialRetried",
    "TrialQuarantined",
    "CheckpointWritten",
    "FaultInjected",
    "TaskOrphaned",
    "TaskShed",
    "AlertFired",
    "AlertResolved",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
]

#: Discard cause recorded when filtering leaves no feasible assignment.
CAUSE_EMPTY_FEASIBLE = "empty_feasible_set"
#: Discard cause recorded when a hook cancels a queued task.
CAUSE_CANCELLED = "cancelled"


@dataclass(frozen=True, slots=True)
class TrialStarted:
    """Emitted once before the first simulation event of a trial."""

    kind: ClassVar[str] = "trial_started"

    seed: int
    num_tasks: int
    heuristic: str
    variant: str
    budget: float


@dataclass(frozen=True, slots=True)
class TaskMapped:
    """A task was committed to a (core, P-state) assignment.

    ``energy_estimate`` is the heuristic's remaining-energy estimate
    ``zeta(t_l)`` *after* subtracting this assignment's EEC;
    ``prob_on_time`` is the chosen assignment's ``rho`` when the caller
    supplied it (``nan`` when unavailable through the hook interface).
    """

    kind: ClassVar[str] = "task_mapped"

    t: float
    task_id: int
    type_id: int
    core_id: int
    pstate: int
    energy_estimate: float
    queue_depth: float


@dataclass(frozen=True, slots=True)
class TaskDiscarded:
    """Filtering left no feasible assignment (or a hook cancelled)."""

    kind: ClassVar[str] = "task_discarded"

    t: float
    task_id: int
    type_id: int
    cause: str = CAUSE_EMPTY_FEASIBLE


@dataclass(frozen=True, slots=True)
class TaskCompleted:
    """A running task's sampled execution time elapsed."""

    kind: ClassVar[str] = "task_completed"

    t: float
    task_id: int
    type_id: int
    core_id: int


@dataclass(frozen=True, slots=True)
class EnergyExhausted:
    """Cumulative consumed energy crossed the budget at time ``t``.

    Exhaustion is a ledger quantity computed after the run (DESIGN.md
    §4.4), so this event is emitted at trial end, not mid-stream.
    """

    kind: ClassVar[str] = "energy_exhausted"

    t: float
    budget: float


@dataclass(frozen=True, slots=True)
class TrialFinished:
    """Emitted once after scoring, mirroring the TrialResult scalars."""

    kind: ClassVar[str] = "trial_finished"

    makespan: float
    missed: int
    completed_within: int
    discarded: int
    late: int
    energy_cutoff: int
    total_energy: float


@dataclass(frozen=True, slots=True)
class TrialRetried:
    """The supervised executor is re-running a trial after a fault.

    ``attempt`` is the 1-based attempt that failed; ``fault`` is one of
    the executor's fault kinds (``crash``, ``timeout``, ``corrupt``,
    ``error``); ``delay`` is the backoff (seconds) before the retry.
    """

    kind: ClassVar[str] = "trial_retried"

    trial: int
    attempt: int
    fault: str
    delay: float


@dataclass(frozen=True, slots=True)
class TrialQuarantined:
    """A trial exhausted its retry budget and was set aside as poison.

    The ensemble continues without it; the resulting
    ``PartialEnsembleResult`` names the trial as missing.
    """

    kind: ClassVar[str] = "trial_quarantined"

    trial: int
    attempts: int
    fault: str


@dataclass(frozen=True, slots=True)
class CheckpointWritten:
    """One completed trial's results were appended to a checkpoint shard.

    ``records`` counts the records this process has written to ``path``
    so far (resume appends, so the shard may hold more overall).
    """

    kind: ClassVar[str] = "checkpoint_written"

    trial: int
    path: str
    records: int


@dataclass(frozen=True, slots=True)
class FaultInjected:
    """An in-simulation fault transition fired (fail or recover).

    ``fault`` is the :class:`~repro.faults.FaultEvent` kind
    (``node_outage``/``core_outage``/``node_slowdown``), ``action`` is
    ``"fail"`` or ``"recover"``, ``target`` the node index or flat core
    id, and ``cores`` how many cores the transition covers.
    """

    kind: ClassVar[str] = "fault_injected"

    t: float
    fault: str
    action: str
    target: int
    cores: int


@dataclass(frozen=True, slots=True)
class TaskOrphaned:
    """An outage hit a task on ``core_id``.

    ``disposition`` is ``"remapped"`` (displaced, re-placed on a
    surviving core), ``"lost"`` (displaced, nowhere to go) or
    ``"killed"`` (running task terminated under the ``"lost"`` policy).
    """

    kind: ClassVar[str] = "task_orphaned"

    t: float
    task_id: int
    type_id: int
    core_id: int
    disposition: str


@dataclass(frozen=True, slots=True)
class TaskShed:
    """The admission controller deferred or dropped an arrival.

    ``cause`` is the tripped threshold (``queue_depth``/``budget``/
    ``min_prob``); ``deferred`` is true for a retry-later push (the
    task is not yet terminal) and false for a terminal drop.
    """

    kind: ClassVar[str] = "task_shed"

    t: float
    task_id: int
    type_id: int
    cause: str
    deferred: bool


@dataclass(frozen=True, slots=True)
class AlertFired:
    """An SLO rule breached for its required number of windows.

    ``rule`` is the canonical rule spec (e.g. ``"on_time_prob<0.9:3"``),
    ``value`` the metric value of the tripping window, ``window_index``
    the 0-based index of that window, and ``streak`` how many
    consecutive windows have breached.  Emitted by
    :class:`repro.obs.telemetry.Telemetry` at window close.
    """

    kind: ClassVar[str] = "alert_fired"

    t: float
    rule: str
    metric: str
    value: float
    window_index: int
    streak: int


@dataclass(frozen=True, slots=True)
class AlertResolved:
    """A previously firing SLO rule saw a non-breaching window."""

    kind: ClassVar[str] = "alert_resolved"

    t: float
    rule: str
    metric: str
    window_index: int


Event = Union[
    TrialStarted,
    TaskMapped,
    TaskDiscarded,
    TaskCompleted,
    EnergyExhausted,
    TrialFinished,
    TrialRetried,
    TrialQuarantined,
    CheckpointWritten,
    FaultInjected,
    TaskOrphaned,
    TaskShed,
    AlertFired,
    AlertResolved,
]

#: kind string -> event class, for deserialization.
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        TrialStarted,
        TaskMapped,
        TaskDiscarded,
        TaskCompleted,
        EnergyExhausted,
        TrialFinished,
        TrialRetried,
        TrialQuarantined,
        CheckpointWritten,
        FaultInjected,
        TaskOrphaned,
        TaskShed,
        AlertFired,
        AlertResolved,
    )
}


def event_to_dict(event: Event) -> dict[str, Any]:
    """Serialize an event to a plain dict with its ``kind`` tag first."""
    data: dict[str, Any] = {"kind": event.kind}
    data.update(asdict(event))
    return data


def event_from_dict(data: dict[str, Any]) -> Event:
    """Rebuild an event from :func:`event_to_dict` output.

    Unknown keys are rejected (they indicate a schema drift the reader
    should not silently swallow); unknown kinds raise ``ValueError``.
    """
    kind = data.get("kind")
    cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    payload = {k: v for k, v in data.items() if k != "kind"}
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown fields for {kind!r}: {sorted(unknown)}")
    return cls(**payload)
