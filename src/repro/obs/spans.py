"""Span profiling: where wall-clock time goes inside an observed run.

A *span* is one timed region of code — an engine event handler, a filter
chain evaluation, a heuristic decision, a whole trial.  Spans nest, and
every completed span records both its total duration and its *self*
time (total minus the time spent in child spans), which is what a
top-spans profile actually needs.

The design mirrors the rest of :mod:`repro.obs`: profiling is strictly
opt-in and inert by default.

* :class:`SpanRecorder` collects spans for one *stream* (one process or
  worker; the stream id becomes the ``pid`` of the exported trace).
  ``recorder.span("name")`` is a context manager; ``recorder.add``
  records an externally-timed region (used by
  :class:`~repro.obs.hooks.TimedHeuristic` and the ensemble executor).
* A module-level *current recorder* supports the decorator/context
  manager API in user code: :func:`span` and :func:`traced` consult it
  and are no-ops — returning a shared singleton, allocating nothing —
  while no recorder is installed.
* :class:`SpanProfile` merges the streams of many recorders (parent +
  workers) deterministically — stable sort by stream id, then span
  start order — and exports Chrome trace-event JSON loadable in
  Perfetto or ``chrome://tracing``.

Timing uses ``time.perf_counter``; span *counts* and nesting are
deterministic for a fixed seed, durations of course are not.  The
recorder is intentionally not thread-safe: a trial is single-threaded
and worker processes each own their recorder.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "SpanRecord",
    "SpanRecorder",
    "SpanProfile",
    "span",
    "traced",
    "install",
    "uninstall",
    "current",
    "recording",
    "NULL_SPAN",
]

#: On-disk format tag of a serialized span stream.
SPANS_FORMAT = "repro.spans/1"


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span.

    ``seq`` is the span's *open* order within its stream (0-based), the
    deterministic sort key; ``start`` is a ``perf_counter`` reading,
    normalized per stream only on export.  ``self_dur`` is ``dur`` minus
    the total duration of direct children.
    """

    seq: int
    name: str
    start: float
    dur: float
    self_dur: float
    depth: int
    stream: int = 0
    tid: int = 0


class _NullSpan:
    """The shared do-nothing span: no recorder installed, nothing recorded."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: Singleton returned by :func:`span` when no recorder is installed, so
#: instrumented code allocates nothing on the unprofiled hot path.
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager for one in-flight span of a :class:`SpanRecorder`."""

    __slots__ = ("_recorder", "_name", "_tid")

    def __init__(self, recorder: "SpanRecorder", name: str, tid: int) -> None:
        self._recorder = recorder
        self._name = name
        self._tid = tid

    def __enter__(self) -> "_OpenSpan":
        self._recorder._open(self._name, self._tid)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder._close()
        return False


class SpanRecorder:
    """Collects nested spans for one stream (process/worker).

    Parameters
    ----------
    stream:
        Integer stream id; becomes the ``pid`` of exported trace events.
        Give every worker a distinct id (the runner uses ``trial + 1``,
        reserving 0 for the parent) so streams merge deterministically.
    label:
        Human-readable stream name shown by trace viewers.
    """

    __slots__ = ("stream", "label", "records", "_stack", "_next_seq", "_clock")

    def __init__(
        self,
        stream: int = 0,
        label: str = "",
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stream = int(stream)
        self.label = label or f"stream-{stream}"
        self.records: list[SpanRecord] = []
        #: In-flight frames: [seq, name, tid, t0, child_time]
        self._stack: list[list[Any]] = []
        self._next_seq = 0
        self._clock = clock

    # -- recording ------------------------------------------------------

    def span(self, name: str, tid: int = 0) -> _OpenSpan:
        """Context manager timing one region as a span named ``name``."""
        return _OpenSpan(self, name, tid)

    def _open(self, name: str, tid: int) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._stack.append([seq, name, tid, self._clock(), 0.0])

    def _close(self) -> None:
        seq, name, tid, t0, child = self._stack.pop()
        dur = self._clock() - t0
        self.records.append(
            SpanRecord(
                seq=seq,
                name=name,
                start=t0,
                dur=dur,
                self_dur=max(dur - child, 0.0),
                depth=len(self._stack),
                stream=self.stream,
                tid=tid,
            )
        )
        if self._stack:
            self._stack[-1][4] += dur

    def add(self, name: str, start: float, dur: float, *, tid: int = 0) -> None:
        """Record an externally-timed span (``start`` from the same clock).

        The span is attributed as a child of whatever span is currently
        open, exactly as if it had been opened and closed through
        :meth:`span` — this is how wrappers that already measure a
        duration (e.g. ``TimedHeuristic``) feed the profile without
        timing the region twice.
        """
        seq = self._next_seq
        self._next_seq += 1
        self.records.append(
            SpanRecord(
                seq=seq,
                name=name,
                start=start,
                dur=dur,
                self_dur=dur,
                depth=len(self._stack),
                stream=self.stream,
                tid=tid,
            )
        )
        if self._stack:
            self._stack[-1][4] += dur

    def __len__(self) -> int:
        return len(self.records)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize the stream for the trip back to the parent process."""
        return {
            "format": SPANS_FORMAT,
            "stream": self.stream,
            "label": self.label,
            "spans": [
                [r.seq, r.name, r.start, r.dur, r.self_dur, r.depth, r.tid]
                for r in self.records
            ],
        }


# ----------------------------------------------------------------------
# Module-level current recorder (decorator / context-manager API)
# ----------------------------------------------------------------------

_current: SpanRecorder | None = None


def install(recorder: SpanRecorder) -> SpanRecorder:
    """Make ``recorder`` the process-wide current recorder; returns it."""
    global _current
    _current = recorder
    return recorder


def uninstall() -> None:
    """Clear the current recorder; :func:`span` goes back to no-ops."""
    global _current
    _current = None


def current() -> SpanRecorder | None:
    """The installed recorder, or ``None``."""
    return _current


def span(name: str, tid: int = 0) -> _OpenSpan | _NullSpan:
    """Time a region against the installed recorder (no-op when none)."""
    recorder = _current
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, tid)


def traced(name: str | None = None) -> Callable:
    """Decorator: time every call of the function as a span.

    Uses the function's qualified name unless ``name`` is given; checks
    the installed recorder per call, so decorated functions stay
    overhead-free while profiling is off.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            recorder = _current
            if recorder is None:
                return fn(*args, **kwargs)
            with recorder.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class recording:
    """``with recording(stream=0, label="x") as rec:`` — scoped install."""

    def __init__(self, stream: int = 0, label: str = "") -> None:
        self._recorder = SpanRecorder(stream, label)
        self._previous: SpanRecorder | None = None

    def __enter__(self) -> SpanRecorder:
        self._previous = _current
        install(self._recorder)
        return self._recorder

    def __exit__(self, *exc: object) -> None:
        global _current
        _current = self._previous


# ----------------------------------------------------------------------
# Merged profiles and Chrome trace export
# ----------------------------------------------------------------------


class SpanProfile:
    """Span streams from one run (parent + workers), merged.

    Streams merge deterministically: records are ordered by
    ``(stream, seq)``, i.e. stable sort by worker id then span start
    (``seq`` is open order, and starts are monotone in it within a
    stream).  Span names, counts and nesting are therefore identical
    across repeated same-seed runs; only the measured durations differ.
    """

    def __init__(self) -> None:
        self.labels: dict[int, str] = {}
        self.records: list[SpanRecord] = []

    def add_stream(self, stream: "SpanRecorder | Mapping[str, Any]") -> None:
        """Fold one recorder (or its :meth:`SpanRecorder.to_dict`) in."""
        if isinstance(stream, SpanRecorder):
            self.labels[stream.stream] = stream.label
            self.records.extend(stream.records)
            return
        if stream.get("format") != SPANS_FORMAT:
            raise ValueError(f"not a {SPANS_FORMAT} document")
        sid = int(stream["stream"])
        self.labels[sid] = str(stream.get("label", f"stream-{sid}"))
        for seq, name, start, dur, self_dur, depth, tid in stream["spans"]:
            self.records.append(
                SpanRecord(
                    seq=int(seq),
                    name=str(name),
                    start=float(start),
                    dur=float(dur),
                    self_dur=float(self_dur),
                    depth=int(depth),
                    stream=sid,
                    tid=int(tid),
                )
            )

    def sorted_records(self) -> list[SpanRecord]:
        """All records in the deterministic merge order."""
        return sorted(self.records, key=lambda r: (r.stream, r.seq))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.sorted_records())

    def span_counts(self) -> dict[str, int]:
        """Deterministic summary: span name -> call count (name-sorted)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.name] = counts.get(record.name, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> list[tuple[str, int, float, float]]:
        """Per-name ``(name, count, total_s, self_s)`` rows, total-descending."""
        totals: dict[str, list[float]] = {}
        for record in self.records:
            entry = totals.setdefault(record.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += record.dur
            entry[2] += record.self_dur
        rows = [
            (name, int(count), total, self_t)
            for name, (count, total, self_t) in totals.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def to_chrome_trace(self) -> dict[str, Any]:
        """Export as a Chrome trace-event document (Perfetto-loadable).

        Spans become complete ``"X"`` events; each stream is one process
        (``pid`` = stream id, named by a ``process_name`` metadata
        record).  Timestamps are microseconds, normalized per stream to
        that stream's earliest span start, so every ``ts`` is
        non-negative and events within a ``(pid, tid)`` track are
        time-ordered.
        """
        t0_by_stream: dict[int, float] = {}
        for record in self.records:
            t0 = t0_by_stream.get(record.stream)
            if t0 is None or record.start < t0:
                t0_by_stream[record.stream] = record.start
        events: list[dict[str, Any]] = []
        for sid in sorted(self.labels):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": sid,
                    "tid": 0,
                    "args": {"name": self.labels[sid]},
                }
            )
        for record in self.sorted_records():
            t0 = t0_by_stream[record.stream]
            events.append(
                {
                    "ph": "X",
                    "cat": "repro",
                    "name": record.name,
                    "ts": round((record.start - t0) * 1e6, 3),
                    "dur": round(record.dur * 1e6, 3),
                    "pid": record.stream,
                    "tid": record.tid,
                    "args": {"depth": record.depth, "self_us": round(record.self_dur * 1e6, 3)},
                }
            )
        # Stable viewer ordering: metadata first, then (pid, tid, ts).
        events.sort(key=lambda e: (e["pid"], e.get("ph") != "M", e["tid"], e.get("ts", -1.0)))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format": "repro.profile/1", "streams": len(self.labels)},
        }
