"""``repro monitor`` internals: tail window JSONL into a live view.

A running ``repro serve --windows-out`` appends one JSON line per closed
window; this module turns that file (or a live telemetry endpoint) into
a terminal dashboard:

* :func:`read_window_rows` — incremental, tail-tolerant JSONL reader:
  resumes from a byte offset, ignores the in-progress last line until
  its newline lands, and separates the truncation trailer from window
  rows.
* :func:`evaluate_rules` — replay the SLO rule streak machine
  (:class:`~repro.obs.telemetry.AlertRule`) over the rows, yielding the
  same firing states a live :class:`~repro.obs.telemetry.Telemetry`
  would hold.
* :func:`render_monitor` — the dashboard text: a recent-windows table,
  steady-state summaries (warm-up index + batch-means CIs) once enough
  windows exist, and SLO health.
* :func:`scrape` — fetch a ``/metrics`` or ``/health`` document from a
  live :class:`~repro.obs.export.TelemetryServer` URL (stdlib urllib).

Rendering is pure string building over parsed rows — no engine imports,
so the monitor can run far from the simulating process.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.telemetry import AlertRule, RuleState, parse_rule

__all__ = [
    "read_window_rows",
    "evaluate_rules",
    "render_monitor",
    "scrape",
]

#: Steady-state section appears once this many windows have closed.
MIN_STEADY_WINDOWS = 10


def read_window_rows(
    path: str | Path, *, offset: int = 0
) -> tuple[list[dict[str, Any]], dict[str, Any] | None, int]:
    """Read complete window rows from ``path`` starting at byte ``offset``.

    Returns ``(rows, trailer, new_offset)``.  Only newline-terminated
    lines are consumed (a writer mid-line leaves ``new_offset`` at the
    last complete row), so a follow loop can poll a growing file safely.
    Unparseable or foreign lines are skipped; the
    ``repro.window_trailer/...`` row comes back separately.
    """
    rows: list[dict[str, Any]] = []
    trailer: dict[str, Any] | None = None
    with open(path, "rb") as fh:
        fh.seek(offset)
        data = fh.read()
    end = data.rfind(b"\n")
    if end < 0:
        return rows, trailer, offset
    for line in data[: end + 1].splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if not isinstance(row, dict):
            continue
        fmt = str(row.get("format", ""))
        if fmt.startswith("repro.window_trailer/"):
            trailer = row
        elif fmt.startswith("repro.window/"):
            rows.append(row)
    return rows, trailer, offset + end + 1


def evaluate_rules(
    rules: Sequence[AlertRule | str],
    rows: Sequence[Mapping[str, Any]],
    *,
    budget_rate: float | None = None,
) -> list[RuleState]:
    """Replay the SLO streak machine over window rows, newest state out."""
    from repro.sim.metrics import derived_window_metrics

    parsed = [parse_rule(r) if isinstance(r, str) else r for r in rules]
    states = [RuleState(rule) for rule in parsed]
    for row in rows:
        metrics = derived_window_metrics(row, budget_rate=budget_rate)
        for state in states:
            state.last_value = metrics.get(state.rule.metric, math.nan)
            if state.rule.breached(metrics):
                state.streak += 1
                state.breached_windows += 1
                if not state.firing and state.streak >= state.rule.for_windows:
                    state.firing = True
                    state.fired_count += 1
            else:
                state.streak = 0
                state.firing = False
    return states


def _fmt_cell(value: float, scale: float = 1.0, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value / scale:.{digits}f}"


def render_monitor(
    rows: Sequence[Mapping[str, Any]],
    *,
    rules: Sequence[AlertRule | str] = (),
    tail: int = 10,
    budget_rate: float | None = None,
    trailer: Mapping[str, Any] | None = None,
) -> str:
    """Render the dashboard text over the window rows seen so far."""
    from repro.sim.metrics import derived_window_metrics

    lines: list[str] = []
    if not rows:
        return "no windows yet\n"
    derived = [derived_window_metrics(row, budget_rate=budget_rate) for row in rows]
    label = rows[-1].get("label", "?")
    traffic = rows[-1].get("traffic", "?")
    span = derived[-1]["end"] - derived[0]["start"]
    lines.append(
        f"{label} [{traffic}] — {len(rows)} windows, "
        f"t = {derived[-1]['end']:.0f} s ({span:.0f} s covered)"
    )
    if trailer is not None:
        lines.append("run truncated (graceful shutdown trailer present)")
    lines.append("")
    header = (
        f"{'#':>5} {'end':>10} {'arr':>6} {'done':>6} {'late':>5} "
        f"{'on-time':>8} {'queue':>6} {'MJ':>8} {'burn':>6} {'shed':>5}"
    )
    lines.append(header)
    shown = list(enumerate(rows))[-max(tail, 1):]
    for index, row in shown:
        m = derived[index]
        lines.append(
            f"{row.get('index', index):>5} {m['end']:>10.1f} "
            f"{int(m['arrivals']):>6} {int(m['completed']):>6} "
            f"{int(m['late']):>5} {_fmt_cell(m['on_time_prob'], digits=3):>8} "
            f"{int(m['queue_depth']):>6} {_fmt_cell(m['energy'], 1e6, 3):>8} "
            f"{_fmt_cell(m['burn_rate']):>6} {int(m['shed']):>5}"
        )
    if len(rows) >= MIN_STEADY_WINDOWS:
        from repro.analysis.steady_state import analyze_windows, steady_state_table

        lines.append("")
        lines.append("steady state (MSER-5 warm-up, batch-means CI):")
        lines.append(
            steady_state_table(analyze_windows(rows, budget_rate=budget_rate))
        )
    if rules:
        states = evaluate_rules(rules, rows, budget_rate=budget_rate)
        lines.append("")
        firing = [s for s in states if s.firing]
        lines.append(
            "SLO health: "
            + ("OK" if not firing else f"{len(firing)} rule(s) FIRING")
        )
        for state in states:
            mark = "FIRING" if state.firing else "ok"
            value = _fmt_cell(state.last_value, digits=4)
            lines.append(
                f"  [{mark:>6}] {state.rule.spec}  last={value}  "
                f"breached {state.breached_windows}/{len(rows)} windows"
            )
    return "\n".join(lines) + "\n"


def scrape(url: str, *, timeout: float = 5.0) -> str:
    """GET a telemetry document (``/metrics`` text or ``/health`` JSON).

    A bare endpoint base URL gets ``/metrics`` appended.  A 503 from
    ``/health`` (SLO firing) still returns the body — the caller decides
    what unhealthy means for it.
    """
    from urllib.error import HTTPError
    from urllib.request import urlopen

    if not url.rstrip("/").endswith(("/metrics", "/health")):
        url = url.rstrip("/") + "/metrics"
    try:
        with urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except HTTPError as exc:  # 503 health responses still carry a body
        return exc.read().decode("utf-8")
