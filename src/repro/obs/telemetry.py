"""Live service telemetry: streaming instruments, SLO rules, health.

The service layer's window JSONL answers "what happened"; this module
answers "how is the running service doing *right now*" with bounded
state:

* **Instruments** — :class:`Counter` and :class:`Gauge` primitives, a
  simulated-time :class:`EwmaRate` (exponentially-decayed events/sec, a
  load-average-style estimator) and :class:`Ewma` mean, and the
  :class:`P2Quantile` streaming quantile estimator (Jain & Chlamtac
  1985): five markers per quantile, O(1) memory and time per
  observation, no sample buffer.
* **The hub** — :class:`Telemetry` wires instruments to the service
  hooks (completion latency, on-time indicator, queue depth) and to
  window closes (per-window energy, gauges, rates), keeps a bounded
  per-window history, refreshes a live steady-state estimate
  (MSER-5 warm-up + batch-means CI via
  :mod:`repro.analysis.steady_state`), and evaluates SLO rules.
* **SLO rules** — :class:`AlertRule` thresholds over the derived
  window-metric namespace (:func:`repro.sim.metrics.derived_window_metrics`;
  ``burn_rate`` gives budget burn-rate alerting), held for N consecutive
  windows; transitions emit typed :class:`~repro.obs.events.AlertFired`
  / :class:`~repro.obs.events.AlertResolved` events to any attached
  sinks and roll up into :meth:`Telemetry.health`.

Telemetry is strictly opt-in and results-neutral: the engine never sees
it, it only reads values the hooks already carry, and the inert
:data:`NULL_TELEMETRY` singleton (same pattern as
:data:`repro.obs.spans.NULL_SPAN`) keeps the disabled path free of
allocations — the service hooks check one class attribute
(:attr:`Telemetry.enabled`) and skip all derived-value computation.

Thread-safety: the simulation thread is the only writer.  Snapshot
renders (:meth:`Telemetry.render_prometheus`, :meth:`Telemetry.health`)
take an internal lock that window closes also hold, so a concurrent
scrape (:class:`repro.obs.export.TelemetryServer`) sees whole-window
consistency; sub-window instrument reads are racy by design and only
ever one event stale.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.obs.events import AlertFired, AlertResolved, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hints only)
    from repro.analysis.steady_state import SteadyStateSummary
    from repro.sim.metrics import WindowStats

__all__ = [
    "Counter",
    "Gauge",
    "Ewma",
    "EwmaRate",
    "P2Quantile",
    "QuantileSet",
    "AlertRule",
    "RuleState",
    "parse_rule",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "DEFAULT_QUANTILES",
    "STEADY_METRICS",
]

#: Quantiles each :class:`QuantileSet` tracks by default.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)

#: Per-window metrics the hub keeps live steady-state estimates for.
STEADY_METRICS: tuple[str, ...] = ("on_time_prob", "throughput", "power")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A last-value instrument (``nan`` until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


class Ewma:
    """Exponentially-weighted mean over *simulated* time.

    ``tau`` is the decay time constant in simulated seconds: an
    observation's weight halves every ``tau * ln 2`` seconds.  Unevenly
    spaced observations are handled exactly (per-gap decay factor), so
    the estimator is well-defined for event-driven feeds.
    """

    __slots__ = ("tau", "_value", "_t")

    def __init__(self, tau: float) -> None:
        if not (tau > 0.0):
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self._value = math.nan
        self._t: float | None = None

    def observe(self, t: float, x: float) -> None:
        if self._t is None:
            self._value = float(x)
        else:
            # Out-of-order timestamps decay nothing rather than explode.
            dt = max(t - self._t, 0.0)
            alpha = 1.0 - math.exp(-dt / self.tau)
            self._value += alpha * (float(x) - self._value)
        self._t = t

    @property
    def value(self) -> float:
        return self._value


class EwmaRate:
    """Exponentially-decayed event rate (events/sec of simulated time).

    Each event is an impulse of weight ``n/tau`` added to a value that
    decays as ``exp(-dt/tau)``; in equilibrium under rate ``r`` the
    estimator converges to ``r``.  Reading through :meth:`rate` decays
    up to the asked-for time, so a quiet stream reads as fading load.
    """

    __slots__ = ("tau", "_value", "_t")

    def __init__(self, tau: float) -> None:
        if not (tau > 0.0):
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self._value = 0.0
        self._t: float | None = None

    def observe(self, t: float, n: float = 1.0) -> None:
        if self._t is not None:
            self._value *= math.exp(-max(t - self._t, 0.0) / self.tau)
        self._value += n / self.tau
        self._t = t

    def rate(self, t: float | None = None) -> float:
        """The decayed rate, optionally advanced to time ``t``."""
        if self._t is None:
            return 0.0
        if t is None or t <= self._t:
            return self._value
        return self._value * math.exp(-(t - self._t) / self.tau)


class P2Quantile:
    """Streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the running ``q``-quantile without storing the
    stream: marker heights move by a piecewise-parabolic prediction
    (falling back to linear when the parabola would disorder them).
    Until five observations arrive the buffer is exact — :attr:`value`
    then matches ``numpy.quantile(..., method="linear")`` bit for bit;
    afterwards it is an O(1)-state approximation whose error vanishes on
    smooth distributions as the stream grows.
    """

    __slots__ = ("q", "count", "_heights", "_pos", "_desired", "_rate")

    def __init__(self, q: float) -> None:
        if not (0.0 < q < 1.0):
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []
        # Marker positions (1-based, per the paper), desired positions,
        # and the per-observation desired-position increments.
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(x)
            h.sort()
            return
        pos = self._pos
        # Locate the cell and clamp the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rate[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (``nan`` before any sample)."""
        h = self._heights
        if not h:
            return math.nan
        if self.count <= 5:
            # Exact linear-interpolated quantile of the sorted buffer,
            # using NumPy's stabilized lerp so the result matches
            # ``np.quantile(..., method="linear")`` bit for bit.
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            t = rank - lo
            diff = h[hi] - h[lo]
            return h[hi] - diff * (1.0 - t) if t >= 0.5 else h[lo] + diff * t
        return h[2]


class QuantileSet:
    """Several :class:`P2Quantile` markers over one sample stream."""

    __slots__ = ("estimators", "count", "_min", "_max", "total")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.estimators = {float(q): P2Quantile(q) for q in quantiles}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.total += x
        self._min = min(self._min, x)
        self._max = max(self._max, x)
        for est in self.estimators.values():
            est.observe(x)

    def values(self) -> dict[float, float]:
        """Current ``{q: estimate}`` mapping."""
        return {q: est.value for q, est in self.estimators.items()}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan


# ----------------------------------------------------------------------
# SLO rules
# ----------------------------------------------------------------------

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class AlertRule:
    """One SLO rule: *metric op threshold*, held ``for_windows`` windows.

    ``metric`` names a key of the derived window-metric namespace
    (:func:`repro.sim.metrics.derived_window_metrics`): e.g.
    ``on_time_prob``, ``queue_depth``, ``budget_remaining``, ``shed``,
    or ``burn_rate`` for energy burn-rate alerting.  The rule *breaches*
    on a window where the comparison holds and *fires* after
    ``for_windows`` consecutive breaches; one non-breaching window
    resolves it.  ``nan`` metric values never breach (no data is not an
    outage).
    """

    metric: str
    op: str
    threshold: float
    for_windows: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}; known: {sorted(_OPS)}")
        if self.for_windows < 1:
            raise ValueError(f"for_windows must be >= 1, got {self.for_windows}")
        if not self.name:
            object.__setattr__(self, "name", self.spec)

    @property
    def spec(self) -> str:
        """Canonical ``metric<threshold:for`` spelling of the rule."""
        text = f"{self.metric}{self.op}{self.threshold:g}"
        return f"{text}:{self.for_windows}" if self.for_windows > 1 else text

    def breached(self, metrics: Mapping[str, float]) -> bool:
        value = metrics.get(self.metric, math.nan)
        if math.isnan(value):
            return False
        return _OPS[self.op](value, self.threshold)


def parse_rule(spec: str) -> AlertRule:
    """Parse ``"on_time_prob<0.9:3"`` into an :class:`AlertRule`.

    Grammar: ``<metric><op><threshold>[:<for_windows>]`` with ``op`` one
    of ``<``, ``<=``, ``>``, ``>=``.  The optional ``:N`` suffix requires
    N consecutive breaching windows before the rule fires (default 1).
    """
    body, _, held = spec.partition(":")
    for op in ("<=", ">=", "<", ">"):
        metric, sep, value = body.partition(op)
        if sep:
            break
    else:
        raise ValueError(f"no comparison operator in SLO rule {spec!r}")
    if not metric or not value:
        raise ValueError(f"malformed SLO rule {spec!r} (want metric<threshold[:N])")
    try:
        threshold = float(value)
    except ValueError:
        raise ValueError(f"bad threshold {value!r} in SLO rule {spec!r}") from None
    try:
        for_windows = int(held) if held else 1
    except ValueError:
        raise ValueError(f"bad window count {held!r} in SLO rule {spec!r}") from None
    return AlertRule(
        metric=metric.strip(), op=op, threshold=threshold, for_windows=for_windows
    )


@dataclass
class RuleState:
    """Mutable evaluation state of one rule."""

    rule: AlertRule
    streak: int = 0
    firing: bool = False
    fired_count: int = 0
    breached_windows: int = 0
    last_value: float = math.nan

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.spec,
            "metric": self.rule.metric,
            "firing": self.firing,
            "streak": self.streak,
            "fired_count": self.fired_count,
            "breached_windows": self.breached_windows,
            "last_value": None if math.isnan(self.last_value) else self.last_value,
        }


# ----------------------------------------------------------------------
# The hub
# ----------------------------------------------------------------------


class Telemetry:
    """Streaming instrument hub for one service run.

    Parameters
    ----------
    quantiles:
        Quantiles tracked for completion latency, queue depth and
        per-window energy.
    rules:
        SLO :class:`AlertRule` instances (or rule spec strings, parsed
        with :func:`parse_rule`) evaluated at every window close.
    sinks:
        Event sinks receiving :class:`~repro.obs.events.AlertFired` /
        :class:`AlertResolved` transitions (any ``emit(event)`` object).
    ewma_tau:
        Decay constant (simulated seconds) of the rate/mean EWMAs.
        ``None`` defers to :meth:`configure` — the service layer binds
        it to three windows.
    history_cap:
        Retained per-window metric rows (the steady-state estimate and
        ``repro monitor``'s source).  The cap bounds memory on unbounded
        runs; warm-up detection needs the front of the series, so runs
        longer than the cap freeze the warm-up estimate rather than
        silently sliding the origin.
    steady_metrics:
        Per-window metrics to keep live steady-state estimates for.
    """

    enabled = True

    def __init__(
        self,
        *,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        rules: Iterable[AlertRule | str] = (),
        sinks: Sequence[Any] = (),
        ewma_tau: float | None = None,
        history_cap: int = 4096,
        steady_metrics: Sequence[str] = STEADY_METRICS,
    ) -> None:
        if history_cap < 8:
            raise ValueError(f"history_cap must be >= 8, got {history_cap}")
        self.latency = QuantileSet(quantiles)
        self.queue_depth = QuantileSet(quantiles)
        self.window_energy = QuantileSet(quantiles)
        self.counters: dict[str, Counter] = {
            name: Counter()
            for name in (
                "tasks_mapped",
                "tasks_completed",
                "tasks_on_time",
                "tasks_late",
                "tasks_discarded",
                "tasks_shed",
                "tasks_deferred",
                "windows",
            )
        }
        self.gauges: dict[str, Gauge] = {
            name: Gauge()
            for name in (
                "in_system",
                "budget_remaining",
                "window_on_time_prob",
                "window_energy_joules",
                "burn_rate",
            )
        }
        self._tau = float(ewma_tau) if ewma_tau is not None else None
        self._arrival_rate: EwmaRate | None = None
        self._completion_rate: EwmaRate | None = None
        self._on_time_ewma: Ewma | None = None
        self.history: list[dict[str, float]] = []
        self.history_cap = int(history_cap)
        self.history_dropped = 0
        self.rules = tuple(
            parse_rule(r) if isinstance(r, str) else r for r in rules
        )
        self.rule_states = tuple(RuleState(rule) for rule in self.rules)
        self.sinks = tuple(sinks)
        self.alerts: list[Event] = []
        self.budget_rate: float | None = None
        self.window: float | None = None
        self._steady_metrics = tuple(steady_metrics)
        self._steady: dict[str, "SteadyStateSummary"] = {}
        self._lock = threading.Lock()
        self._now = 0.0
        #: Objects with an ``export()`` method (e.g. a ``FileExporter``)
        #: re-run after every window close, outside the hub lock.
        self.exporters: list[Any] = []

    # -- wiring ---------------------------------------------------------

    def configure(
        self, *, window: float | None = None, budget_rate: float | None = None
    ) -> None:
        """Late-bind run parameters the constructor cannot know.

        The service layer calls this before the run starts: ``window``
        sets the default EWMA time constant (three windows) when the
        constructor left it unresolved, and ``budget_rate`` (allowance
        joules/second) enables the ``burn_rate`` metric.
        """
        if window is not None:
            self.window = float(window)
            if self._tau is None:
                self._tau = 3.0 * float(window)
        if budget_rate is not None:
            self.budget_rate = float(budget_rate)

    def _rates(self) -> tuple[EwmaRate, EwmaRate, Ewma]:
        if self._arrival_rate is None:
            tau = self._tau if self._tau is not None else 60.0
            self._arrival_rate = EwmaRate(tau)
            self._completion_rate = EwmaRate(tau)
            self._on_time_ewma = Ewma(tau)
        assert self._completion_rate is not None and self._on_time_ewma is not None
        return self._arrival_rate, self._completion_rate, self._on_time_ewma

    # -- event feeds (called by the service hooks) ----------------------

    def on_mapped(self, t: float, queue_depth: float) -> None:
        """A task was admitted at ``t`` with the given avg queue depth."""
        self._now = t
        self.counters["tasks_mapped"].inc()
        self.queue_depth.observe(queue_depth)
        self._rates()[0].observe(t)

    def on_completion(self, t: float, latency: float, on_time: bool) -> None:
        """A task finished ``latency`` seconds after its arrival."""
        self._now = t
        self.counters["tasks_completed"].inc()
        self.counters["tasks_on_time" if on_time else "tasks_late"].inc()
        self.latency.observe(latency)
        _, completion, ewma = self._rates()
        completion.observe(t)
        ewma.observe(t, 1.0 if on_time else 0.0)

    def on_discarded(self, t: float) -> None:
        self._now = t
        self.counters["tasks_discarded"].inc()

    def on_shed(self, t: float, deferred: bool) -> None:
        self._now = t
        self.counters["tasks_deferred" if deferred else "tasks_shed"].inc()

    def on_window(self, stats: "WindowStats") -> None:
        """A metric window closed: fold it in and re-evaluate health."""
        from repro.sim.metrics import derived_window_metrics

        metrics = derived_window_metrics(stats.to_dict(), budget_rate=self.budget_rate)
        with self._lock:
            self.counters["windows"].inc()
            self.window_energy.observe(metrics["energy"])
            self.gauges["in_system"].set(metrics["queue_depth"])
            self.gauges["budget_remaining"].set(metrics["budget_remaining"])
            self.gauges["window_on_time_prob"].set(metrics["on_time_prob"])
            self.gauges["window_energy_joules"].set(metrics["energy"])
            self.gauges["burn_rate"].set(metrics["burn_rate"])
            if len(self.history) < self.history_cap:
                self.history.append(metrics)
            else:
                self.history_dropped += 1
            self._evaluate_rules(metrics)
            self._refresh_steady_state()
        # Exporters re-render via snapshot(), which takes the lock.
        for exporter in self.exporters:
            exporter.export()

    # -- SLO evaluation -------------------------------------------------

    def _evaluate_rules(self, metrics: Mapping[str, float]) -> None:
        window_index = self.counters["windows"].value - 1
        t = float(metrics.get("end", self._now))
        for state in self.rule_states:
            rule = state.rule
            state.last_value = metrics.get(rule.metric, math.nan)
            if rule.breached(metrics):
                state.streak += 1
                state.breached_windows += 1
            else:
                if state.firing:
                    state.firing = False
                    self._emit(
                        AlertResolved(
                            t=t,
                            rule=rule.spec,
                            metric=rule.metric,
                            window_index=window_index,
                        )
                    )
                state.streak = 0
                continue
            if not state.firing and state.streak >= rule.for_windows:
                state.firing = True
                state.fired_count += 1
                self._emit(
                    AlertFired(
                        t=t,
                        rule=rule.spec,
                        metric=rule.metric,
                        value=state.last_value,
                        window_index=window_index,
                        streak=state.streak,
                    )
                )

    def _emit(self, event: Event) -> None:
        self.alerts.append(event)
        for sink in self.sinks:
            sink.emit(event)

    def _refresh_steady_state(self) -> None:
        from repro.analysis.steady_state import analyze_series

        if len(self.history) < 2:
            return
        for metric in self._steady_metrics:
            series = [row.get(metric, math.nan) for row in self.history]
            self._steady[metric] = analyze_series(series, metric=metric)

    # -- read side ------------------------------------------------------

    @property
    def firing(self) -> tuple[RuleState, ...]:
        """Rule states currently in breach-and-fired condition."""
        return tuple(s for s in self.rule_states if s.firing)

    def health(self) -> dict[str, Any]:
        """Roll-up health document: per-rule states plus one verdict."""
        with self._lock:
            states = [s.to_dict() for s in self.rule_states]
            return {
                "healthy": not any(s.firing for s in self.rule_states),
                "windows": self.counters["windows"].value,
                "rules": states,
                "alerts": len(self.alerts),
            }

    def steady_state(self) -> dict[str, "SteadyStateSummary"]:
        """Latest per-metric steady-state summaries (empty early on)."""
        with self._lock:
            return dict(self._steady)

    @staticmethod
    def _stream(qs: QuantileSet) -> dict[str, Any]:
        return {
            "quantiles": qs.values(),
            "count": qs.count,
            "sum": qs.total,
            "min": qs.min,
            "max": qs.max,
        }

    def snapshot(self) -> dict[str, Any]:
        """A consistent point-in-time copy of every published value."""
        from repro.analysis.steady_state import analyze_series

        with self._lock:
            # A scrape taken before the first steady-state refresh must
            # still carry the full family set (warm-up 0, NaN means):
            # scrapers and scripts/telemetry_check.py rely on a stable
            # set of families regardless of when they sample.
            steady = self._steady or {
                m: analyze_series([], metric=m) for m in self._steady_metrics
            }
            return {
                "counters": {k: c.value for k, c in self.counters.items()},
                "gauges": {k: g.value for k, g in self.gauges.items()},
                "latency": self._stream(self.latency),
                "queue_depth": self._stream(self.queue_depth),
                "window_energy": self._stream(self.window_energy),
                "arrival_rate": self._rates()[0].rate(self._now),
                "completion_rate": self._rates()[1].rate(self._now),
                "on_time_ewma": self._rates()[2].value,
                "steady_state": {
                    k: s.to_dict() for k, s in steady.items()
                },
                "health": {
                    "healthy": not any(s.firing for s in self.rule_states),
                    "rules": [s.to_dict() for s in self.rule_states],
                },
                "history_dropped": self.history_dropped,
            }

    def render_prometheus(self) -> str:
        """Prometheus text-exposition (0.0.4) rendering of the snapshot."""
        from repro.obs.export import to_prometheus

        return to_prometheus(self.snapshot())


class NullTelemetry(Telemetry):
    """The inert hub: accepts every feed, records nothing.

    Same pattern as :data:`repro.obs.spans.NULL_SPAN` — instrumented
    code can hold a telemetry reference unconditionally; the class-level
    :attr:`enabled` flag lets hot paths skip computing derived feed
    values entirely.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - deliberately not calling super
        pass

    def configure(self, **kwargs: Any) -> None:
        pass

    def on_mapped(self, t: float, queue_depth: float) -> None:
        pass

    def on_completion(self, t: float, latency: float, on_time: bool) -> None:
        pass

    def on_discarded(self, t: float) -> None:
        pass

    def on_shed(self, t: float, deferred: bool) -> None:
        pass

    def on_window(self, stats: "WindowStats") -> None:
        pass


#: Shared inert instance: feeds vanish, reads would fail — do not read.
NULL_TELEMETRY = NullTelemetry()
