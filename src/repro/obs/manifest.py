"""Run manifests: everything needed to reproduce a saved result.

A manifest pins the five ingredients a figure depends on:

1. the exact configuration (as a SHA-256 digest of its canonical JSON),
2. the base seed and trial count,
3. the package version and (best-effort) git SHA of the source tree,
4. the variant grid that was evaluated,
5. a digest of every per-trial result, so a re-run can be checked
   bitwise without shipping the results themselves.

``repro figure``/``repro grid`` write one next to ``--out`` and the
``repro inspect-manifest`` subcommand renders and verifies it.

This module deliberately imports :mod:`repro.io` and
:mod:`repro.experiments` lazily: the runner imports
:mod:`repro.obs.sinks` for metrics aggregation, and eager imports here
would close an import cycle through ``results_io``.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import pathlib
import subprocess
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro._version import __version__
from repro.config import SimulationConfig
from repro.sim.results import TrialResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import EnsembleResult

__all__ = [
    "RunManifest",
    "config_digest",
    "trial_digest",
    "build_manifest",
    "manifest_for_results",
    "save_manifest",
    "load_manifest",
    "verify_ensemble",
    "git_sha",
]

_FORMAT = "repro.manifest/1"


def _canonical(obj: Any) -> Any:
    """Reduce dataclasses/enums/paths to plain JSON-stable values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def _digest(data: Any) -> str:
    payload = json.dumps(_canonical(data), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config: SimulationConfig) -> str:
    """Stable SHA-256 of a configuration's canonical JSON form.

    Two configs digest equal iff every field (across all sections) is
    equal, so the digest pins the *entire* Section VI environment.
    """
    return _digest(config)


def trial_digest(result: TrialResult) -> str:
    """Stable SHA-256 of one trial result's scalar fields.

    Per-task outcomes are excluded (they are bulky and usually
    stripped); the scalar decomposition already changes whenever any
    outcome does.
    """
    from repro.io.results_io import trial_result_to_dict

    return _digest(trial_result_to_dict(result))


@functools.lru_cache(maxsize=None)
def _git_sha_at(cwd: str) -> str | None:
    """Shell out to git once per (process, directory); see :func:`git_sha`."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def git_sha(start: pathlib.Path | None = None) -> str | None:
    """Best-effort git HEAD of the source tree (``None`` outside a repo).

    The subprocess result is cached per process and directory — manifest
    builds happen once per completed trial under checkpointing, and the
    HEAD of an installed tree cannot change mid-run.
    """
    cwd = start if start is not None else pathlib.Path(__file__).resolve().parent
    return _git_sha_at(str(cwd))


@dataclass(frozen=True)
class RunManifest:
    """The reproducibility record of one ensemble run.

    ``trial_digests`` maps each spec label (``"LL/en+rob"``) to one
    digest per trial, in trial order.
    """

    config_digest: str
    base_seed: int
    num_trials: int
    repro_version: str
    git_sha: str | None
    specs: tuple[str, ...]
    trial_digests: dict[str, tuple[str, ...]]

    def to_dict(self) -> dict[str, Any]:
        """Serialize to the on-disk JSON document."""
        return {
            "format": _FORMAT,
            "config_digest": self.config_digest,
            "base_seed": self.base_seed,
            "num_trials": self.num_trials,
            "repro_version": self.repro_version,
            "git_sha": self.git_sha,
            "specs": list(self.specs),
            "trial_digests": {k: list(v) for k, v in self.trial_digests.items()},
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output."""
        if data.get("format") != _FORMAT:
            raise ValueError(f"not a {_FORMAT} document")
        return RunManifest(
            config_digest=str(data["config_digest"]),
            base_seed=int(data["base_seed"]),
            num_trials=int(data["num_trials"]),
            repro_version=str(data["repro_version"]),
            git_sha=data["git_sha"],
            specs=tuple(data["specs"]),
            trial_digests={
                str(k): tuple(v) for k, v in data["trial_digests"].items()
            },
        )

    def summary(self) -> str:
        """Human-readable rendering for ``repro inspect-manifest``."""
        from repro.analysis.tables import markdown_table

        rows = [
            ("format", _FORMAT),
            ("config digest", self.config_digest[:16] + "…"),
            ("base seed", self.base_seed),
            ("trials", self.num_trials),
            ("repro version", self.repro_version),
            ("git sha", (self.git_sha or "unknown")[:12]),
            ("specs", ", ".join(self.specs)),
            ("result digests", sum(len(v) for v in self.trial_digests.values())),
        ]
        return markdown_table(["field", "value"], rows)


def manifest_for_results(
    results: Mapping[str, Sequence[TrialResult]],
    config: SimulationConfig,
    base_seed: int,
    num_trials: int,
) -> RunManifest:
    """Build a manifest from spec-labelled trial results."""
    return RunManifest(
        config_digest=config_digest(config),
        base_seed=base_seed,
        num_trials=num_trials,
        repro_version=__version__,
        git_sha=git_sha(),
        specs=tuple(results),
        trial_digests={
            label: tuple(trial_digest(r) for r in trials)
            for label, trials in results.items()
        },
    )


def build_manifest(ensemble: "EnsembleResult", config: SimulationConfig) -> RunManifest:
    """Build the manifest of a finished ensemble."""
    return manifest_for_results(
        {spec.label: ensemble.results[spec] for spec in ensemble.specs},
        config,
        ensemble.base_seed,
        ensemble.num_trials,
    )


def save_manifest(manifest: RunManifest, path: str | pathlib.Path) -> pathlib.Path:
    """Write a manifest as indented JSON (stable key order)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
    return path


def load_manifest(path: str | pathlib.Path) -> RunManifest:
    """Read a manifest written by :func:`save_manifest`."""
    return RunManifest.from_dict(json.loads(pathlib.Path(path).read_text()))


def verify_ensemble(manifest: RunManifest, ensemble: "EnsembleResult") -> list[str]:
    """Check an ensemble against a manifest; return mismatch descriptions.

    An empty list means every spec, trial count and per-trial digest
    matches — the ensemble is bitwise the run the manifest describes.
    """
    problems: list[str] = []
    labels = tuple(spec.label for spec in ensemble.specs)
    if labels != manifest.specs:
        problems.append(f"specs differ: manifest {manifest.specs} vs results {labels}")
    if ensemble.num_trials != manifest.num_trials:
        problems.append(
            f"trial count differs: manifest {manifest.num_trials} "
            f"vs results {ensemble.num_trials}"
        )
    if ensemble.base_seed != manifest.base_seed:
        problems.append(
            f"base seed differs: manifest {manifest.base_seed} "
            f"vs results {ensemble.base_seed}"
        )
    for spec in ensemble.specs:
        expected = manifest.trial_digests.get(spec.label)
        if expected is None:
            continue  # already reported via the specs mismatch
        actual = tuple(trial_digest(r) for r in ensemble.results[spec])
        for i, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                problems.append(f"{spec.label} trial {i}: digest mismatch")
    return problems
