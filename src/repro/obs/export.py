"""Telemetry export surfaces: Prometheus text, atomic files, HTTP scrape.

Three ways out for a :class:`~repro.obs.telemetry.Telemetry` snapshot:

* :func:`to_prometheus` — render a snapshot into the Prometheus text
  exposition format (version 0.0.4): ``repro_*_total`` counters,
  plain gauges, and ``{quantile="..."}``-labelled summary-style gauges
  for the P² estimates, each with ``# HELP``/``# TYPE`` comments.
* :class:`FileExporter` — atomically republish the rendering to a file
  on every window close (tmp-write + ``os.replace``), for headless runs
  scraped by node-exporter's textfile collector or plain ``cat``.
* :class:`TelemetryServer` — a stdlib :class:`~http.server.ThreadingHTTPServer`
  on a daemon thread serving ``GET /metrics`` (Prometheus text) and
  ``GET /health`` (JSON roll-up; 503 while any SLO rule fires, so a
  load balancer can act on it).  ``port=0`` binds an ephemeral port;
  :meth:`TelemetryServer.start` returns the bound port.

Everything here is stdlib + the telemetry snapshot: no engine imports,
no third-party servers, nothing on the simulation hot path.
"""

from __future__ import annotations

import json
import math
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.obs.telemetry import Telemetry

__all__ = [
    "to_prometheus",
    "FileExporter",
    "TelemetryServer",
    "CONTENT_TYPE",
    "METRIC_PREFIX",
]

#: Content type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported metric family starts with this.
METRIC_PREFIX = "repro"

_COUNTER_HELP = {
    "tasks_mapped": "Tasks admitted and committed to an assignment.",
    "tasks_completed": "Tasks whose execution finished.",
    "tasks_on_time": "Completions at or before their deadline.",
    "tasks_late": "Completions after their deadline.",
    "tasks_discarded": "Arrivals discarded (no feasible assignment).",
    "tasks_shed": "Arrivals dropped by the admission controller.",
    "tasks_deferred": "Arrivals deferred (retry-later) by admission control.",
    "windows": "Closed metric windows.",
}

_GAUGE_HELP = {
    "in_system": "Tasks in system at the last window close.",
    "budget_remaining": "Rolling energy budget remaining (joules).",
    "window_on_time_prob": "On-time fraction of the last closed window.",
    "window_energy_joules": "Energy consumed in the last closed window.",
    "burn_rate": "Last window's energy over its budget allowance.",
}

_SUMMARY_HELP = {
    "completion_latency_seconds": "Task completion latency (arrival to finish).",
    "queue_depth": "Average queue depth observed at task admission.",
    "window_energy_joules_dist": "Per-window energy consumption.",
}


def _fmt(value: float) -> str:
    """Prometheus sample value: NaN spelled ``NaN``, floats via repr."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _family(
    lines: list[str], name: str, kind: str, help_text: str
) -> str:
    full = f"{METRIC_PREFIX}_{name}"
    lines.append(f"# HELP {full} {help_text}")
    lines.append(f"# TYPE {full} {kind}")
    return full


def _summary(
    lines: list[str],
    name: str,
    help_text: str,
    quantiles: Mapping[float, float],
    count: int,
    total: float,
) -> None:
    full = _family(lines, name, "summary", help_text)
    for q in sorted(quantiles):
        lines.append(f'{full}{{quantile="{q:g}"}} {_fmt(quantiles[q])}')
    lines.append(f"{full}_sum {_fmt(total)}")
    lines.append(f"{full}_count {count}")


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`Telemetry.snapshot` as Prometheus text (0.0.4)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    for name in counters:
        full = _family(
            lines,
            f"{name}_total",
            "counter",
            _COUNTER_HELP.get(name, f"Count of {name.replace('_', ' ')}."),
        )
        lines.append(f"{full} {counters[name]}")
    gauges = snapshot.get("gauges", {})
    for name in gauges:
        full = _family(
            lines, name, "gauge", _GAUGE_HELP.get(name, f"Gauge {name}.")
        )
        lines.append(f"{full} {_fmt(gauges[name])}")
    for key, metric in (
        ("latency", "completion_latency_seconds"),
        ("queue_depth", "queue_depth"),
        ("window_energy", "window_energy_joules_dist"),
    ):
        stream = snapshot.get(key)
        if not stream:
            continue
        _summary(
            lines,
            metric,
            _SUMMARY_HELP[metric],
            stream["quantiles"],
            stream["count"],
            stream["sum"],
        )
    for name, key in (
        ("arrival_rate", "arrival_rate"),
        ("completion_rate", "completion_rate"),
        ("on_time_ewma", "on_time_ewma"),
    ):
        if key in snapshot:
            full = _family(
                lines,
                name,
                "gauge",
                {
                    "arrival_rate": "EWMA task arrival rate (1/s, simulated time).",
                    "completion_rate": "EWMA task completion rate (1/s, simulated time).",
                    "on_time_ewma": "EWMA of the per-completion on-time indicator.",
                }[name],
            )
            lines.append(f"{full} {_fmt(snapshot[key])}")
    steady = snapshot.get("steady_state", {})
    if steady:
        warm = _family(
            lines,
            "warmup_window_index",
            "gauge",
            "MSER-5 warm-up truncation point (raw window index).",
        )
        for metric in sorted(steady):
            lines.append(
                f'{warm}{{metric="{metric}"}} {steady[metric]["warmup_windows"]}'
            )
        mean = _family(
            lines, "steady_mean", "gauge", "Post-warm-up batch-means mean."
        )
        for metric in sorted(steady):
            value = steady[metric]["mean"]
            lines.append(
                f'{mean}{{metric="{metric}"}} '
                f"{_fmt(math.nan if value is None else value)}"
            )
        half = _family(
            lines,
            "steady_ci_half_width",
            "gauge",
            "Batch-means confidence-interval half-width.",
        )
        for metric in sorted(steady):
            value = steady[metric]["ci_half_width"]
            lines.append(
                f'{half}{{metric="{metric}"}} '
                f"{_fmt(math.nan if value is None else value)}"
            )
        conv = _family(
            lines,
            "steady_converged",
            "gauge",
            "1 when the steady-state estimate is trustworthy.",
        )
        for metric in sorted(steady):
            lines.append(
                f'{conv}{{metric="{metric}"}} '
                f"{1 if steady[metric]['converged'] else 0}"
            )
    health = snapshot.get("health", {})
    if health:
        full = _family(
            lines, "healthy", "gauge", "1 while no SLO rule is firing."
        )
        lines.append(f"{full} {1 if health.get('healthy', True) else 0}")
        firing = _family(
            lines, "slo_firing", "gauge", "1 while this SLO rule is firing."
        )
        for state in health.get("rules", []):
            rule = str(state["rule"]).replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'{firing}{{rule="{rule}"}} {1 if state["firing"] else 0}')
    if "history_dropped" in snapshot:
        full = _family(
            lines,
            "history_dropped_total",
            "counter",
            "Window rows dropped from the bounded telemetry history.",
        )
        lines.append(f"{full} {snapshot['history_dropped']}")
    return "\n".join(lines) + "\n"


class FileExporter:
    """Atomically republish the Prometheus rendering to one file.

    Each :meth:`export` writes to ``<path>.tmp`` and ``os.replace``s it
    over the target, so readers never observe a torn file.  Wire it as a
    telemetry sink by calling :meth:`export` from the window-close path
    (the service layer does this when ``--telemetry-out`` is given).
    """

    def __init__(self, path: str | Path, telemetry: "Telemetry") -> None:
        self.path = Path(path)
        self.telemetry = telemetry
        self.exports = 0

    def export(self) -> None:
        """Render the current snapshot and atomically replace the file."""
        text = self.telemetry.render_prometheus()
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)
        self.exports += 1


class _Handler(BaseHTTPRequestHandler):
    """Serves /metrics (Prometheus text) and /health (JSON)."""

    server: "TelemetryServer._Server"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry = self.server.telemetry
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = telemetry.render_prometheus().encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/health":
            health = telemetry.health()
            body = json.dumps(health, indent=2).encode("utf-8")
            status = 200 if health["healthy"] else 503
            self._reply(status, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        pass  # scrapes should not spam the service's stderr


class TelemetryServer:
    """Background scrape endpoint over one :class:`Telemetry` hub.

    The server runs on a daemon thread and never touches the simulation:
    request handlers only call the hub's locked read-side methods.  Use
    ``port=0`` for an OS-assigned port (tests); :meth:`start` returns
    the actual bound port either way.
    """

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        telemetry: "Telemetry"

    def __init__(
        self, telemetry: "Telemetry", *, port: int = 9464, host: str = "127.0.0.1"
    ) -> None:
        self.telemetry = telemetry
        self.host = host
        self.port = port
        self._server: TelemetryServer._Server | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        server = self._Server((self.host, self.port), _Handler)
        server.telemetry = self.telemetry
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        """The endpoint base URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
