"""Simulation timelines: sampled system-state snapshots over sim time.

Events record *what happened*; the timeline records *how system state
evolved between events*: per-node queue depth, busy-core count, the
heuristic's remaining-energy estimate ``zeta(t)``, and cumulative
completion/discard counts, sampled on a uniform simulated-time grid.

Sampling is driven by the engine's own event stream (there is no
separate clock): on every mapped/discarded/completed callback the
recorder emits one snapshot per ``dt`` tick the simulation has crossed
since the last sample, reading the engine state as of the first event at
or after the tick.  Sample times and values are therefore fully
deterministic for a fixed seed — a timeline is as reproducible as the
trial it describes — and the number of samples is bounded by
``makespan / dt`` regardless of event density.

Like every other observability surface, timelines observe and never
steer: the engine does not know this module exists (the
:class:`~repro.obs.hooks.ObservingHooks` adapter drives the recorder).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["TimelineSample", "TimelineRecorder", "TimelineSet", "TIMELINE_FORMAT"]

#: On-disk format tag of a timeline document.
TIMELINE_FORMAT = "repro.timeline/1"


@dataclass(frozen=True, slots=True)
class TimelineSample:
    """System state at one sample tick.

    ``node_depth[i]`` counts tasks queued or executing on node ``i``;
    ``busy_cores`` counts cores with a running task; ``energy_estimate``
    is the heuristic's remaining-energy estimate ``zeta``;
    ``completed``/``discarded`` are cumulative counts up to the tick.
    """

    t: float
    node_depth: tuple[int, ...]
    busy_cores: int
    energy_estimate: float
    completed: int
    discarded: int

    @property
    def in_system(self) -> int:
        """Tasks queued or executing, cluster-wide."""
        return sum(self.node_depth)


class TimelineRecorder:
    """Samples engine state every ``dt`` simulated seconds of one trial.

    ``stream``/``label`` identify the trial (and spec) the way span
    streams are identified, so per-worker timelines merge
    deterministically in the parent.
    """

    def __init__(
        self,
        dt: float,
        *,
        stream: int = 0,
        label: str = "",
        capacity: int | None = None,
    ) -> None:
        if not (dt > 0.0):
            raise ValueError(f"timeline dt must be positive, got {dt}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"timeline capacity must be positive, got {capacity}")
        self.dt = float(dt)
        self.stream = int(stream)
        self.label = label or f"stream-{stream}"
        self.capacity = capacity
        # With a capacity the recorder is a ring buffer holding only the
        # most recent samples — bounded memory for unbounded service
        # runs; ``None`` keeps the full batch-mode history.
        self.samples: "deque[TimelineSample] | list[TimelineSample]" = (
            deque(maxlen=capacity) if capacity is not None else []
        )
        self._next_t = 0.0
        self._completed = 0
        self._discarded = 0

    # -- callbacks driven by ObservingHooks -----------------------------

    def on_mapped(self, engine: "Engine") -> None:
        """A task was mapped; sample any ticks the sim just crossed."""
        self._sample_up_to(engine)

    def on_discarded(self, engine: "Engine") -> None:
        """A task was discarded; bump the cumulative count and sample."""
        self._discarded += 1
        self._sample_up_to(engine)

    def on_completion(self, engine: "Engine") -> None:
        """A task completed; bump the cumulative count and sample."""
        self._completed += 1
        self._sample_up_to(engine)

    def _sample_up_to(self, engine: "Engine") -> None:
        now = engine.now
        if self._next_t > now:
            return
        cores = engine.cores
        node_depth = [0] * engine.system.cluster.num_nodes
        busy = 0
        for core in cores:
            node_depth[core.node_index] += core.assigned_count
            if core.running is not None:
                busy += 1
        depth = tuple(node_depth)
        while self._next_t <= now:
            self.samples.append(
                TimelineSample(
                    t=self._next_t,
                    node_depth=depth,
                    busy_cores=busy,
                    energy_estimate=engine.energy_estimate,
                    completed=self._completed,
                    discarded=self._discarded,
                )
            )
            self._next_t += self.dt

    def __len__(self) -> int:
        return len(self.samples)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize as parallel arrays (compact for JSON dumps)."""
        return {
            "stream": self.stream,
            "label": self.label,
            "dt": self.dt,
            "num_nodes": len(self.samples[0].node_depth) if self.samples else 0,
            "t": [s.t for s in self.samples],
            "busy_cores": [s.busy_cores for s in self.samples],
            "energy_estimate": [s.energy_estimate for s in self.samples],
            "completed": [s.completed for s in self.samples],
            "discarded": [s.discarded for s in self.samples],
            "node_depth": [list(s.node_depth) for s in self.samples],
        }


class TimelineSet:
    """The timelines of one run: one stream per (trial, spec).

    Streams are kept as their serialized dict form (they cross process
    boundaries that way) and ordered by ``(stream, label)`` so repeated
    runs — at any ``n_jobs`` — produce byte-identical documents.
    """

    def __init__(self, dt: float) -> None:
        if not (dt > 0.0):
            raise ValueError(f"timeline dt must be positive, got {dt}")
        self.dt = float(dt)
        self.streams: list[dict[str, Any]] = []

    def add(self, stream: "TimelineRecorder | dict[str, Any]") -> None:
        """Fold one recorder (or its :meth:`TimelineRecorder.to_dict`) in."""
        self.streams.append(
            stream.to_dict() if isinstance(stream, TimelineRecorder) else dict(stream)
        )

    def sorted_streams(self) -> list[dict[str, Any]]:
        """Streams in the deterministic merge order."""
        return sorted(self.streams, key=lambda s: (s["stream"], s["label"]))

    def __len__(self) -> int:
        return len(self.streams)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(self.sorted_streams())

    def to_dict(self) -> dict[str, Any]:
        """The on-disk ``repro.timeline/1`` document."""
        return {
            "format": TIMELINE_FORMAT,
            "dt": self.dt,
            "streams": self.sorted_streams(),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TimelineSet":
        """Rebuild from :meth:`to_dict` output."""
        if data.get("format") != TIMELINE_FORMAT:
            raise ValueError(f"not a {TIMELINE_FORMAT} document")
        out = TimelineSet(float(data["dt"]))
        for stream in data["streams"]:
            out.add(stream)
        return out
