"""Adapting the engine's ``EngineHooks`` protocol to event sinks.

:class:`ObservingHooks` is the only place event objects are constructed:
``run_trial`` with ``hooks=None`` (the default) touches none of this
module, so the engine hot path stays allocation-free when observability
is off.

:func:`observe_trial` wraps one :class:`repro.sim.engine.Engine` run
with the trial-lifecycle events (``TrialStarted``, ``EnergyExhausted``,
``TrialFinished``) that the per-event hook protocol cannot see, and
optionally times every heuristic decision via :class:`TimedHeuristic`,
every filter evaluation via :class:`TimedFilterChain`, every pmf
operation via the :mod:`repro.stoch.ops` observer, and the engine's own
event handlers via the ``tracer`` hook — all strictly opt-in.  It holds
the engine instance itself (rather than going through the
``run_trial`` convenience wrapper) so the kernel cache's final counters
can be folded into the metrics registry after the run.

:func:`run_observed_trial` is the deprecated pre-facade name of
:func:`observe_trial` and will be removed after one release.
"""

from __future__ import annotations

import math
import time
import warnings
from typing import Sequence

from repro.filters.chain import FilterChain
from repro.heuristics.base import CandidateSet, Heuristic, MappingContext
from repro.faults import FaultPolicy, FaultSchedule, FaultTransition, SheddingConfig
from repro.obs.events import (
    EnergyExhausted,
    Event,
    FaultInjected,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TaskOrphaned,
    TaskShed,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import (
    DEPTH_EDGES,
    GRID_EDGES,
    LATENCY_EDGES,
    EventSink,
    MetricsRegistry,
)
from repro.obs.spans import SpanRecorder
from repro.obs.timeline import TimelineRecorder
from repro.perf.kernel_cache import PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.sim.engine import Engine
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem
from repro.stoch.ops import set_op_observer
from repro.workload.task import Task

__all__ = [
    "ObservingHooks",
    "TimedHeuristic",
    "TimedFilterChain",
    "observe_trial",
    "run_observed_trial",
]


class ObservingHooks:
    """``EngineHooks`` implementation that fans events out to sinks.

    Parameters
    ----------
    sinks:
        Zero or more event sinks (``JsonlSink``, ``RingBufferSink``, any
        object with ``emit``).
    metrics:
        Optional registry; when given, mapping/discard/completion
        counters and the queue-depth histogram are updated per event.
    timeline:
        Optional :class:`~repro.obs.timeline.TimelineRecorder`; when
        given, system-state snapshots are sampled on its sim-time grid.
    """

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        *,
        metrics: MetricsRegistry | None = None,
        timeline: TimelineRecorder | None = None,
    ) -> None:
        self.sinks = tuple(sinks)
        self.metrics = metrics
        self.timeline = timeline

    def _emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- EngineHooks protocol -------------------------------------------

    def on_mapped(self, engine: "Engine", task: Task, core_id: int, pstate: int) -> None:
        depth = engine.avg_queue_depth
        self._emit(
            TaskMapped(
                t=engine.now,
                task_id=task.task_id,
                type_id=task.type_id,
                core_id=core_id,
                pstate=pstate,
                energy_estimate=engine.energy_estimate,
                queue_depth=depth,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("tasks_mapped")
            self.metrics.observe("queue_depth", depth, DEPTH_EDGES)
        if self.timeline is not None:
            self.timeline.on_mapped(engine)

    def on_discarded(self, engine: "Engine", task: Task) -> None:
        event = TaskDiscarded(t=engine.now, task_id=task.task_id, type_id=task.type_id)
        self._emit(event)
        if self.metrics is not None:
            self.metrics.inc(f"tasks_discarded.{event.cause}")
        if self.timeline is not None:
            self.timeline.on_discarded(engine)

    def on_completion(self, engine: "Engine", core_id: int, task: Task, t_now: float) -> None:
        self._emit(
            TaskCompleted(
                t=t_now, task_id=task.task_id, type_id=task.type_id, core_id=core_id
            )
        )
        if self.metrics is not None:
            self.metrics.inc("tasks_completed")
        if self.timeline is not None:
            self.timeline.on_completion(engine)

    # -- fault-layer hooks (only called when faults/shedding are active) --

    def on_fault(self, engine: "Engine", transition: FaultTransition) -> None:
        event = transition.event
        self._emit(
            FaultInjected(
                t=engine.now,
                fault=event.kind,
                action=transition.action,
                target=event.target,
                cores=len(transition.core_ids),
            )
        )
        if self.metrics is not None:
            self.metrics.inc(f"faults.{transition.action}.{event.kind}")

    def on_orphaned(self, engine: "Engine", task: Task, core_id: int, disposition: str) -> None:
        self._emit(
            TaskOrphaned(
                t=engine.now,
                task_id=task.task_id,
                type_id=task.type_id,
                core_id=core_id,
                disposition=disposition,
            )
        )
        if self.metrics is not None:
            self.metrics.inc(f"tasks_orphaned.{disposition}")

    def on_shed(self, engine: "Engine", task: Task, cause: str, deferred: bool) -> None:
        self._emit(
            TaskShed(
                t=engine.now,
                task_id=task.task_id,
                type_id=task.type_id,
                cause=cause,
                deferred=deferred,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("tasks_deferred" if deferred else f"tasks_shed.{cause}")

    # -- trial lifecycle (called by observe_trial) ----------------------

    def trial_started(self, system: TrialSystem, heuristic: Heuristic, chain: FilterChain) -> None:
        """Emit the ``TrialStarted`` envelope event."""
        self._emit(
            TrialStarted(
                seed=system.config.seed,
                num_tasks=system.num_tasks,
                heuristic=heuristic.name,
                variant=chain.label,
                budget=system.budget,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("trials_run")

    def trial_finished(self, result: TrialResult) -> None:
        """Emit ``EnergyExhausted`` (when it happened) and ``TrialFinished``."""
        if math.isfinite(result.exhaustion_time):
            self._emit(EnergyExhausted(t=result.exhaustion_time, budget=result.budget))
            if self.metrics is not None:
                self.metrics.inc("energy_exhaustions")
        self._emit(
            TrialFinished(
                makespan=result.makespan,
                missed=result.missed,
                completed_within=result.completed_within,
                discarded=result.discarded,
                late=result.late,
                energy_cutoff=result.energy_cutoff,
                total_energy=result.total_energy,
            )
        )


class TimedHeuristic(Heuristic):
    """Decorator: time every ``select`` call into a latency histogram.

    Timing wraps the heuristic *outside* the engine, so the engine stays
    oblivious to observability and the measured span is exactly the
    decision (mask argmin etc.), not candidate construction.  With a
    ``recorder``, the already-measured duration is also fed to the span
    profile as a ``heuristic.<name>`` span — one measurement, two
    consumers.
    """

    def __init__(
        self,
        inner: Heuristic,
        metrics: MetricsRegistry | None = None,
        *,
        recorder: SpanRecorder | None = None,
    ) -> None:
        self.inner = inner
        self.metrics = metrics
        self.recorder = recorder
        self.name = inner.name
        self._span_name = f"heuristic.{inner.name}"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        t0 = time.perf_counter()
        index = self.inner.select(cands, ctx)
        dur = time.perf_counter() - t0
        if self.metrics is not None:
            self.metrics.observe(f"decision_latency_s.{self.name}", dur, LATENCY_EDGES)
        if self.recorder is not None:
            self.recorder.add(self._span_name, t0, dur)
        return index

    def __repr__(self) -> str:
        return f"TimedHeuristic({self.inner!r})"


class TimedFilterChain(FilterChain):
    """Decorator chain: span every evaluation (chain + per-filter).

    Rebuilt from the inner chain's filters, so ``label`` — and therefore
    the variant name stamped on :class:`~repro.sim.results.TrialResult`
    — is unchanged; only ``apply`` gains spans.
    """

    def __init__(self, inner: FilterChain, recorder: SpanRecorder) -> None:
        super().__init__(inner.filters)
        self._recorder = recorder
        self._span_names = tuple(f"filter.{f.label}" for f in inner.filters)

    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        recorder = self._recorder
        with recorder.span("filters.chain"):
            for f, name in zip(self._filters, self._span_names):
                with recorder.span(name):
                    f.apply(cands, ctx)


class _StochObserver:
    """Counts pmf operations and their grid sizes into a registry.

    Installed via :func:`repro.stoch.ops.set_op_observer` for the
    duration of one observed trial: ``stoch.ops.<op>`` counters plus a
    ``stoch.grid.<op>`` histogram of support lengths per operation.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def __call__(self, op: str, grid_size: int) -> None:
        self.metrics.inc(f"stoch.ops.{op}")
        self.metrics.observe(f"stoch.grid.{op}", float(grid_size), GRID_EDGES)


def observe_trial(
    system: TrialSystem,
    heuristic: Heuristic,
    filter_chain: FilterChain,
    *,
    sinks: Sequence[EventSink] = (),
    metrics: MetricsRegistry | None = None,
    profile: SpanRecorder | None = None,
    timeline: TimelineRecorder | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    shedding: SheddingConfig | None = None,
) -> TrialResult:
    """Run one trial with observability attached.

    Identical simulation semantics to :func:`repro.sim.engine.run_trial`
    — hooks observe, they never steer, decision timing wraps the
    heuristic without touching its choices, and span/timeline recording
    reads state it never mutates — so results are bitwise equal with
    tracing, metrics, profiling and timelines on or off, in any
    combination.  The same holds for ``perf`` (see :mod:`repro.perf`):
    the knobs only change how fast the result is computed, and the
    kernel cache's final counters are summarized into ``perf.cache.*``
    metrics (the per-lookup ``stoch.ops.cache_*`` counters stream in
    live through the op observer).

    ``shared`` is the trial-scoped warm-cache handle
    (:class:`~repro.perf.TrialCache`); with one, the totals folded into
    the registry are still this run's *own* activity (the engine
    baselines the shared counters at run start), and the same deltas
    additionally land under per-spec keys
    ``perf.cache.<counter>.<heuristic>/<variant>`` so a merged ensemble
    registry stays attributable.

    ``faults``/``fault_policy``/``shedding`` thread the in-simulation
    fault layer (see :mod:`repro.faults`) through to the engine; the
    attached hooks then also emit ``FaultInjected``/``TaskOrphaned``/
    ``TaskShed`` events and the matching ``faults.*``/``tasks_*``
    counters.  Left at ``None``, the run is bitwise identical to a
    fault-free trial.
    """
    hooks = ObservingHooks(sinks, metrics=metrics, timeline=timeline)
    engine_heuristic: Heuristic = heuristic
    if metrics is not None or profile is not None:
        engine_heuristic = TimedHeuristic(heuristic, metrics, recorder=profile)
    engine_chain = filter_chain
    if profile is not None:
        engine_chain = TimedFilterChain(filter_chain, profile)
    previous_observer = None
    if metrics is not None:
        previous_observer = set_op_observer(_StochObserver(metrics))
    try:
        hooks.trial_started(system, heuristic, filter_chain)
        engine = Engine(
            system,
            engine_heuristic,
            engine_chain,
            hooks=hooks,
            tracer=profile,
            perf=perf,
            shared=shared,
            faults=faults,
            fault_policy=fault_policy,
            shedding=shedding,
        )
        if profile is not None:
            with profile.span(f"trial.run.{heuristic.name}/{filter_chain.label}"):
                result = engine.run()
        else:
            result = engine.run()
        hooks.trial_finished(result)
        stats = engine.kernel_cache_stats()
        if metrics is not None and stats is not None:
            label = f"{heuristic.name}/{filter_chain.label}"
            for counter, value in (
                ("hits", stats.hits),
                ("misses", stats.misses),
                ("evictions", stats.evictions),
                ("entries", stats.entries),
            ):
                metrics.inc(f"perf.cache.{counter}", value)
                metrics.inc(f"perf.cache.{counter}.{label}", value)
        return result
    finally:
        if metrics is not None:
            set_op_observer(previous_observer)


def run_observed_trial(
    system: TrialSystem,
    heuristic: Heuristic,
    filter_chain: FilterChain,
    *,
    sinks: Sequence[EventSink] = (),
    metrics: MetricsRegistry | None = None,
    profile: SpanRecorder | None = None,
    timeline: TimelineRecorder | None = None,
) -> TrialResult:
    """Deprecated pre-facade name of :func:`observe_trial`."""
    warnings.warn(
        "repro.obs.hooks.run_observed_trial is deprecated; use "
        "repro.obs.hooks.observe_trial (or the repro.api facade)",
        DeprecationWarning,
        stacklevel=2,
    )
    return observe_trial(
        system,
        heuristic,
        filter_chain,
        sinks=sinks,
        metrics=metrics,
        profile=profile,
        timeline=timeline,
    )
