"""Adapting the engine's ``EngineHooks`` protocol to event sinks.

:class:`ObservingHooks` is the only place event objects are constructed:
``run_trial`` with ``hooks=None`` (the default) touches none of this
module, so the engine hot path stays allocation-free when observability
is off.

:func:`run_observed_trial` wraps :func:`repro.sim.engine.run_trial` with
the trial-lifecycle events (``TrialStarted``, ``EnergyExhausted``,
``TrialFinished``) that the per-event hook protocol cannot see, and
optionally times every heuristic decision via :class:`TimedHeuristic`.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Sequence

from repro.filters.chain import FilterChain
from repro.heuristics.base import CandidateSet, Heuristic, MappingContext
from repro.obs.events import (
    EnergyExhausted,
    Event,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import DEPTH_EDGES, LATENCY_EDGES, EventSink, MetricsRegistry
from repro.sim.engine import run_trial
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["ObservingHooks", "TimedHeuristic", "run_observed_trial"]


class ObservingHooks:
    """``EngineHooks`` implementation that fans events out to sinks.

    Parameters
    ----------
    sinks:
        Zero or more event sinks (``JsonlSink``, ``RingBufferSink``, any
        object with ``emit``).
    metrics:
        Optional registry; when given, mapping/discard/completion
        counters and the queue-depth histogram are updated per event.
    """

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sinks = tuple(sinks)
        self.metrics = metrics

    def _emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- EngineHooks protocol -------------------------------------------

    def on_mapped(self, engine: "Engine", task: Task, core_id: int, pstate: int) -> None:
        depth = engine.avg_queue_depth
        self._emit(
            TaskMapped(
                t=engine.now,
                task_id=task.task_id,
                type_id=task.type_id,
                core_id=core_id,
                pstate=pstate,
                energy_estimate=engine.energy_estimate,
                queue_depth=depth,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("tasks_mapped")
            self.metrics.observe("queue_depth", depth, DEPTH_EDGES)

    def on_discarded(self, engine: "Engine", task: Task) -> None:
        event = TaskDiscarded(t=engine.now, task_id=task.task_id, type_id=task.type_id)
        self._emit(event)
        if self.metrics is not None:
            self.metrics.inc(f"tasks_discarded.{event.cause}")

    def on_completion(self, engine: "Engine", core_id: int, task: Task, t_now: float) -> None:
        self._emit(
            TaskCompleted(
                t=t_now, task_id=task.task_id, type_id=task.type_id, core_id=core_id
            )
        )
        if self.metrics is not None:
            self.metrics.inc("tasks_completed")

    # -- trial lifecycle (called by run_observed_trial) -----------------

    def trial_started(self, system: TrialSystem, heuristic: Heuristic, chain: FilterChain) -> None:
        """Emit the ``TrialStarted`` envelope event."""
        self._emit(
            TrialStarted(
                seed=system.config.seed,
                num_tasks=system.num_tasks,
                heuristic=heuristic.name,
                variant=chain.label,
                budget=system.budget,
            )
        )
        if self.metrics is not None:
            self.metrics.inc("trials_run")

    def trial_finished(self, result: TrialResult) -> None:
        """Emit ``EnergyExhausted`` (when it happened) and ``TrialFinished``."""
        if math.isfinite(result.exhaustion_time):
            self._emit(EnergyExhausted(t=result.exhaustion_time, budget=result.budget))
            if self.metrics is not None:
                self.metrics.inc("energy_exhaustions")
        self._emit(
            TrialFinished(
                makespan=result.makespan,
                missed=result.missed,
                completed_within=result.completed_within,
                discarded=result.discarded,
                late=result.late,
                energy_cutoff=result.energy_cutoff,
                total_energy=result.total_energy,
            )
        )


class TimedHeuristic(Heuristic):
    """Decorator: time every ``select`` call into a latency histogram.

    Timing wraps the heuristic *outside* the engine, so the engine stays
    oblivious to observability and the measured span is exactly the
    decision (mask argmin etc.), not candidate construction.
    """

    def __init__(self, inner: Heuristic, metrics: MetricsRegistry) -> None:
        self.inner = inner
        self.metrics = metrics
        self.name = inner.name

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        t0 = time.perf_counter()
        index = self.inner.select(cands, ctx)
        self.metrics.observe(
            f"decision_latency_s.{self.name}", time.perf_counter() - t0, LATENCY_EDGES
        )
        return index

    def __repr__(self) -> str:
        return f"TimedHeuristic({self.inner!r})"


def run_observed_trial(
    system: TrialSystem,
    heuristic: Heuristic,
    filter_chain: FilterChain,
    *,
    sinks: Sequence[EventSink] = (),
    metrics: MetricsRegistry | None = None,
) -> TrialResult:
    """Run one trial with observability attached.

    Identical simulation semantics to :func:`repro.sim.engine.run_trial`
    — hooks observe, they never steer, and decision timing wraps the
    heuristic without touching its choices — so results are bitwise
    equal with tracing on or off.
    """
    hooks = ObservingHooks(sinks, metrics=metrics)
    engine_heuristic: Heuristic = heuristic
    if metrics is not None:
        engine_heuristic = TimedHeuristic(heuristic, metrics)
    hooks.trial_started(system, heuristic, filter_chain)
    result = run_trial(system, engine_heuristic, filter_chain, hooks=hooks)
    hooks.trial_finished(result)
    return result
