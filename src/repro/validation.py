"""Post-run consistency validation.

:func:`validate_trial` re-derives every structural invariant of a
finished trial from its raw artifacts and raises
:class:`ValidationError` on the first violation.  The test suite uses it,
and downstream users can run it after modifying the engine, adding
heuristics, or writing engine hooks (hooks are the easiest place to break
accounting).

Checked invariants:

1. every task has exactly one outcome; ids are dense and ordered;
2. miss decomposition and totals close;
3. causality: starts after arrivals, completions after starts;
4. per-core exclusivity: executions on one core never overlap;
5. durations lie within the assigned pmf's support;
6. the reported energy equals the ledger's Eq. 2 total (when the engine
   is supplied), and the exhaustion time is consistent with the budget;
7. discarded tasks carry the discard sentinel values.
"""

from __future__ import annotations

import math

from repro.sim.engine import Engine
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem

__all__ = ["ValidationError", "validate_trial"]


class ValidationError(AssertionError):
    """A trial violated a structural invariant."""


def _fail(message: str) -> None:
    raise ValidationError(message)


def validate_trial(
    system: TrialSystem,
    result: TrialResult,
    engine: Engine | None = None,
    *,
    tol: float = 1e-9,
) -> None:
    """Validate a finished trial; raises :class:`ValidationError` on failure.

    ``engine`` (the instance that produced ``result``) enables the
    ledger-level checks; without it only outcome-level invariants run.
    """
    outcomes = result.outcomes
    if len(outcomes) != system.num_tasks:
        _fail(f"{len(outcomes)} outcomes for {system.num_tasks} tasks")

    # 1. identity and ordering
    for i, outcome in enumerate(outcomes):
        if outcome.task_id != i:
            _fail(f"outcome {i} carries task_id {outcome.task_id}")
        task = system.workload.tasks[i]
        if outcome.arrival != task.arrival or outcome.deadline != task.deadline:
            _fail(f"outcome {i} does not match its task's arrival/deadline")

    # 2. totals
    discarded = sum(1 for o in outcomes if o.discarded)
    if discarded != result.discarded:
        _fail(f"discarded mismatch: {discarded} vs {result.discarded}")
    if result.missed != result.discarded + result.late + result.energy_cutoff:
        _fail("miss decomposition does not add up")
    if result.missed + result.completed_within != result.num_tasks:
        _fail("missed + completed does not cover the workload")

    late = cutoff = within = 0
    for outcome in outcomes:
        if outcome.discarded:
            continue
        if not outcome.on_time():
            late += 1
        elif outcome.completion > result.exhaustion_time:
            cutoff += 1
        else:
            within += 1
    if (late, cutoff, within) != (result.late, result.energy_cutoff, result.completed_within):
        _fail(
            f"recount mismatch: late {late}/{result.late}, "
            f"cutoff {cutoff}/{result.energy_cutoff}, "
            f"within {within}/{result.completed_within}"
        )

    # 3-5. causality, exclusivity, support
    by_core: dict[int, list] = {}
    cluster = system.cluster
    for outcome in outcomes:
        if outcome.discarded:
            if outcome.core_id != -1 or outcome.pstate != -1:
                _fail(f"discarded task {outcome.task_id} carries an assignment")
            if not (math.isnan(outcome.start) and math.isnan(outcome.completion)):
                _fail(f"discarded task {outcome.task_id} carries times")
            continue
        if not (0 <= outcome.core_id < cluster.num_cores):
            _fail(f"task {outcome.task_id} on invalid core {outcome.core_id}")
        if not (0 <= outcome.pstate < cluster.num_pstates):
            _fail(f"task {outcome.task_id} in invalid P-state {outcome.pstate}")
        if outcome.start < outcome.arrival - tol:
            _fail(f"task {outcome.task_id} started before arrival")
        if outcome.completion <= outcome.start:
            _fail(f"task {outcome.task_id} has non-positive duration")
        node = int(cluster.core_node_index[outcome.core_id])
        pmf = system.table.pmf(outcome.type_id, node, outcome.pstate)
        duration = outcome.completion - outcome.start
        if not (pmf.start - tol <= duration <= pmf.stop + tol):
            _fail(
                f"task {outcome.task_id} duration {duration:.3f} outside "
                f"pmf support [{pmf.start:.3f}, {pmf.stop:.3f}]"
            )
        by_core.setdefault(outcome.core_id, []).append(outcome)

    for core_id, core_outcomes in by_core.items():
        ordered = sorted(core_outcomes, key=lambda o: o.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.completion - tol:
                _fail(
                    f"core {core_id}: tasks {a.task_id} and {b.task_id} overlap"
                )
        last = max(o.completion for o in core_outcomes)
        if last > result.makespan + tol:
            _fail(f"core {core_id} finishes after the makespan")

    # 6. ledger-level checks
    if engine is not None:
        ledger_total = engine.ledger.total_energy()
        if not math.isclose(ledger_total, result.total_energy, rel_tol=1e-9):
            _fail(
                f"energy mismatch: ledger {ledger_total} vs result "
                f"{result.total_energy}"
            )
        exhaustion = engine.ledger.exhaustion_time(system.budget)
        if not (
            (math.isinf(exhaustion) and math.isinf(result.exhaustion_time))
            or math.isclose(exhaustion, result.exhaustion_time, rel_tol=1e-9)
        ):
            _fail("exhaustion time mismatch between ledger and result")
        if result.total_energy > system.budget and math.isinf(result.exhaustion_time):
            _fail("energy exceeds budget but exhaustion is infinite")
