"""repro.registry — one plugin registry for every policy-shaped extension point.

The paper's contribution is a *policy grid*: allocation heuristics
(SQ/MECT/LL/Random) crossed with assignment filters (energy,
robustness).  The service layer added two more pluggable families —
traffic models and admission (load-shedding) policies.  Before this
module each family had its own hand-wired ``make_*`` constructor, so
adding a policy meant editing ``config.py``, ``cli.py`` and ``api.py``
in lockstep.  Now every family is a :class:`PluginRegistry`:

* registration is declarative — ``@register_heuristic("MECT")`` on a
  factory (or class) makes the name constructible everywhere: the CLI,
  :class:`repro.scenario.Scenario` files, and :func:`repro.api.run_scenario`;
* lookup is **case-insensitive** and misses fail with a did-you-mean
  suggestion (:class:`UnknownPluginError`, a ``KeyError`` subclass so
  pre-registry callers keep working);
* third-party packages are discovered through
  ``entry_points(group="repro.plugins")`` — each entry point resolves to
  a module (imported for its registration side effects) or a callable
  (invoked once);
* :func:`describe_plugins` renders the full catalog for ``repro
  scenarios plugins``.

Builtin plugins live next to the code they construct
(:mod:`repro.heuristics.registry`, :mod:`repro.filters.chain`,
:mod:`repro.workload.traffic`, :mod:`repro.faults`); this module stays a
leaf import so any of them can depend on it.  Registration is
results-neutral by construction: a registry factory builds exactly the
object the old constructor built, so registry-constructed runs are
bitwise identical to directly-constructed ones (pinned by
``tests/scenario/test_parity.py``).
"""

from __future__ import annotations

import difflib
import importlib
import importlib.metadata
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.workload.workload import ArrivalRates

__all__ = [
    "ENTRY_POINT_GROUP",
    "PLUGIN_KINDS",
    "PluginInfo",
    "PluginRegistry",
    "UnknownPluginError",
    "HeuristicPlugin",
    "FilterPlugin",
    "AdmissionPlugin",
    "TrafficContext",
    "HEURISTIC_PLUGINS",
    "FILTER_PLUGINS",
    "TRAFFIC_PLUGINS",
    "ADMISSION_PLUGINS",
    "registry_for",
    "register_heuristic",
    "register_filter",
    "register_traffic",
    "register_admission",
    "load_entry_point_plugins",
    "describe_plugins",
]

#: The ``importlib.metadata`` entry-point group third-party packages use.
ENTRY_POINT_GROUP = "repro.plugins"

#: The plugin families, in catalog order.
PLUGIN_KINDS = ("heuristic", "filter", "traffic", "admission")

#: Module registering each family's builtin plugins, imported on demand
#: so this module stays a leaf (the domain modules import *us*).
_BUILTIN_MODULES = {
    "heuristic": "repro.heuristics.registry",
    "filter": "repro.filters.chain",
    "traffic": "repro.workload.traffic",
    "admission": "repro.faults",
}


# ----------------------------------------------------------------------
# Per-kind protocols (slim, structural — the registry never imports the
# domain classes that satisfy them)
# ----------------------------------------------------------------------


@runtime_checkable
class HeuristicPlugin(Protocol):
    """What a registered heuristic factory must build.

    The factory signature is ``factory(rng: np.random.Generator | None)
    -> HeuristicPlugin``; deterministic heuristics ignore ``rng``.
    """

    name: str

    def select(self, cands: Any, ctx: Any) -> Any: ...


@runtime_checkable
class FilterPlugin(Protocol):
    """What a registered filter factory must build.

    The factory signature is ``factory(config: FilterConfig) ->
    FilterPlugin``; filters clear entries of the candidate mask and
    never set them.
    """

    label: str

    def apply(self, cands: Any, ctx: Any) -> None: ...


@runtime_checkable
class AdmissionPlugin(Protocol):
    """What a registered admission-policy factory must build.

    The factory signature is ``factory(config: SheddingConfig) ->
    AdmissionPlugin``.  ``admit`` returns ``("admit"|"defer"|"shed",
    cause)`` for one arrival, pre-mapping.
    """

    def admit(
        self, task_id: int, queue_depth: float, budget_frac: float | None
    ) -> tuple[str, str]: ...


@dataclass(frozen=True)
class TrafficContext:
    """Everything a traffic plugin may draw on to build its arrival stream.

    A registered traffic factory has signature ``factory(ctx:
    TrafficContext) -> Iterator[float]`` and yields strictly
    nondecreasing absolute arrival times.  The context is deliberately
    config-shaped (no live engine state) so streams stay open-loop and
    deterministic given ``rng``.
    """

    #: Seeded generator dedicated to the arrival stream.
    rng: "np.random.Generator"
    #: Mean arrival rate (tasks/second) after ``rate_mult`` scaling.
    mean_rate: float
    #: Mean length of one traffic phase (resolved, simulated seconds).
    phase_length: float
    #: Peak-to-mean swing in [0, 1) for modulated models.
    swing: float
    #: The configured rate multiplier (relative to equilibrium).
    rate_mult: float
    #: The workload generation parameters of the trial system.
    workload: Any
    #: The system's derived arrival-rate triple (eq, fast, slow).
    rates: "ArrivalRates"


class UnknownPluginError(KeyError):
    """An unregistered plugin name, with a did-you-mean suggestion.

    Subclasses :class:`KeyError` so call sites written against the
    pre-registry constructors (``make_heuristic`` raising ``KeyError``)
    keep working unchanged.
    """

    def __init__(self, kind: str, name: str, known: tuple[str, ...]) -> None:
        suggestions = difflib.get_close_matches(
            name.strip().lower(), [k.lower() for k in known], n=1, cutoff=0.5
        )
        hint = ""
        if suggestions:
            canonical = {k.lower(): k for k in known}[suggestions[0]]
            hint = f"; did you mean {canonical!r}?"
        message = (
            f"unknown {kind} {name!r}{hint} known: {', '.join(known) or '(none)'}"
        )
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.suggestion = (
            {k.lower(): k for k in known}[suggestions[0]] if suggestions else None
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the prose readable
        return self.args[0]


@dataclass(frozen=True)
class PluginInfo:
    """One registered plugin: its canonical name, factory and provenance."""

    kind: str
    name: str
    factory: Callable[..., Any]
    summary: str = ""
    source: str = "builtin"

    @property
    def module(self) -> str:
        """Dotted module the factory was defined in."""
        return getattr(self.factory, "__module__", "?")


class PluginRegistry:
    """A named, case-insensitive mapping of plugin names to factories.

    One instance per plugin *kind* (heuristic / filter / traffic /
    admission).  Names are stored under their lower-cased key but keep
    the canonical spelling they were registered with, so ``get("mect")``
    and ``get("MECT")`` resolve identically and catalogs display the
    paper's names.
    """

    def __init__(self, kind: str, protocol: type | None = None) -> None:
        self.kind = kind
        self.protocol = protocol
        self._plugins: dict[str, PluginInfo] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        *,
        summary: str = "",
        source: str = "builtin",
        replace: bool = False,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register ``factory`` (or a class) under ``name``."""

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, factory, summary=summary, source=source, replace=replace)
            return factory

        return decorator

    def add(
        self,
        name: str,
        factory: Callable[..., Any],
        *,
        summary: str = "",
        source: str = "builtin",
        replace: bool = False,
    ) -> None:
        """Imperative registration (the decorator's workhorse)."""
        key = self._key(name)
        if not key:
            raise ValueError(f"{self.kind} plugin name must be non-empty")
        if "+" in key or "/" in key:
            raise ValueError(
                f"{self.kind} plugin name {name!r} may not contain '+' or '/' "
                "(reserved for variant and spec labels)"
            )
        if key in self._plugins and not replace:
            existing = self._plugins[key]
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"(by {existing.module}); pass replace=True to override"
            )
        if not summary:
            summary = (getattr(factory, "__doc__", None) or "").strip().splitlines()
            summary = summary[0] if summary else ""
        self._plugins[key] = PluginInfo(
            kind=self.kind, name=name.strip(), factory=factory,
            summary=summary, source=source,
        )

    def unregister(self, name: str) -> None:
        """Remove a plugin (tests and REPL experiments)."""
        self._plugins.pop(self._key(name), None)

    # -- lookup ---------------------------------------------------------

    @staticmethod
    def _key(name: str) -> str:
        return name.strip().lower()

    def _lookup(self, name: str) -> PluginInfo | None:
        info = self._plugins.get(self._key(name))
        if info is None:
            # A miss may just mean builtins / third-party entry points
            # have not been imported yet; load them once and retry.
            _load_builtins(self.kind)
            load_entry_point_plugins()
            info = self._plugins.get(self._key(name))
        return info

    def info(self, name: str) -> PluginInfo:
        """The :class:`PluginInfo` for ``name`` (case-insensitive)."""
        info = self._lookup(name)
        if info is None:
            raise UnknownPluginError(self.kind, name, self.names())
        return info

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        return self.info(name).factory

    def canonical(self, name: str) -> str:
        """The canonical spelling of ``name`` (e.g. ``"mect"`` -> ``"MECT"``)."""
        return self.info(name).name

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the plugin: ``factory(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._lookup(name) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._plugins)

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order (builtins first)."""
        return tuple(info.name for info in self._plugins.values())

    def describe(self) -> list[dict[str, str]]:
        """Catalog rows for this kind (name, summary, module, source)."""
        return [
            {
                "kind": info.kind,
                "name": info.name,
                "summary": info.summary,
                "module": info.module,
                "source": info.source,
            }
            for info in self._plugins.values()
        ]

    def __repr__(self) -> str:
        return f"PluginRegistry({self.kind!r}, {list(self.names())!r})"


# ----------------------------------------------------------------------
# The four registries and their decorators
# ----------------------------------------------------------------------

HEURISTIC_PLUGINS = PluginRegistry("heuristic", HeuristicPlugin)
FILTER_PLUGINS = PluginRegistry("filter", FilterPlugin)
TRAFFIC_PLUGINS = PluginRegistry("traffic")
ADMISSION_PLUGINS = PluginRegistry("admission", AdmissionPlugin)

_REGISTRIES: dict[str, PluginRegistry] = {
    "heuristic": HEURISTIC_PLUGINS,
    "filter": FILTER_PLUGINS,
    "traffic": TRAFFIC_PLUGINS,
    "admission": ADMISSION_PLUGINS,
}


def registry_for(kind: str) -> PluginRegistry:
    """The registry of one plugin kind (``"heuristic"``, ``"filter"``, ...)."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise UnknownPluginError("plugin kind", kind, PLUGIN_KINDS) from None


def register_heuristic(name: str, *, summary: str = "", replace: bool = False):
    """Register an allocation heuristic factory ``(rng) -> Heuristic``."""
    return HEURISTIC_PLUGINS.register(name, summary=summary, replace=replace)


def register_filter(name: str, *, summary: str = "", replace: bool = False):
    """Register an assignment-filter factory ``(FilterConfig) -> filter``."""
    return FILTER_PLUGINS.register(name, summary=summary, replace=replace)


def register_traffic(name: str, *, summary: str = "", replace: bool = False):
    """Register a traffic-stream factory ``(TrafficContext) -> Iterator[float]``."""
    return TRAFFIC_PLUGINS.register(name, summary=summary, replace=replace)


def register_admission(name: str, *, summary: str = "", replace: bool = False):
    """Register an admission-policy factory ``(SheddingConfig) -> controller``."""
    return ADMISSION_PLUGINS.register(name, summary=summary, replace=replace)


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------

_LOADED_BUILTINS: set[str] = set()
_ENTRY_POINTS_LOADED = False


def _load_builtins(kind: str | None = None) -> None:
    """Import the module(s) registering builtin plugins (idempotent)."""
    kinds = (kind,) if kind is not None else PLUGIN_KINDS
    for k in kinds:
        module = _BUILTIN_MODULES.get(k)
        if module is None or module in _LOADED_BUILTINS:
            continue
        _LOADED_BUILTINS.add(module)
        importlib.import_module(module)


def load_entry_point_plugins(*, reload: bool = False) -> list[str]:
    """Discover third-party plugins via ``entry_points(group="repro.plugins")``.

    Each entry point is loaded once per process; the loaded object is
    either a module (imported for its ``@register_*`` side effects) or a
    callable invoked with no arguments.  A broken distribution is
    skipped — one bad plugin must not take down the CLI — and reported
    in the returned list as ``"name: error"``.
    """
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED and not reload:
        return []
    _ENTRY_POINTS_LOADED = True
    report: list[str] = []
    try:
        entry_points = importlib.metadata.entry_points(group=ENTRY_POINT_GROUP)
    except Exception as exc:  # pragma: no cover - metadata backend failure
        return [f"entry-point scan failed: {exc}"]
    for entry_point in entry_points:
        try:
            loaded = entry_point.load()
            if callable(loaded):
                loaded()
            report.append(entry_point.name)
        except Exception as exc:
            report.append(f"{entry_point.name}: {exc}")
    return report


def describe_plugins(kind: str | None = None) -> list[dict[str, str]]:
    """The full plugin catalog (builtins + entry points), as table rows.

    Powers ``repro scenarios plugins``; filter to one ``kind`` if given.
    """
    _load_builtins()
    load_entry_point_plugins()
    registries = (registry_for(kind),) if kind is not None else _REGISTRIES.values()
    rows: list[dict[str, str]] = []
    for registry in registries:
        rows.extend(registry.describe())
    return rows


def plugin_table(rows: list[dict[str, str]]) -> str:
    """Render catalog rows as an aligned text table."""
    if not rows:
        return "(no plugins registered)"
    headers = ("kind", "name", "source", "summary")
    widths = {
        h: max(len(h), *(len(str(r.get(h, ""))) for r in rows)) for h in headers[:-1]
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers[:-1]) + "  summary",
        "  ".join("-" * widths[h] for h in headers[:-1]) + "  -------",
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers[:-1])
            + f"  {row.get('summary', '')}"
        )
    return "\n".join(lines)
