"""repro — reproduction of Young et al., "Energy-Constrained Dynamic
Resource Allocation in a Heterogeneous Computing Environment" (ICPP 2011).

The package simulates an oversubscribed, heterogeneous, DVFS-capable
cluster processing a bursty stream of deadline-constrained tasks under a
total energy budget, and reruns the paper's evaluation of four
immediate-mode heuristics (SQ, MECT, LL, Random) crossed with two generic
assignment filters (energy fair-share, robustness threshold).

Quickstart
----------
>>> from repro import SimulationConfig, build_trial_system, run_trial
>>> from repro.heuristics import LightestLoad
>>> from repro.filters import build_filter_chain
>>> cfg = SimulationConfig(seed=42).with_updates(workload={"num_tasks": 100})
>>> system = build_trial_system(cfg)
>>> result = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
>>> 0 <= result.missed <= 100
True

Scenario files (one TOML per experiment) are the declarative front
door; :mod:`repro.scenario` parses them and :func:`repro.api.run_scenario`
executes them.  Policies resolve by name through :mod:`repro.registry`,
which third-party packages can extend.

Subpackages
-----------
``repro.stoch``        pmf algebra (convolve / shift / truncate / CDF)
``repro.cluster``      nodes, P-states, CMOS power, energy ledger
``repro.workload``     CVB ETC matrix, pmf tables, bursty arrivals, deadlines
``repro.robustness``   Section IV completion-time and rho machinery
``repro.heuristics``   SQ, MECT, LL, Random
``repro.filters``      energy and robustness filters
``repro.sim``          discrete-event engine
``repro.obs``          observability: events, sinks, metrics, manifests
``repro.experiments``  ensembles, figures, statistics, reports
``repro.extensions``   Section VIII future-work features
"""

from repro._version import __version__
from repro.config import (
    ClusterConfig,
    EnergyConfig,
    FilterConfig,
    GridConfig,
    IdlePowerMode,
    LambdaMode,
    SimulationConfig,
    WorkloadConfig,
)
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system

__all__ = [
    "__version__",
    "ClusterConfig",
    "EnergyConfig",
    "FilterConfig",
    "GridConfig",
    "IdlePowerMode",
    "LambdaMode",
    "SimulationConfig",
    "WorkloadConfig",
    "run_trial",
    "build_trial_system",
]
