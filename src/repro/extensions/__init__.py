"""Section VIII future-work features, implemented as optional extensions.

The paper closes with four directions; each has a module here:

* **varying task priorities** — :mod:`repro.extensions.priorities`
  (priority assignment, a priority-weighted LL variant, weighted
  scoring);
* **cancelling and/or rescheduling tasks** —
  :mod:`repro.extensions.cancellation` (an engine hook that abandons
  queued tasks which have become hopeless, freeing their slot);
* **a variety of arrival rates and patterns** —
  :mod:`repro.extensions.arrival_patterns` (constant, sinusoidal,
  multi-burst processes and a workload builder around them);
* **full probability distributions for power consumption** —
  :mod:`repro.extensions.power_distributions` (per-P-state power pmfs
  and post-hoc energy re-accounting under power uncertainty);
* **rescheduling** — :mod:`repro.extensions.rescheduling` (work stealing
  between cores when rescheduling is permitted).

:mod:`repro.extensions.baselines` additionally supplies four classic
immediate-mode heuristics (MET, OLB, KPB, MEEC) from the same literature
the paper draws SQ/MECT from, for broader head-to-head comparisons.

None of these change the baseline reproduction; the benches ablate them
separately.
"""

from repro.extensions.priorities import (
    PriorityEnergyFilter,
    PriorityLightestLoad,
    weighted_missed,
    with_priorities,
)
from repro.extensions.cancellation import AbandonHopelessPolicy
from repro.extensions.arrival_patterns import (
    constant_arrivals,
    multi_burst_arrivals,
    sinusoidal_arrivals,
    workload_with_arrivals,
)
from repro.extensions.power_distributions import (
    StochasticPowerModel,
    resample_trial_energy,
)
from repro.extensions.rescheduling import WorkStealingPolicy
from repro.extensions.batch_mode import BatchEngine, run_batch_trial
from repro.extensions.baselines import (
    EXTENDED_HEURISTICS,
    KPercentBest,
    MinimumExecutionTime,
    MinimumExpectedEnergy,
    OpportunisticLoadBalancing,
    make_extended_heuristic,
)

__all__ = [
    "BatchEngine",
    "run_batch_trial",
    "PriorityEnergyFilter",
    "WorkStealingPolicy",
    "EXTENDED_HEURISTICS",
    "KPercentBest",
    "MinimumExecutionTime",
    "MinimumExpectedEnergy",
    "OpportunisticLoadBalancing",
    "make_extended_heuristic",
    "PriorityLightestLoad",
    "weighted_missed",
    "with_priorities",
    "AbandonHopelessPolicy",
    "constant_arrivals",
    "multi_burst_arrivals",
    "sinusoidal_arrivals",
    "workload_with_arrivals",
    "StochasticPowerModel",
    "resample_trial_energy",
]
