"""Task cancellation (paper Section VIII: "cancel and/or reschedule").

The baseline model executes every mapped task to completion even when it
has already missed its deadline.  :class:`AbandonHopelessPolicy` relaxes
that for *queued* tasks only (running tasks still finish, matching the
paper's "cannot stop a task after it has been scheduled" reading for
in-flight work): whenever a core completes a task, queued tasks whose
probability of on-time completion has fallen below a threshold are
abandoned, freeing core time and energy for tasks that can still count.
"""

from __future__ import annotations

from repro.robustness.completion import prob_on_time
from repro.sim.engine import Engine
from repro.stoch.ops import convolve
from repro.stoch.pmf import PMF
from repro.workload.task import Task

__all__ = ["AbandonHopelessPolicy"]


class AbandonHopelessPolicy:
    """Engine hooks implementation that drops hopeless queued tasks.

    Parameters
    ----------
    min_prob:
        Queued tasks whose on-time probability (given the queue ahead of
        them) is below this are cancelled.  ``0.0`` disables cancellation
        of anything that is not already past its deadline.

    Attributes
    ----------
    cancelled:
        Task ids this policy abandoned, in cancellation order.
    """

    def __init__(self, min_prob: float = 0.05) -> None:
        if not (0.0 <= min_prob <= 1.0):
            raise ValueError("min_prob must be a probability")
        self.min_prob = float(min_prob)
        self.cancelled: list[int] = []

    # -- EngineHooks interface ------------------------------------------------

    def on_mapped(self, engine: Engine, task: Task, core_id: int, pstate: int) -> None:
        """No action on mapping."""

    def on_discarded(self, engine: Engine, task: Task) -> None:
        """No action on discards."""

    def on_completion(self, engine: Engine, core_id: int, task: Task, t_now: float) -> None:
        """Re-evaluate the completing core's queue and abandon lost causes.

        The core is momentarily idle (the engine starts the next task
        after this hook), so the first queued task would start at
        ``t_now``; completion pmfs chain by convolution from there.
        """
        core = engine.cores[core_id]
        if not core.queue:
            return
        ready: PMF = PMF.delta(t_now, core.dt)
        doomed: list[int] = []
        for entry in core.queue:
            if entry.task.deadline < t_now:
                doomed.append(entry.task.task_id)
                continue
            p = prob_on_time(ready, entry.exec_pmf, entry.task.deadline)
            if p < self.min_prob:
                doomed.append(entry.task.task_id)
                continue
            # Survivors consume core time ahead of later entries.
            ready = convolve(ready, entry.exec_pmf)
        for task_id in doomed:
            if engine.cancel_queued(core_id, task_id):
                self.cancelled.append(task_id)
