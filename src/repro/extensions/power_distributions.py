"""Distribution-valued power consumption (paper Section VIII).

The baseline model approximates each P-state's power by a scalar average
(Section III-A).  This extension represents power as a pmf per (node,
P-state) and lets you re-account a finished trial's energy under power
uncertainty: each execution interval draws an actual power around its
P-state's mean, shifting the budget-exhaustion instant and therefore the
count of tasks "completed within the energy constraint".

The extension is deliberately *post-hoc*: the heuristics still plan with
expected power (as the paper's would — EEC is an expectation either way),
so re-running the engine is unnecessary; only the ledger arithmetic
changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.sim.results import TrialResult
from repro.stoch.distributions import discretized_normal
from repro.stoch.pmf import PMF
from repro.stoch.samplers import sample_pmf

__all__ = ["StochasticPowerModel", "resample_trial_energy", "EnergyResample"]


class StochasticPowerModel:
    """Per-(node, P-state) power pmfs around the cluster's scalar means.

    Power of node ``n`` in state ``pi`` is a truncated normal with mean
    ``mu(n, pi)`` and coefficient of variation ``power_cv``, discretized
    with resolution ``mu * power_cv / 8`` (fine enough that the pmf mean
    matches the scalar model to <0.1%).
    """

    def __init__(self, cluster: ClusterSpec, power_cv: float = 0.05) -> None:
        if power_cv <= 0.0:
            raise ValueError("power_cv must be positive")
        self.cluster = cluster
        self.power_cv = float(power_cv)
        means = cluster.power_table()
        self._pmfs: list[list[PMF]] = []
        for n in range(cluster.num_nodes):
            row: list[PMF] = []
            for pi in range(cluster.num_pstates):
                mu = float(means[n, pi])
                std = self.power_cv * mu
                row.append(discretized_normal(mu, std, dt=std / 8.0))
            self._pmfs.append(row)

    def pmf(self, node: int, pstate: int) -> PMF:
        """Power pmf of one (node, P-state)."""
        return self._pmfs[node][pstate]

    def sample(self, node: int, pstate: int, rng: np.random.Generator) -> float:
        """Draw one actual power value (watts)."""
        return sample_pmf(self._pmfs[node][pstate], rng)


@dataclass(frozen=True)
class EnergyResample:
    """Result of re-accounting a trial under stochastic power.

    ``missed`` re-counts the paper's metric with the resampled
    exhaustion time; ``baseline_missed`` is the scalar-power count.
    """

    total_energy: float
    exhaustion_time: float
    missed: int
    baseline_missed: int

    @property
    def miss_shift(self) -> int:
        """How many tasks changed status due to power uncertainty."""
        return self.missed - self.baseline_missed


def resample_trial_energy(
    result: TrialResult,
    cluster: ClusterSpec,
    model: StochasticPowerModel,
    rng: np.random.Generator,
) -> EnergyResample:
    """Re-draw per-execution power and re-score a finished trial.

    Requires per-task outcomes (``keep_outcomes=True``).  Idle-floor
    energy is left at its scalar value — idle draw is far steadier than
    load draw, and the paper's uncertainty concern is execution power.
    """
    if not result.outcomes:
        raise ValueError("result lacks per-task outcomes; run with keep_outcomes")
    core_node = cluster.core_node_index
    eff = cluster.efficiency_vector()

    # Piecewise-constant consumed power from execution intervals with
    # resampled draws, plus the scalar idle/baseline remainder inferred
    # from the original totals.
    exec_events: list[tuple[float, float]] = []
    scalar_exec_energy = 0.0
    resampled_exec_energy = 0.0
    power_means = cluster.power_table()
    for outcome in result.outcomes:
        if outcome.discarded:
            continue
        node = int(core_node[outcome.core_id])
        duration = outcome.completion - outcome.start
        mean_p = float(power_means[node, outcome.pstate]) / eff[node]
        actual_p = model.sample(node, outcome.pstate, rng) / eff[node]
        scalar_exec_energy += mean_p * duration
        resampled_exec_energy += actual_p * duration
        exec_events.append((outcome.start, actual_p))
        exec_events.append((outcome.completion, -actual_p))

    idle_energy = result.total_energy - scalar_exec_energy
    idle_rate = idle_energy / result.makespan if result.makespan > 0 else 0.0

    exec_events.sort()
    budget = result.budget
    energy = 0.0
    rate = idle_rate
    prev = 0.0
    exhaustion = float("inf")
    for t, delta in exec_events:
        step = energy + rate * (t - prev)
        if rate > 0.0 and step >= budget and exhaustion == float("inf"):
            exhaustion = prev + (budget - energy) / rate
        energy = step
        rate += delta
        prev = t
    if exhaustion == float("inf") and rate > 0.0:
        remaining = budget - (energy + rate * (result.makespan - prev))
        if remaining <= 0.0:
            exhaustion = prev + (budget - energy) / rate

    missed = 0
    for outcome in result.outcomes:
        counted = outcome.on_time() and outcome.completion <= exhaustion
        if not counted:
            missed += 1
    return EnergyResample(
        total_energy=resampled_exec_energy + idle_energy,
        exhaustion_time=exhaustion,
        missed=missed,
        baseline_missed=result.missed,
    )
