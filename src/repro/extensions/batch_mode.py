"""Batch-mode mapping (paper Section II contrast; [MaA99], [SmA10]).

The paper deliberately limits its resource manager to *immediate mode*:
each task is mapped at arrival, irrevocably.  The classic alternative is
*batch mode* — hold unmapped tasks in a central pool and defer
commitment until a core can actually take work.  This extension
implements a batch engine over the same substrates so the two modes can
be compared on identical trials:

* arriving tasks join a central pending pool (after the same filter
  chain vets that *some* assignment is acceptable — otherwise the task
  is discarded exactly as in immediate mode);
* whenever a core goes idle (and on every arrival), a batch heuristic
  picks (task, core, P-state) triples over the pending pool and the
  *idle* cores only — cores never queue, so every commitment happens at
  the last responsible moment;
* two classic batch heuristics are provided: **Min-Min** (repeatedly
  commit the pending task with the globally smallest expected completion
  time) and **Max-Min** (commit the task whose *best* completion time is
  largest — serving hard tasks first).

Because pending tasks wait in the pool rather than in core FIFOs, batch
mode can re-decide placement as late information arrives — the
structural advantage the paper's immediate-mode constraint gives up.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Literal

from repro.cluster.energy import IDLE_PSTATE, EnergyLedger
from repro.filters.chain import FilterChain
from repro.heuristics.base import MappingContext
from repro.robustness.completion import prob_on_time
from repro.sim.results import TaskOutcome, TrialResult
from repro.sim.state import CoreState, RunningTask
from repro.sim.system import TrialSystem
from repro.stoch.pmf import PMF
from repro.workload.task import Task

__all__ = ["BatchEngine", "run_batch_trial"]

_COMPLETION = 0
_ARRIVAL = 1


@dataclass
class _Pending:
    task: Task


class BatchEngine:
    """Batch-mode counterpart of :class:`repro.sim.engine.Engine`.

    Parameters
    ----------
    system:
        The same trial environment the immediate-mode engine uses,
        enabling paired comparisons.
    policy:
        ``"min-min"`` or ``"max-min"``.
    filter_chain:
        The paper's filters, applied per dispatch decision over the
        candidate (idle core, P-state) pairs of each pending task.
    """

    def __init__(
        self,
        system: TrialSystem,
        policy: Literal["min-min", "max-min"] = "min-min",
        filter_chain: FilterChain | None = None,
    ) -> None:
        if policy not in ("min-min", "max-min"):
            raise ValueError(f"unknown batch policy {policy!r}")
        self.system = system
        self.policy = policy
        self.filter_chain = filter_chain if filter_chain is not None else FilterChain()
        cluster = system.cluster
        dt = system.config.grid.dt
        self.cores = [
            CoreState(cid, int(cluster.core_node_index[cid]), dt)
            for cid in range(cluster.num_cores)
        ]
        self.ledger = EnergyLedger(cluster, system.config.energy.idle_power_mode)
        self.energy_estimate = system.budget
        self._pending: list[_Pending] = []
        self._heap: list[tuple[float, int, int, int]] = []
        self._seq = 0
        self._outcomes: dict[int, TaskOutcome] = {}
        self._in_system = 0
        self._arrived = 0
        self._ran = False

    # ------------------------------------------------------------------

    def _push(self, time: float, kind: int, payload: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, payload))

    def _context(self, task: Task, t_now: float) -> MappingContext:
        return MappingContext(
            t_now=t_now,
            task=task,
            energy_estimate=self.energy_estimate,
            tasks_left=self.system.num_tasks - self._arrived,
            avg_queue_depth=(self._in_system + len(self._pending)) / len(self.cores),
        )

    def _feasible_idle_assignments(
        self, task: Task, t_now: float
    ) -> list[tuple[int, int, float, float, float]]:
        """(core_id, pstate, ect, eec, rho) for idle cores passing filters."""
        table = self.system.table
        ctx = self._context(task, t_now)
        ready = PMF.delta(t_now, self.system.config.grid.dt)
        out: list[tuple[int, int, float, float, float]] = []
        for core in self.cores:
            if core.running is not None:
                continue
            node = core.node_index
            for pi in range(self.system.cluster.num_pstates):
                eet = float(table.eet[task.type_id, node, pi])
                eec = float(table.eec[task.type_id, node, pi])
                rho = prob_on_time(
                    ready, table.pmf(task.type_id, node, pi), task.deadline
                )
                if not self._passes_filters(ctx, eec, rho):
                    continue
                out.append((core.core_id, pi, t_now + eet, eec, rho))
        return out

    def _passes_filters(self, ctx: MappingContext, eec: float, rho: float) -> bool:
        """Scalar re-statement of the two paper filters."""
        for f in self.filter_chain.filters:
            label = getattr(f, "label", "")
            if label == "en":
                if eec > f.fair_share(ctx):  # type: ignore[attr-defined]
                    return False
            elif label == "rob":
                if rho < f.threshold:  # type: ignore[attr-defined]
                    return False
            else:  # pragma: no cover - no other built-in filters exist
                raise TypeError(f"batch mode cannot interpret filter {f!r}")
        return True

    def _any_assignment_acceptable(self, task: Task, t_now: float) -> bool:
        """Admission check mirroring immediate mode's discard rule.

        A task none of whose (core, P-state) pairs — busy cores included,
        evaluated optimistically as if the core were free — could pass
        the filters will never be dispatchable; discard it now.
        """
        table = self.system.table
        ctx = self._context(task, t_now)
        ready = PMF.delta(t_now, self.system.config.grid.dt)
        for node in range(self.system.cluster.num_nodes):
            for pi in range(self.system.cluster.num_pstates):
                eec = float(table.eec[task.type_id, node, pi])
                rho = prob_on_time(
                    ready, table.pmf(task.type_id, node, pi), task.deadline
                )
                if self._passes_filters(ctx, eec, rho):
                    return True
        return False

    # ------------------------------------------------------------------

    def _dispatch(self, t_now: float) -> None:
        """Commit pending tasks to idle cores per the batch policy."""
        while self._pending:
            best_key: float | None = None
            best: tuple[int, tuple[int, int, float, float, float]] | None = None
            for idx, pending in enumerate(self._pending):
                options = self._feasible_idle_assignments(pending.task, t_now)
                if not options:
                    continue
                # The task's own best option is its minimum-ECT pair.
                option = min(options, key=lambda o: (o[2], o[0], o[1]))
                key = option[2]
                if best is None:
                    better = True
                elif self.policy == "min-min":
                    better = key < best_key  # earliest best completion first
                else:  # max-min
                    better = key > best_key  # hardest task first
                if better:
                    best_key = key
                    best = (idx, option)
            if best is None:
                return  # no idle core can take any pending task
            idx, (core_id, pstate, _ect, eec, _rho) = best
            pending = self._pending.pop(idx)
            self._start(pending.task, core_id, pstate, eec, t_now)

    def _start(self, task: Task, core_id: int, pstate: int, eec: float, t_now: float) -> None:
        core = self.cores[core_id]
        exec_pmf = self.system.table.pmf(task.type_id, core.node_index, pstate)
        luck = float(self.system.exec_luck[task.task_id])
        actual = exec_pmf.quantile(luck)
        completion = t_now + actual
        core.set_running(
            RunningTask(
                task=task,
                pstate=pstate,
                exec_pmf=exec_pmf,
                start_time=t_now,
                completion_time=completion,
            )
        )
        self.ledger.record(core_id, t_now, pstate)
        self.energy_estimate -= eec
        self._in_system += 1
        self._outcomes[task.task_id] = TaskOutcome(
            task_id=task.task_id,
            type_id=task.type_id,
            arrival=task.arrival,
            deadline=task.deadline,
            core_id=core_id,
            pstate=pstate,
            start=t_now,
            completion=completion,
            discarded=False,
        )
        self._push(completion, _COMPLETION, core_id)

    # ------------------------------------------------------------------

    def run(self) -> TrialResult:
        """Execute the batch-mode trial and score it like the baseline."""
        if self._ran:
            raise RuntimeError("a BatchEngine instance runs exactly once")
        self._ran = True
        tasks = self.system.workload.tasks
        for task in tasks:
            self._push(task.arrival, _ARRIVAL, task.task_id)

        end_time = 0.0
        while self._heap:
            time, kind, _seq, payload = heapq.heappop(self._heap)
            end_time = max(end_time, time)
            if kind == _COMPLETION:
                core = self.cores[payload]
                assert core.running is not None
                core.clear_running()
                self._in_system -= 1
                self.ledger.record(payload, time, IDLE_PSTATE)
            else:
                task = tasks[payload]
                self._arrived += 1
                if self._any_assignment_acceptable(task, time):
                    self._pending.append(_Pending(task))
                # else: discarded (no outcome entry)
            self._dispatch(time)

        # Tasks still pending at drain time can never run (no more events).
        self._pending.clear()
        self.ledger.close(end_time)
        return self._score(end_time)

    def _score(self, end_time: float) -> TrialResult:
        system = self.system
        exhaustion = self.ledger.exhaustion_time(system.budget)
        outcomes: list[TaskOutcome] = []
        discarded = late = cutoff = within = 0
        for task in system.workload.tasks:
            outcome = self._outcomes.get(task.task_id)
            if outcome is None:
                discarded += 1
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        type_id=task.type_id,
                        arrival=task.arrival,
                        deadline=task.deadline,
                        core_id=-1,
                        pstate=-1,
                        start=float("nan"),
                        completion=float("nan"),
                        discarded=True,
                    )
                )
                continue
            outcomes.append(outcome)
            if not outcome.on_time():
                late += 1
            elif outcome.completion > exhaustion:
                cutoff += 1
            else:
                within += 1
        missed = discarded + late + cutoff
        return TrialResult(
            heuristic=f"Batch-{self.policy}",
            variant=self.filter_chain.label,
            seed=system.config.seed,
            num_tasks=system.num_tasks,
            missed=missed,
            completed_within=within,
            discarded=discarded,
            late=late,
            energy_cutoff=cutoff,
            total_energy=self.ledger.total_energy(),
            budget=system.budget,
            exhaustion_time=exhaustion,
            makespan=end_time,
            outcomes=tuple(outcomes),
        )


def run_batch_trial(
    system: TrialSystem,
    policy: Literal["min-min", "max-min"] = "min-min",
    filter_chain: FilterChain | None = None,
) -> TrialResult:
    """Convenience wrapper: construct a :class:`BatchEngine` and run it."""
    return BatchEngine(system, policy, filter_chain).run()
