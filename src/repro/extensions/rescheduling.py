"""Task rescheduling via work stealing (paper Section VIII).

The baseline model maps irrevocably; the paper's future work asks what
"the ability to cancel and/or reschedule tasks" buys.  This extension
implements the natural rescheduling policy for a FIFO-core cluster:
**work stealing**.  Whenever a core completes a task and has nothing left
to do, it pulls the tail task from the most backlogged core — but only if
starting it here, now, raises the task's probability of meeting its
deadline above what it faces where it queues.

Stolen tasks keep their P-state *index*; the execution-time pmf is
re-resolved for the thief's node (the engine adjusts the scheduler's
energy estimate by the EEC delta).
"""

from __future__ import annotations

from repro.robustness.completion import prob_on_time
from repro.sim.engine import Engine
from repro.stoch.pmf import PMF
from repro.workload.task import Task

__all__ = ["WorkStealingPolicy"]


class WorkStealingPolicy:
    """Engine hooks implementation: idle cores steal backlogged work.

    Parameters
    ----------
    min_gain:
        Required improvement in the stolen task's on-time probability
        (thief's estimate minus victim's estimate) for a steal to
        proceed.  Small positive values avoid thrash on noise.

    Attributes
    ----------
    steals:
        ``(task_id, from_core, to_core)`` triples, in steal order.
    """

    def __init__(self, min_gain: float = 0.02) -> None:
        if not (0.0 <= min_gain <= 1.0):
            raise ValueError("min_gain must be a probability delta in [0, 1]")
        self.min_gain = float(min_gain)
        self.steals: list[tuple[int, int, int]] = []

    # -- EngineHooks interface ------------------------------------------------

    def on_mapped(self, engine: Engine, task: Task, core_id: int, pstate: int) -> None:
        """No action on mapping."""

    def on_discarded(self, engine: Engine, task: Task) -> None:
        """No action on discards."""

    def on_completion(self, engine: Engine, core_id: int, task: Task, t_now: float) -> None:
        """Steal for the just-freed core when it would otherwise idle."""
        thief = engine.cores[core_id]
        if thief.queue:
            return  # the core has local work; the engine starts it next

        victim = None
        for candidate in engine.cores:
            if candidate.core_id == core_id or not candidate.queue:
                continue
            if victim is None or candidate.assigned_count > victim.assigned_count:
                victim = candidate
        if victim is None or victim.assigned_count < 3:
            return  # nothing worth stealing: victims keep short backlogs

        entry = victim.queue[-1]  # tail: least disruptive to the FIFO
        stolen = entry.task
        # Victim-side estimate: completion behind everything ahead of it.
        victim_ready_without_tail = _ready_excluding_tail(victim, t_now)
        p_stay = prob_on_time(victim_ready_without_tail, entry.exec_pmf, stolen.deadline)
        # Thief-side estimate: starts immediately on this core.
        thief_pmf = engine.system.table.pmf(
            stolen.type_id, thief.node_index, entry.pstate
        )
        p_move = prob_on_time(
            PMF.delta(t_now, thief.dt), thief_pmf, stolen.deadline
        )
        if p_move < p_stay + self.min_gain:
            return
        if engine.move_queued(victim.core_id, stolen.task_id, core_id, entry.pstate):
            self.steals.append((stolen.task_id, victim.core_id, core_id))


def _ready_excluding_tail(core, t_now: float) -> PMF:
    """Ready-time pmf of a core as seen by its own *tail* queued task."""
    from repro.robustness.completion import ready_pmf, running_completion_pmf

    running = core.running
    assert running is not None and core.queue
    ahead = [e.exec_pmf for e in list(core.queue)[:-1]]
    running_c = running_completion_pmf(running.exec_pmf, running.start_time, t_now)
    return ready_pmf(running_c, ahead, t_now, core.dt)
