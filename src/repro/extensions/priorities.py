"""Task priorities (paper Section VIII: "tasks with varying priorities").

Pieces:

* :func:`with_priorities` stamps a workload's tasks with priority levels;
* :class:`PriorityLightestLoad` generalizes the LL heuristic: the load of
  Eq. 5 becomes ``EEC * (1 - rho) ** priority``, so high-priority tasks
  weight robustness more heavily against energy (for unit priorities this
  is exactly the paper's LL).  Note that merely *dividing* the load by
  the priority would be a no-op — a per-task constant cannot change that
  task's argmin — so the priority must reshape the energy/robustness
  trade-off, which the exponent does;
* :class:`PriorityEnergyFilter` scales the fair-share threshold by the
  task's priority relative to the workload's mean priority: important
  tasks may claim a larger slice of the remaining budget (and low-priority
  tasks a smaller one, keeping the total fair);
* :func:`weighted_missed` scores a trial by priority-weighted misses,
  the natural generalization of the paper's metric.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.config import FilterConfig
from repro.filters.energy_filter import EnergyFilter
from repro.heuristics.base import CandidateSet, Heuristic, MappingContext, argmin_lexicographic
from repro.sim.results import TrialResult
from repro.workload.workload import Workload

__all__ = [
    "with_priorities",
    "PriorityLightestLoad",
    "PriorityEnergyFilter",
    "weighted_missed",
]


def with_priorities(
    workload: Workload,
    rng: np.random.Generator,
    levels: Sequence[float] = (1.0, 2.0, 4.0),
    probabilities: Sequence[float] | None = None,
) -> Workload:
    """Return a copy of ``workload`` with random task priorities.

    ``levels`` are the priority values (higher = more important);
    ``probabilities`` their selection weights (uniform by default).
    """
    levels_arr = np.asarray(levels, dtype=np.float64)
    if levels_arr.size == 0 or np.any(levels_arr <= 0.0):
        raise ValueError("priority levels must be positive")
    if probabilities is not None:
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != levels_arr.shape or abs(probs.sum() - 1.0) > 1e-9:
            raise ValueError("probabilities must align with levels and sum to 1")
    else:
        probs = None
    drawn = rng.choice(levels_arr, size=workload.num_tasks, p=probs)
    tasks = tuple(
        replace(task, priority=float(p)) for task, p in zip(workload.tasks, drawn)
    )
    return replace(workload, tasks=tasks)


class PriorityLightestLoad(Heuristic):
    """LL with priority-shaped load: ``EEC * (1 - rho) ** priority``.

    A priority of 1 reproduces the paper's LL exactly.  Larger priorities
    make the miss-probability factor dominate, pushing important tasks
    toward faster/more-robust assignments even when they cost more energy;
    priorities below 1 do the reverse.
    """

    name = "LL-prio"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the minimum priority-shaped load."""
        miss = np.clip(1.0 - cands.prob_on_time, 1e-12, 1.0)
        load = cands.eec * np.power(miss, ctx.task.priority)
        return argmin_lexicographic(cands.mask, load)


class PriorityEnergyFilter(EnergyFilter):
    """Energy filter whose fair share scales with task priority.

    ``zeta_fair`` is multiplied by ``priority / mean_priority``: a 4x
    task in a workload of mean priority 2 may spend twice the plain fair
    share, while a 1x task gets half.  With uniform priorities this is
    exactly the paper's filter.
    """

    label = "en-prio"

    def __init__(self, config: FilterConfig | None = None, mean_priority: float = 1.0) -> None:
        super().__init__(config)
        if mean_priority <= 0.0:
            raise ValueError("mean_priority must be positive")
        self.mean_priority = float(mean_priority)

    @classmethod
    def for_workload(
        cls, workload: Workload, config: FilterConfig | None = None
    ) -> "PriorityEnergyFilter":
        """Construct with ``mean_priority`` measured from a workload."""
        mean_p = float(np.mean([t.priority for t in workload.tasks]))
        return cls(config, mean_priority=mean_p)

    def fair_share(self, ctx: MappingContext) -> float:
        """Plain fair share scaled by priority over the mean priority."""
        base = super().fair_share(ctx)
        return base * ctx.task.priority / self.mean_priority


def weighted_missed(result: TrialResult, workload: Workload) -> float:
    """Priority-weighted missed work, normalized to total priority mass.

    0.0 means every task counted; 1.0 means no priority-weighted value
    was delivered.  Requires the trial to have been run with
    ``keep_outcomes`` (outcome tuples present).
    """
    if len(result.outcomes) != workload.num_tasks:
        raise ValueError("result lacks per-task outcomes; run with keep_outcomes")
    exhaustion = result.exhaustion_time
    total = 0.0
    lost = 0.0
    for task, outcome in zip(workload.tasks, result.outcomes):
        total += task.priority
        counted = outcome.on_time() and outcome.completion <= exhaustion
        if not counted:
            lost += task.priority
    return lost / total if total > 0 else 0.0
