"""Additional baseline heuristics from the dynamic-mapping literature.

The paper adapts SQ and MECT from [SmC09]/[MaA99]; the same Maheswaran et
al. immediate-mode family contains three more classics, implemented here
(adapted to the P-state dimension) as extra comparison points:

* **MET** (Minimum Execution Time): best execution time, load-blind —
  notorious for overloading each task's favorite machine.
* **OLB** (Opportunistic Load Balancing): earliest-ready core, execution-
  time-blind.
* **KPB** (K-Percent Best): restrict to the k% best-EET cores, then pick
  the minimum expected completion time among them — a compromise between
  MET and MECT.

Plus one energy-side baseline:

* **MEEC** (Minimum Expected Energy Consumption): cheapest assignment,
  deadline-blind — the greedy-energy extreme.

None of these appear in the paper's figures; `bench_extended_heuristics`
compares them against the paper's four under the same filters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.heuristics.base import CandidateSet, Heuristic, MappingContext, argmin_lexicographic

__all__ = [
    "MinimumExecutionTime",
    "OpportunisticLoadBalancing",
    "KPercentBest",
    "MinimumExpectedEnergy",
    "EXTENDED_HEURISTICS",
    "make_extended_heuristic",
]


class MinimumExecutionTime(Heuristic):
    """MET: map to the globally fastest (core, P-state) for this task.

    Ignores queue state entirely, so bursts pile onto each task type's
    favorite node.  P0 always wins within a core (it is the fastest), so
    unfiltered MET is also maximally energy-hungry.
    """

    name = "MET"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the global minimum-EET candidate."""
        return argmin_lexicographic(cands.mask, cands.eet)


class OpportunisticLoadBalancing(Heuristic):
    """OLB: map to the earliest-expected-ready core.

    Execution-time-blind: uses only the core's expected ready time
    (``ECT - EET``).  All P-states of one core tie; the tie-break takes
    the lowest expected energy so OLB at least does not burn P0 for
    nothing (the classic formulation has no P-state dimension; this is
    the natural energy-neutral adaptation).
    """

    name = "OLB"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the earliest-ready core (ties: cheapest EEC)."""
        ready = cands.ect - cands.eet
        return argmin_lexicographic(cands.mask, ready, cands.eec)


class KPercentBest(Heuristic):
    """KPB: minimum ECT among the k% of candidates with the best EET.

    ``k = 100`` degenerates to MECT; very small ``k`` approaches MET.
    The percentage applies to the *feasible* candidate pool, so the
    filters compose naturally.
    """

    name = "KPB"

    def __init__(self, k_percent: float = 20.0) -> None:
        if not (0.0 < k_percent <= 100.0):
            raise ValueError("k_percent must be in (0, 100]")
        self.k_percent = float(k_percent)

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the min-ECT candidate among the k% best EETs."""
        feasible = np.flatnonzero(cands.mask)
        if feasible.size == 0:
            return None
        keep = max(1, math.ceil(feasible.size * self.k_percent / 100.0))
        best_by_eet = feasible[np.argsort(cands.eet[feasible], kind="stable")[:keep]]
        sub_mask = np.zeros_like(cands.mask)
        sub_mask[best_by_eet] = True
        return argmin_lexicographic(sub_mask, cands.ect)

    def __repr__(self) -> str:
        return f"KPercentBest(k_percent={self.k_percent})"


class MinimumExpectedEnergy(Heuristic):
    """MEEC: map to the cheapest feasible assignment, deadline-blind."""

    name = "MEEC"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the cheapest feasible candidate."""
        return argmin_lexicographic(cands.mask, cands.eec)


#: Names of the extended baselines, in presentation order.
EXTENDED_HEURISTICS: tuple[str, ...] = ("MET", "OLB", "KPB", "MEEC")


def make_extended_heuristic(name: str) -> Heuristic:
    """Instantiate an extended baseline by name (case-insensitive)."""
    key = name.strip().upper()
    if key == "MET":
        return MinimumExecutionTime()
    if key == "OLB":
        return OpportunisticLoadBalancing()
    if key == "KPB":
        return KPercentBest()
    if key == "MEEC":
        return MinimumExpectedEnergy()
    raise KeyError(
        f"unknown extended heuristic {name!r}; known: {', '.join(EXTENDED_HEURISTICS)}"
    )
