"""Filter composition and the paper's variant labels."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.config import FilterConfig
from repro.filters.base import AssignmentFilter
from repro.filters.energy_filter import EnergyFilter
from repro.filters.robustness_filter import RobustnessFilter
from repro.heuristics.base import CandidateSet, MappingContext

__all__ = ["FilterChain", "VARIANTS", "make_filter_chain"]

#: The four filtering variants, in the order the paper's figures use.
VARIANTS: tuple[str, ...] = ("none", "en", "rob", "en+rob")


class FilterChain:
    """An ordered sequence of filters applied to every candidate set.

    Order is immaterial to the final mask (filters only intersect), but
    the chain applies them as given for deterministic tracing.
    """

    def __init__(self, filters: Iterable[AssignmentFilter] = ()) -> None:
        self._filters: tuple[AssignmentFilter, ...] = tuple(filters)

    @property
    def filters(self) -> Sequence[AssignmentFilter]:
        """The composed filters, in application order."""
        return self._filters

    @property
    def label(self) -> str:
        """Variant label ("none", "en", "rob" or "en+rob")."""
        if not self._filters:
            return "none"
        return "+".join(f.label for f in self._filters)

    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        """Run every filter over the candidate set."""
        for f in self._filters:
            f.apply(cands, ctx)

    def __len__(self) -> int:
        return len(self._filters)

    def __repr__(self) -> str:
        return f"FilterChain({self.label!r})"


def make_filter_chain(variant: str, config: FilterConfig | None = None) -> FilterChain:
    """Build the chain for a paper variant label.

    Accepts "none", "en", "rob", "en+rob" (also "rob+en"), case-insensitive.
    """
    cfg = config if config is not None else FilterConfig()
    key = variant.strip().lower()
    if key == "none":
        return FilterChain()
    parts = key.split("+")
    if not parts or len(set(parts)) != len(parts):
        raise KeyError(f"bad filter variant {variant!r}")
    filters: list[AssignmentFilter] = []
    for part in parts:
        if part == "en":
            filters.append(EnergyFilter(cfg))
        elif part == "rob":
            filters.append(RobustnessFilter(cfg))
        else:
            raise KeyError(f"unknown filter {part!r} in variant {variant!r}")
    return FilterChain(filters)
