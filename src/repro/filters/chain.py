"""Filter composition and the paper's variant labels.

The two paper filters register as plugins
(:func:`repro.registry.register_filter`); a variant label like
``"en+rob"`` is parsed into an ordered chain of registered filter
names, so a third-party filter registered as ``"prune"`` immediately
composes as ``"en+prune"`` in the CLI and in scenario files.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from repro.config import FilterConfig
from repro.filters.base import AssignmentFilter
from repro.filters.energy_filter import EnergyFilter
from repro.filters.robustness_filter import RobustnessFilter
from repro.heuristics.base import CandidateSet, MappingContext
from repro.registry import FILTER_PLUGINS, UnknownPluginError, register_filter

__all__ = [
    "FilterChain",
    "VARIANTS",
    "build_filter_chain",
    "canonical_variant",
    "make_filter_chain",
]

#: The four filtering variants, in the order the paper's figures use.
VARIANTS: tuple[str, ...] = ("none", "en", "rob", "en+rob")


@register_filter("en", summary="Energy filter: fair-share EEC cap (paper §V-F)")
def _make_energy(config: FilterConfig) -> AssignmentFilter:
    return EnergyFilter(config)


@register_filter("rob", summary="Robustness filter: on-time probability floor")
def _make_robustness(config: FilterConfig) -> AssignmentFilter:
    return RobustnessFilter(config)


class FilterChain:
    """An ordered sequence of filters applied to every candidate set.

    Order is immaterial to the final mask (filters only intersect), but
    the chain applies them as given for deterministic tracing.
    """

    def __init__(self, filters: Iterable[AssignmentFilter] = ()) -> None:
        self._filters: tuple[AssignmentFilter, ...] = tuple(filters)

    @property
    def filters(self) -> Sequence[AssignmentFilter]:
        """The composed filters, in application order."""
        return self._filters

    @property
    def label(self) -> str:
        """Variant label ("none", "en", "rob" or "en+rob")."""
        if not self._filters:
            return "none"
        return "+".join(f.label for f in self._filters)

    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        """Run every filter over the candidate set."""
        for f in self._filters:
            f.apply(cands, ctx)

    def __len__(self) -> int:
        return len(self._filters)

    def __repr__(self) -> str:
        return f"FilterChain({self.label!r})"


def _variant_parts(variant: str) -> tuple[str, ...]:
    """Split a variant label into lower-cased, order-preserved filter names."""
    key = variant.strip().lower()
    if key == "none":
        return ()
    parts = tuple(part.strip() for part in key.split("+"))
    if not all(parts) or len(set(parts)) != len(parts):
        raise KeyError(f"bad filter variant {variant!r}")
    return parts


def canonical_variant(variant: str) -> str:
    """Normalize a variant label against the filter registry.

    ``"EN+ROB"`` -> ``"en+rob"``; order is preserved (``"rob+en"`` stays
    ``"rob+en"`` — chains intersect, so order only affects the label).
    Unknown parts raise :class:`~repro.registry.UnknownPluginError` with
    a did-you-mean suggestion.
    """
    parts = _variant_parts(variant)
    if not parts:
        return "none"
    return "+".join(FILTER_PLUGINS.canonical(part) for part in parts)


def build_filter_chain(variant: str, config: FilterConfig | None = None) -> FilterChain:
    """Build the chain for a variant label from registered filter plugins.

    Accepts "none" or any "+"-joined combination of registered filter
    names ("en", "rob", "en+rob", also "rob+en"), case-insensitive.
    """
    cfg = config if config is not None else FilterConfig()
    try:
        parts = _variant_parts(variant)
        return FilterChain(FILTER_PLUGINS.create(part, cfg) for part in parts)
    except UnknownPluginError as exc:
        raise UnknownPluginError(
            "filter", f"{exc.name} (in variant {variant!r})", FILTER_PLUGINS.names()
        ) from None


def make_filter_chain(variant: str, config: FilterConfig | None = None) -> FilterChain:
    """Deprecated pre-registry constructor; use :func:`build_filter_chain`.

    Kept (one release) for scripts written against the hand-wired
    constructor; the registry path builds the identical chain, so
    results are bitwise unchanged.
    """
    warnings.warn(
        "repro.filters.chain.make_filter_chain is deprecated; use "
        "build_filter_chain (or repro.registry.FILTER_PLUGINS)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_filter_chain(variant, config)
