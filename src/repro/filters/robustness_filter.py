"""The robustness filter (paper Section V-F).

Eliminates potential assignments whose probability of completing the task
by its deadline — ``rho(i, j, k, pi, t_l, z)``, the marginal contribution
to the expected number of on-time completions — falls below a threshold
``rho_thresh`` (0.5 in the paper, "empirically determined ... without
restricting a heuristic to only high-performance P-state assignments").
"""

from __future__ import annotations

from repro.config import FilterConfig
from repro.filters.base import AssignmentFilter
from repro.heuristics.base import CandidateSet, MappingContext

__all__ = ["RobustnessFilter"]


class RobustnessFilter(AssignmentFilter):
    """Reject assignments with ``rho < rho_thresh``."""

    label = "rob"

    def __init__(self, config: FilterConfig | None = None) -> None:
        self._config = config if config is not None else FilterConfig()

    @property
    def threshold(self) -> float:
        """The probability threshold in force."""
        return self._config.rho_thresh

    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        """Clear candidates whose on-time probability is below threshold."""
        cands.mask &= cands.prob_on_time >= self._config.rho_thresh
