"""Generic assignment filters (paper Section V-F).

Filters restrict the set of feasible assignments *before* the heuristic
chooses, adding energy-awareness and/or robustness-awareness to any
heuristic.  A filter may eliminate every assignment, in which case the
task is discarded (it counts as a missed deadline).

* :class:`~repro.filters.energy_filter.EnergyFilter` removes assignments
  whose expected energy consumption exceeds a "fair share" of the
  remaining budget, with a queue-depth-adaptive multiplier.
* :class:`~repro.filters.robustness_filter.RobustnessFilter` removes
  assignments whose probability of completing the task on time is below a
  threshold (0.5 in the paper).
* :class:`~repro.filters.chain.FilterChain` composes filters and parses
  the paper's variant labels ("none", "en", "rob", "en+rob").
"""

from repro.filters.base import AssignmentFilter
from repro.filters.energy_filter import EnergyFilter
from repro.filters.robustness_filter import RobustnessFilter
from repro.filters.chain import (
    FilterChain,
    VARIANTS,
    build_filter_chain,
    canonical_variant,
    make_filter_chain,
)

__all__ = [
    "AssignmentFilter",
    "EnergyFilter",
    "RobustnessFilter",
    "FilterChain",
    "VARIANTS",
    "build_filter_chain",
    "canonical_variant",
    "make_filter_chain",
]
