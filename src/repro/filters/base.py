"""Filter interface."""

from __future__ import annotations

import abc

from repro.heuristics.base import CandidateSet, MappingContext

__all__ = ["AssignmentFilter"]


class AssignmentFilter(abc.ABC):
    """Restricts a :class:`~repro.heuristics.base.CandidateSet` in place.

    Filters clear entries of ``cands.mask`` and never set them; chaining
    filters therefore intersects their feasible sets regardless of order.
    """

    #: Short label used in variant names ("en", "rob").
    label: str = "?"

    @abc.abstractmethod
    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        """Clear mask entries for assignments this filter rejects."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
