"""The energy filter (paper Section V-F).

Eliminates potential assignments that would consume more than a "fair
share" of the remaining energy budget::

    zeta_fair(t_l) = zeta_mul * zeta(t_l) / T_left(t_l)

where ``zeta(t_l)`` is the heuristic's running estimate of remaining
energy (budget minus the EEC of every assignment made so far) and
``T_left(t_l)`` the number of tasks that have not yet arrived.  To cope
with arrival bursts the multiplier adapts to the cluster's average queue
depth: tight (0.8) when idle — bank energy for the next burst — and
loose (1.2) when congested — spend to clear the backlog (thresholds in
:class:`~repro.config.FilterConfig`).
"""

from __future__ import annotations

from repro.config import FilterConfig
from repro.filters.base import AssignmentFilter
from repro.heuristics.base import CandidateSet, MappingContext

__all__ = ["EnergyFilter"]


class EnergyFilter(AssignmentFilter):
    """Reject assignments with ``EEC > zeta_fair(t_l)``."""

    label = "en"

    def __init__(self, config: FilterConfig | None = None) -> None:
        self._config = config if config is not None else FilterConfig()

    def fair_share(self, ctx: MappingContext) -> float:
        """The threshold ``zeta_fair(t_l)`` for the current mapping event."""
        remaining = ctx.energy_estimate
        if remaining <= 0.0:
            return 0.0
        mul = self._config.zeta_mul(ctx.avg_queue_depth)
        # T_left counts tasks not yet arrived; for the final task it is 0,
        # where the fair share degenerates to "whatever remains".
        divisor = max(ctx.tasks_left, 1)
        return mul * remaining / divisor

    def apply(self, cands: CandidateSet, ctx: MappingContext) -> None:
        """Clear candidates whose EEC exceeds the fair share."""
        cands.mask &= cands.eec <= self.fair_share(ctx)
