"""Heterogeneous-cluster substrate (paper Section III-A).

A cluster is a static description of ``N`` compute nodes; node ``i`` has
``n(i)`` multicore processors of ``c(i)`` homogeneous cores each, a
five-entry ACPI P-state profile (per-state execution-time multiplier and
power draw, generated per Section VI), and a power-supply efficiency
``epsilon(i)``.

Runtime state (queues, running tasks) lives in :mod:`repro.sim`; energy
bookkeeping (the per-core transition ledger of Eq. 1/2) lives in
:mod:`repro.cluster.energy` because it is a property of cores, not of the
scheduling policy.
"""

from repro.cluster.pstate import PStateProfile
from repro.cluster.power import cmos_power, interpolate_voltages
from repro.cluster.core import CoreAddress
from repro.cluster.processor import ProcessorSpec
from repro.cluster.node import NodeSpec
from repro.cluster.cluster import ClusterSpec
from repro.cluster.energy import EnergyLedger, TransitionRecord, IDLE_PSTATE
from repro.cluster.generator import generate_cluster

__all__ = [
    "PStateProfile",
    "cmos_power",
    "interpolate_voltages",
    "CoreAddress",
    "ProcessorSpec",
    "NodeSpec",
    "ClusterSpec",
    "EnergyLedger",
    "TransitionRecord",
    "IDLE_PSTATE",
    "generate_cluster",
]
