"""Per-node ACPI P-state profiles.

A profile holds, for each P-state ``pi`` (0 = fastest / hungriest, last =
slowest / leanest, following ACPI convention):

* ``speed[pi]``: relative operating frequency, with ``speed[0] == 1``;
* ``exec_multiplier[pi] == 1 / speed[pi]``: factor applied to a task's
  base (P0) execution time when run in state ``pi``;
* ``power[pi]``: average core power draw in watts (the paper's
  ``mu(i, pi)``).

All cores and multicore processors within a node are identical (paper
Section III-A), so the profile is a node-level attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PStateProfile"]


@dataclass(frozen=True)
class PStateProfile:
    """Immutable per-node DVFS profile.

    Parameters
    ----------
    speed:
        Strictly decreasing relative frequencies, ``speed[0] == 1.0``.
    power:
        Strictly decreasing per-core power draws (watts).
    """

    speed: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        speed = np.asarray(self.speed, dtype=np.float64)
        power = np.asarray(self.power, dtype=np.float64)
        speed.setflags(write=False)
        power.setflags(write=False)
        object.__setattr__(self, "speed", speed)
        object.__setattr__(self, "power", power)
        if speed.ndim != 1 or speed.size < 2:
            raise ValueError("speed must be a 1-D array with >= 2 entries")
        if power.shape != speed.shape:
            raise ValueError("power and speed must have the same shape")
        if abs(speed[0] - 1.0) > 1e-9:
            raise ValueError("speed[0] (P0) must be 1.0")
        if np.any(np.diff(speed) >= 0.0):
            raise ValueError("speed must be strictly decreasing across P-states")
        if np.any(speed <= 0.0):
            raise ValueError("speeds must be positive")
        if np.any(np.diff(power) >= 0.0):
            raise ValueError("power must be strictly decreasing across P-states")
        if np.any(power <= 0.0):
            raise ValueError("powers must be positive")

    @property
    def num_pstates(self) -> int:
        """Number of P-states in the profile."""
        return int(self.speed.size)

    @property
    def exec_multiplier(self) -> np.ndarray:
        """Execution-time multiplier per P-state (``1 / speed``)."""
        return 1.0 / self.speed

    @property
    def deepest(self) -> int:
        """Index of the lowest-power P-state (P4 with five states)."""
        return self.num_pstates - 1

    def mean_power(self) -> float:
        """Average power across P-states (a term of the paper's Eq. 8)."""
        return float(self.power.mean())

    def min_speed_ratio(self) -> float:
        """Minimum over maximum operating frequency (paper: kept >= 0.42)."""
        return float(self.speed[-1] / self.speed[0])
