"""Multicore-processor description.

Within a node all multicore processors are identical (paper Section
III-A), so the spec only records the core count; it exists as its own
level to mirror the paper's node -> multicore processor -> core hierarchy
(Figure 1) and to let extensions attach processor-level attributes (e.g.,
shared-cache models) without reshaping the topology API.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessorSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One multicore processor: ``num_cores`` homogeneous cores."""

    num_cores: int

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("a processor needs at least one core")
