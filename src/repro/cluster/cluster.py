"""Whole-cluster topology and flat-core indexing.

:class:`ClusterSpec` is the static description every other subsystem works
against.  It precomputes flat-core <-> hierarchical-address maps and the
per-flat-core node index / power / efficiency arrays that the vectorized
candidate-scoring hot path consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.core import CoreAddress
from repro.cluster.node import NodeSpec

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A heterogeneous cluster: an ordered tuple of node specs.

    Flat core ids enumerate cores node-major, then processor, then core,
    matching a depth-first walk of the paper's Figure 1 hierarchy.
    """

    nodes: tuple[NodeSpec, ...]
    _addresses: tuple[CoreAddress, ...] = field(init=False, repr=False, compare=False)
    _core_node: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        for expect, node in enumerate(self.nodes):
            if node.index != expect:
                raise ValueError(f"node indices must be dense: expected {expect}, got {node.index}")
        num_pstates = {n.pstates.num_pstates for n in self.nodes}
        if len(num_pstates) != 1:
            raise ValueError("all nodes must expose the same number of P-states")
        addresses: list[CoreAddress] = []
        for node in self.nodes:
            for j in range(node.num_processors):
                for k in range(node.cores_per_processor):
                    addresses.append(CoreAddress(node.index, j, k))
        core_node = np.array([a.node for a in addresses], dtype=np.int64)
        core_node.setflags(write=False)
        object.__setattr__(self, "_addresses", tuple(addresses))
        object.__setattr__(self, "_core_node", core_node)

    # ------------------------------------------------------------------
    # Sizes and indexing
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes (the paper's ``N``)."""
        return len(self.nodes)

    @property
    def num_cores(self) -> int:
        """Total cores across all nodes."""
        return len(self._addresses)

    @property
    def num_pstates(self) -> int:
        """P-states per core (identical across nodes by construction)."""
        return self.nodes[0].pstates.num_pstates

    @property
    def core_addresses(self) -> tuple[CoreAddress, ...]:
        """Hierarchical address of each flat core id, in order."""
        return self._addresses

    @property
    def core_node_index(self) -> np.ndarray:
        """Node index of each flat core id (read-only array)."""
        return self._core_node

    def address_of(self, core_id: int) -> CoreAddress:
        """Hierarchical address of a flat core id."""
        return self._addresses[core_id]

    def core_id_of(self, address: CoreAddress) -> int:
        """Flat core id of a hierarchical address."""
        node = self.nodes[address.node]
        if not (0 <= address.processor < node.num_processors):
            raise IndexError(f"processor {address.processor} out of range")
        if not (0 <= address.core < node.cores_per_processor):
            raise IndexError(f"core {address.core} out of range")
        base = sum(n.num_cores for n in self.nodes[: address.node])
        return base + address.processor * node.cores_per_processor + address.core

    def node_of_core(self, core_id: int) -> NodeSpec:
        """Node spec owning a flat core id."""
        return self.nodes[int(self._core_node[core_id])]

    # ------------------------------------------------------------------
    # Derived arrays for the vectorized hot path
    # ------------------------------------------------------------------

    def power_table(self) -> np.ndarray:
        """``(num_nodes, num_pstates)`` array of ``mu(i, pi)`` in watts."""
        return np.stack([n.pstates.power for n in self.nodes])

    def exec_multiplier_table(self) -> np.ndarray:
        """``(num_nodes, num_pstates)`` execution-time multipliers."""
        return np.stack([n.pstates.exec_multiplier for n in self.nodes])

    def efficiency_vector(self) -> np.ndarray:
        """``(num_nodes,)`` power-supply efficiencies ``epsilon(i)``."""
        return np.array([n.efficiency for n in self.nodes])

    def mean_power(self) -> float:
        """The paper's ``p_avg`` (Eq. 8): mean of ``mu`` over nodes and P-states."""
        return float(self.power_table().mean())

    def describe(self) -> str:
        """Human-readable topology summary."""
        lines = [f"ClusterSpec: {self.num_nodes} nodes, {self.num_cores} cores"]
        for n in self.nodes:
            lines.append(
                f"  node {n.index}: {n.num_processors} proc x {n.cores_per_processor} cores, "
                f"eff={n.efficiency:.3f}, P0 power={n.pstates.power[0]:.1f} W, "
                f"P{n.pstates.deepest} power={n.pstates.power[-1]:.1f} W, "
                f"min speed ratio={n.pstates.min_speed_ratio():.3f}"
            )
        return "\n".join(lines)
