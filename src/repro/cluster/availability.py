"""Live availability state of a cluster under in-simulation faults.

:class:`AvailabilityState` tracks which cores can accept work and which
P-states they may run at while a :class:`~repro.faults.FaultSchedule`
plays out.  Overlapping episodes are handled by *counting*: a core is
down while any outage covering it is active, and a slowdown's P-state
floor is the maximum over its active caps — so fail/recover edges may
interleave in any order without corrupting state.

The class maintains a flat ``(num_cores * num_pstates,)`` boolean mask
in candidate order (core-major, then P-state — the same layout as
:class:`~repro.heuristics.base.CandidateSet`), so the engine degrades
the mapper's view with a single vectorized AND per arrival.
"""

from __future__ import annotations

import numpy as np

from repro.faults import FaultTransition

__all__ = ["AvailabilityState"]


class AvailabilityState:
    """Mutable per-core availability and P-state caps during one run."""

    __slots__ = ("num_cores", "num_pstates", "_down", "_floors", "_mask")

    def __init__(self, num_cores: int, num_pstates: int) -> None:
        if num_cores < 1 or num_pstates < 1:
            raise ValueError("cluster must have at least one core and one P-state")
        self.num_cores = num_cores
        self.num_pstates = num_pstates
        self._down = [0] * num_cores  # active outages covering each core
        self._floors: list[list[int]] = [[] for _ in range(num_cores)]  # active caps
        self._mask = np.ones(num_cores * num_pstates, dtype=bool)

    @property
    def mask(self) -> np.ndarray:
        """Feasibility of every (core, P-state) candidate; do not mutate."""
        return self._mask

    def is_up(self, core_id: int) -> bool:
        """Whether the core can currently accept or execute work."""
        return self._down[core_id] == 0

    @property
    def cores_up(self) -> int:
        """How many cores are currently serving."""
        return sum(1 for d in self._down if d == 0)

    def apply(self, transition: FaultTransition) -> None:
        """Fold one fail/recover edge into the state and refresh the mask."""
        sign = 1 if transition.action == "fail" else -1
        floor = transition.event.pstate_floor
        outage = transition.is_outage
        for core_id in transition.core_ids:
            if outage:
                self._down[core_id] += sign
                if self._down[core_id] < 0:
                    raise RuntimeError(f"unbalanced recovery for core {core_id}")
            elif sign > 0:
                self._floors[core_id].append(floor)
            else:
                self._floors[core_id].remove(floor)
            self._refresh(core_id)

    def _refresh(self, core_id: int) -> None:
        P = self.num_pstates
        lo = core_id * P
        if self._down[core_id] > 0:
            self._mask[lo : lo + P] = False
            return
        floors = self._floors[core_id]
        floor = max(floors) if floors else 0
        # P-state index 0 is the fastest: a floor forbids indices below it.
        self._mask[lo : lo + floor] = False
        self._mask[lo + floor : lo + P] = True
