"""CMOS dynamic-power model (paper Eq. 7) and voltage interpolation.

The paper computes per-P-state power as ``P = A * C_L * V^2 * f`` where
``A`` is switching activity, ``C_L`` capacitive load, ``V`` supply
voltage, and ``f`` operating frequency.  ``A * C_L`` is folded into one
constant calibrated so that the highest P-state hits its sampled power.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cmos_power", "interpolate_voltages", "activity_capacitance_constant"]


def cmos_power(act_cap: float, voltage: float | np.ndarray, frequency: float | np.ndarray):
    """Capacitive power dissipation ``A*C_L * V**2 * f`` (Eq. 7)."""
    return act_cap * np.square(voltage) * frequency


def activity_capacitance_constant(p0_power: float, v0: float, f0: float) -> float:
    """Solve ``A*C_L`` from the sampled highest-P-state operating point."""
    if p0_power <= 0.0 or v0 <= 0.0 or f0 <= 0.0:
        raise ValueError("operating point must be positive")
    return p0_power / (v0 * v0 * f0)


def interpolate_voltages(v_high: float, v_low: float, num_pstates: int) -> np.ndarray:
    """Per-P-state voltages, linear from ``v_high`` (P0) to ``v_low`` (P_last).

    The paper samples the high and low P-state voltages and "calculate[s]
    the voltage numbers for the remaining P-states via linear
    interpolation".
    """
    if num_pstates < 2:
        raise ValueError("need at least two P-states")
    if v_low >= v_high:
        raise ValueError("low P-state voltage must be below the high P-state voltage")
    return np.linspace(v_high, v_low, num_pstates)
