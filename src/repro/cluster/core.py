"""Core addressing.

The paper addresses a core as the triple ``(i, j, k)``: core ``k`` of
multicore processor ``j`` in node ``i``.  The simulator additionally keeps
a *flat* core index (dense 0..C-1 over the whole cluster) because hot-path
candidate scoring is vectorized over flat arrays; :class:`CoreAddress`
provides the human-facing hierarchical view and the mapping between the
two lives in :class:`~repro.cluster.cluster.ClusterSpec`.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["CoreAddress"]


class CoreAddress(NamedTuple):
    """Hierarchical core coordinates ``(node, processor, core)``.

    All three indices are zero-based (the paper numbers from one; tests
    that cross-check against the paper's formulas account for this).
    """

    node: int
    processor: int
    core: int

    def __str__(self) -> str:
        return f"n{self.node}.p{self.processor}.c{self.core}"
