"""Per-core P-state transition ledger and energy accounting (Eqs. 1, 2).

The paper computes each core's energy from its list of P-state
transitions: every transition marks the start of an interval during which
the core draws the power of the new state; energy is the power-weighted
sum of interval lengths (Eq. 1).  Node energy is core energy divided by
the node's power-supply efficiency, summed over the cluster (Eq. 2).

The ledger also answers the question "when did cumulative consumption
cross the budget?" — needed because tasks completing after the energy
constraint is exhausted do not count (DESIGN.md §4.4).

Idle intervals are represented by the sentinel state :data:`IDLE_PSTATE`;
their power depends on the configured :class:`~repro.config.IdlePowerMode`
(zero under ``EXCLUDED``, the node's deepest-state power under
``P4_FLOOR``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.config import IdlePowerMode

__all__ = ["IDLE_PSTATE", "TransitionRecord", "EnergyLedger", "StreamingEnergyMeter"]

#: Sentinel "P-state" meaning the core is idle.
IDLE_PSTATE = -1


@dataclass(frozen=True)
class TransitionRecord:
    """One entry of the paper's transition list ``nu(i, j, k)``."""

    time: float
    pstate: int


class EnergyLedger:
    """Records every core's P-state transitions and integrates energy.

    Cores start idle at time 0 (one initial transition, as the paper
    assumes "each core makes at least two P-state transitions, one at the
    start of workload execution and one at the end").  Call
    :meth:`record` on each state change and :meth:`close` once at the end
    of the simulation; query methods may be used before closing, in which
    case intervals are integrated up to the latest recorded time.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        idle_power_mode: IdlePowerMode = IdlePowerMode.P4_FLOOR,
    ) -> None:
        self._cluster = cluster
        self._mode = idle_power_mode
        self._transitions: list[list[TransitionRecord]] = [
            [TransitionRecord(0.0, IDLE_PSTATE)] for _ in range(cluster.num_cores)
        ]
        self._closed_at: float | None = None
        # Per-core consumed-power lookup: row = flat core id, col = pstate
        # (last column aliases IDLE via python -1 indexing convenience is
        # avoided: idle handled explicitly).
        power = cluster.power_table()
        eff = cluster.efficiency_vector()
        node_idx = cluster.core_node_index
        self._supplied_power = power[node_idx]  # (num_cores, num_pstates), watts
        idle_per_node = (
            np.zeros(cluster.num_nodes)
            if idle_power_mode is IdlePowerMode.EXCLUDED
            else power[:, -1]
        )
        self._idle_supplied = idle_per_node[node_idx]  # (num_cores,)
        self._core_eff = eff[node_idx]  # (num_cores,)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def idle_power_mode(self) -> IdlePowerMode:
        """Configured idle accounting mode."""
        return self._mode

    def record(self, core_id: int, time: float, pstate: int) -> None:
        """Append a P-state transition for a core.

        ``pstate`` may be :data:`IDLE_PSTATE`.  Times must be
        non-decreasing per core; a transition at the same instant as the
        previous one replaces it (zero-length intervals carry no energy
        and would only bloat the list).
        """
        if self._closed_at is not None:
            raise RuntimeError("ledger already closed")
        if pstate != IDLE_PSTATE and not (0 <= pstate < self._cluster.num_pstates):
            raise ValueError(f"invalid pstate {pstate}")
        trail = self._transitions[core_id]
        last = trail[-1]
        if time < last.time - 1e-9:
            raise ValueError(f"non-monotonic transition time on core {core_id}: {time} < {last.time}")
        if abs(time - last.time) <= 1e-12:
            trail[-1] = TransitionRecord(last.time, pstate)
            return
        if pstate == last.pstate:
            return
        trail.append(TransitionRecord(time, pstate))

    def close(self, end_time: float) -> None:
        """Record the final end-of-workload transition on every core."""
        if self._closed_at is not None:
            raise RuntimeError("ledger already closed")
        for core_id in range(self._cluster.num_cores):
            last = self._transitions[core_id][-1]
            if end_time < last.time - 1e-9:
                raise ValueError("end_time precedes a recorded transition")
            self._transitions[core_id].append(TransitionRecord(max(end_time, last.time), IDLE_PSTATE))
        self._closed_at = end_time

    def transitions(self, core_id: int) -> tuple[TransitionRecord, ...]:
        """The transition list ``nu`` for a core (copy)."""
        return tuple(self._transitions[core_id])

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------

    def _segments(self, core_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(durations, supplied powers) of a core's closed intervals."""
        trail = self._transitions[core_id]
        if len(trail) < 2:
            return np.empty(0), np.empty(0)
        times = np.array([t.time for t in trail])
        states = np.array([t.pstate for t in trail][:-1], dtype=np.int64)
        durations = np.diff(times)
        idle = states == IDLE_PSTATE
        powers = np.where(
            idle,
            self._idle_supplied[core_id],
            self._supplied_power[core_id][np.where(idle, 0, states)],
        )
        return durations, powers

    def core_energy(self, core_id: int) -> float:
        """Eq. 1: supplied energy ``eta(i, j, k)`` of one core, in joules."""
        durations, powers = self._segments(core_id)
        return float(np.dot(durations, powers))

    def total_energy(self) -> float:
        """Eq. 2: consumed energy ``zeta`` of the whole cluster, in joules."""
        total = 0.0
        for core_id in range(self._cluster.num_cores):
            total += self.core_energy(core_id) / self._core_eff[core_id]
        return total

    def consumption_events(self) -> tuple[np.ndarray, np.ndarray]:
        """Merged, time-sorted ``(times, consumed-power deltas)`` across cores.

        The cluster's instantaneous consumed power is the running sum of
        the deltas; cumulative energy is its time integral.
        """
        times: list[float] = []
        deltas: list[float] = []
        for core_id in range(self._cluster.num_cores):
            trail = self._transitions[core_id]
            eff = self._core_eff[core_id]
            prev_power = 0.0
            for rec in trail:
                if rec.pstate == IDLE_PSTATE:
                    p = float(self._idle_supplied[core_id]) / eff
                else:
                    p = float(self._supplied_power[core_id][rec.pstate]) / eff
                if p != prev_power:
                    times.append(rec.time)
                    deltas.append(p - prev_power)
                    prev_power = p
            # If the ledger is not yet closed, the trailing interval stays
            # open-ended; exhaustion_time integrates its rate to +inf.
        t = np.array(times)
        d = np.array(deltas)
        order = np.argsort(t, kind="stable")
        return t[order], d[order]

    def exhaustion_time(self, budget: float) -> float:
        """First time cumulative consumed energy reaches ``budget``.

        Returns ``inf`` if the budget is never exhausted over the recorded
        horizon.  On a *closed* ledger the horizon ends at the close time
        (the workload is over; nothing after it draws budgeted energy);
        on an open ledger the trailing rate extrapolates forward.
        """
        if budget < 0.0:
            raise ValueError("budget must be non-negative")
        times, deltas = self.consumption_events()
        if times.size == 0:
            return float("inf")
        energy = 0.0
        rate = 0.0
        for idx in range(times.size):
            t = float(times[idx])
            if idx > 0:
                span = t - float(times[idx - 1])
                if rate > 0.0 and energy + rate * span >= budget:
                    return float(times[idx - 1]) + (budget - energy) / rate
                energy += rate * span
            rate += float(deltas[idx])
        if rate <= 0.0:
            return float("inf")
        if self._closed_at is not None:
            # Trailing interval ends at the close of the workload.
            crossing = float(times[-1]) + (budget - energy) / rate
            return crossing if crossing <= self._closed_at else float("inf")
        return float(times[-1]) + (budget - energy) / rate

    def cumulative_energy_at(self, t: float) -> float:
        """Consumed energy integrated from 0 to ``t``."""
        times, deltas = self.consumption_events()
        energy = 0.0
        rate = 0.0
        prev = 0.0
        for idx in range(times.size):
            ti = float(times[idx])
            if ti >= t:
                break
            energy += rate * (ti - prev)
            rate += float(deltas[idx])
            prev = ti
        else:
            idx = times.size
        energy += rate * (t - prev) if t > prev else 0.0
        return energy


class StreamingEnergyMeter:
    """Bounded-memory consumed-energy accounting for unbounded runs.

    The :class:`EnergyLedger` keeps every transition — O(tasks) memory
    and O(transitions) queries, fine for a batch trial, fatal for an
    always-on service.  This meter holds only O(num_cores) state and
    integrates incrementally: each :meth:`record` folds the elapsed
    interval of the affected core into a per-core accumulator in O(1).

    It answers :meth:`consumed_at` exactly for any time at or after each
    core's *second-to-last* transition (the previous consumed-power rate
    is retained, so the last interval can be unwound).  That covers the
    service loop's windowed accounting: a window boundary is crossed by
    the first event at or past it, when every earlier transition lies at
    or before that event's time.

    The :meth:`record`/:meth:`close` surface mirrors the ledger, so the
    engine drives either interchangeably; scoring queries
    (``exhaustion_time``) are deliberately absent — a rolling budget
    replaces the batch cutoff in service mode.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        idle_power_mode: IdlePowerMode = IdlePowerMode.P4_FLOOR,
    ) -> None:
        self._num_pstates = cluster.num_pstates
        self._mode = idle_power_mode
        power = cluster.power_table()
        eff = cluster.efficiency_vector()
        node_idx = cluster.core_node_index
        # Consumed (post-efficiency) power per core and P-state, watts.
        self._consumed_power = power[node_idx] / eff[node_idx][:, None]
        idle_per_node = (
            np.zeros(cluster.num_nodes)
            if idle_power_mode is IdlePowerMode.EXCLUDED
            else power[:, -1]
        )
        self._idle_consumed = idle_per_node[node_idx] / eff[node_idx]
        n = cluster.num_cores
        # Cores start idle at time 0, as in the ledger.
        self._last_t = [0.0] * n
        self._rate = [float(p) for p in self._idle_consumed]
        self._prev_rate = list(self._rate)
        self._acc = [0.0] * n
        self._closed_at: float | None = None
        self._total: float | None = None

    @property
    def idle_power_mode(self) -> IdlePowerMode:
        """Configured idle accounting mode (mirrors the ledger)."""
        return self._mode

    def record(self, core_id: int, time: float, pstate: int) -> None:
        """Fold one P-state transition in; O(1)."""
        if self._closed_at is not None:
            raise RuntimeError("meter already closed")
        if pstate == IDLE_PSTATE:
            power = float(self._idle_consumed[core_id])
        elif 0 <= pstate < self._num_pstates:
            power = float(self._consumed_power[core_id, pstate])
        else:
            raise ValueError(f"invalid pstate {pstate}")
        last_t = self._last_t[core_id]
        if time < last_t - 1e-9:
            raise ValueError(
                f"non-monotonic transition time on core {core_id}: {time} < {last_t}"
            )
        if abs(time - last_t) <= 1e-12:
            # Zero-length interval: only the forward rate changes.
            self._rate[core_id] = power
            return
        rate = self._rate[core_id]
        if power == rate:
            return
        self._acc[core_id] += rate * (time - last_t)
        self._prev_rate[core_id] = rate
        self._last_t[core_id] = time
        self._rate[core_id] = power

    def close(self, end_time: float) -> None:
        """Freeze the meter; total energy integrates up to ``end_time``."""
        if self._closed_at is not None:
            raise RuntimeError("meter already closed")
        self._total = self.consumed_at(end_time)
        self._closed_at = end_time

    def consumed_at(self, t: float) -> float:
        """Cluster-consumed energy integrated from 0 to ``t``, in joules.

        Exact whenever ``t`` is at or after each core's second-to-last
        recorded transition.
        """
        total = 0.0
        for c in range(len(self._acc)):
            last_t = self._last_t[c]
            if t >= last_t:
                total += self._acc[c] + self._rate[c] * (t - last_t)
            else:
                total += self._acc[c] - self._prev_rate[c] * (last_t - t)
        return total

    def total_energy(self) -> float:
        """Consumed energy through the close time (requires :meth:`close`)."""
        if self._total is None:
            raise RuntimeError("meter not closed yet")
        return self._total
