"""Compute-node description (paper Section III-A)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One heterogeneous compute node.

    Attributes
    ----------
    index:
        Zero-based node index (the paper's ``i``, shifted by one).
    processors:
        The node's multicore processors; all identical within a node.
    pstates:
        DVFS profile shared by every core of the node.
    efficiency:
        Power-supply efficiency ``epsilon(i)`` in ``(0, 1]``; consumed
        wall power is supplied power divided by this factor (Eq. 2).
    """

    index: int
    processors: tuple[ProcessorSpec, ...]
    pstates: PStateProfile
    efficiency: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("node index must be non-negative")
        if not self.processors:
            raise ValueError("a node needs at least one processor")
        counts = {p.num_cores for p in self.processors}
        if len(counts) != 1:
            raise ValueError("all processors within a node must be identical")
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def num_processors(self) -> int:
        """The paper's ``n(i)``."""
        return len(self.processors)

    @property
    def cores_per_processor(self) -> int:
        """The paper's ``c(i)``."""
        return self.processors[0].num_cores

    @property
    def num_cores(self) -> int:
        """Total cores in the node: ``n(i) * c(i)``."""
        return self.num_processors * self.cores_per_processor
