"""Random cluster generation following paper Section VI.

Per node, independently:

* processor count and cores-per-processor uniform on {1..4};
* P-state speeds: each step down in P-state *improves* performance by a
  uniform 15-25% relative to the previous state (equivalently, each step
  up divides speed by U(1.15, 1.25)); profiles are resampled until the
  minimum operating frequency is at least 42% of the maximum;
* P0 power ~ U(125, 135) W; low/high P-state voltages ~ U(1.000, 1.150)
  and U(1.400, 1.550); intermediate voltages linear; per-state power from
  the CMOS formula (Eq. 7) with ``A * C_L`` calibrated at P0;
* power-supply efficiency ~ U(0.90, 0.98).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.cluster.node import NodeSpec
from repro.cluster.power import activity_capacitance_constant, cmos_power, interpolate_voltages
from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile
from repro.config import ClusterConfig

__all__ = ["generate_cluster", "generate_pstate_profile"]

#: Safety valve for the speed-ratio rejection loop; with the paper's
#: parameters the acceptance probability per draw is ~0.5+, so hitting
#: this limit indicates a mis-configuration.
_MAX_RESAMPLES = 10_000


def generate_pstate_profile(cfg: ClusterConfig, rng: np.random.Generator) -> PStateProfile:
    """Sample one node's P-state profile (speeds + CMOS powers)."""
    for _ in range(_MAX_RESAMPLES):
        steps = rng.uniform(cfg.perf_step_low, cfg.perf_step_high, size=cfg.num_pstates - 1)
        speed = np.concatenate([[1.0], 1.0 / np.cumprod(steps)])
        if speed[-1] / speed[0] >= cfg.min_speed_ratio:
            break
    else:  # pragma: no cover - astronomically unlikely with sane config
        raise RuntimeError("could not sample a profile meeting min_speed_ratio")

    p0_power = rng.uniform(cfg.p0_power_low, cfg.p0_power_high)
    v_low = rng.uniform(cfg.v_low_min, cfg.v_low_max)
    v_high = rng.uniform(cfg.v_high_min, cfg.v_high_max)
    voltages = interpolate_voltages(v_high, v_low, cfg.num_pstates)
    act_cap = activity_capacitance_constant(p0_power, voltages[0], speed[0])
    power = cmos_power(act_cap, voltages, speed)
    return PStateProfile(speed=speed, power=power)


def generate_cluster(cfg: ClusterConfig, rng: np.random.Generator) -> ClusterSpec:
    """Sample a full heterogeneous cluster per Section VI."""
    nodes: list[NodeSpec] = []
    for i in range(cfg.num_nodes):
        num_procs = int(rng.integers(cfg.min_processors, cfg.max_processors + 1))
        cores = int(rng.integers(cfg.min_cores, cfg.max_cores + 1))
        profile = generate_pstate_profile(cfg, rng)
        efficiency = float(rng.uniform(cfg.efficiency_min, cfg.efficiency_max))
        nodes.append(
            NodeSpec(
                index=i,
                processors=tuple(ProcessorSpec(cores) for _ in range(num_procs)),
                pstates=profile,
                efficiency=efficiency,
            )
        )
    return ClusterSpec(tuple(nodes))
