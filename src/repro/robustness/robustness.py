"""Robustness aggregation (paper Eqs. 3 and 4).

The robustness of an allocation at time-step ``t_l`` is the expected
number of tasks completing by their individual deadlines, predicted at
``t_l``.  Because tasks are independent and cores process independently,
the system value (Eq. 4) is the sum over cores of per-core values
(Eq. 3), each of which sums each queued/running task's probability of
finishing on time.

These functions serve validation, metrics and the robustness-aware
extensions; the mapping hot path only ever needs the marginal
``rho(i, j, k, pi, t_l, z)`` of the task being placed, which
:mod:`repro.robustness.completion` provides directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.robustness.completion import running_completion_pmf
from repro.stoch.ops import convolve
from repro.stoch.pmf import PMF

__all__ = ["QueueEntry", "core_completion_pmfs", "core_robustness", "system_robustness"]


@dataclass(frozen=True)
class QueueEntry:
    """One task on a core, as the robustness model sees it.

    ``start_time`` is ``None`` for queued (not yet executing) tasks and
    the actual start time for the running task (which must be first).
    """

    exec_pmf: PMF
    deadline: float
    start_time: float | None = None


def core_completion_pmfs(entries: Sequence[QueueEntry], t_now: float) -> list[PMF]:
    """Completion-time pmf of every task on one core, in queue order.

    Implements the chained construction at the end of Section IV-B: the
    running task's distribution is shifted/truncated/renormalized; each
    subsequent task's completion pmf is the previous one convolved with
    its own execution-time pmf.
    """
    if not entries:
        return []
    first = entries[0]
    if first.start_time is None:
        raise ValueError("the first entry must be the running task (needs start_time)")
    if any(e.start_time is not None for e in entries[1:]):
        raise ValueError("only the first entry may be running")
    completions: list[PMF] = [running_completion_pmf(first.exec_pmf, first.start_time, t_now)]
    for entry in entries[1:]:
        completions.append(convolve(completions[-1], entry.exec_pmf))
    return completions


def core_robustness(entries: Sequence[QueueEntry], t_now: float) -> float:
    """Eq. 3: expected on-time completions among one core's tasks."""
    completions = core_completion_pmfs(entries, t_now)
    return sum(
        pmf.prob_at_most(entry.deadline) for pmf, entry in zip(completions, entries)
    )


def system_robustness(per_core_entries: Sequence[Sequence[QueueEntry]], t_now: float) -> float:
    """Eq. 4: system robustness ``rho(t_l)``, summed over all cores."""
    return sum(core_robustness(entries, t_now) for entries in per_core_entries if entries)
