"""Robustness model (paper Section IV).

An allocation is *robust* if it completes all tasks by their individual
deadlines; it is robust *against* uncertainty in task execution times; and
its robustness is *quantified* as the expected number of tasks completing
on time (the three questions of [AlM08]).

:mod:`repro.robustness.completion` builds the stochastic completion-time
distributions of Section IV-B (shift / truncate / renormalize / convolve),
and :mod:`repro.robustness.robustness` aggregates per-task on-time
probabilities into the core-level and system-level robustness values of
Eqs. 3 and 4.
"""

from repro.robustness.completion import (
    completion_pmf,
    prob_on_time,
    prob_on_time_all_pstates,
    ready_pmf,
    running_completion_pmf,
)
from repro.robustness.robustness import (
    QueueEntry,
    core_completion_pmfs,
    core_robustness,
    system_robustness,
)

__all__ = [
    "completion_pmf",
    "prob_on_time",
    "prob_on_time_all_pstates",
    "ready_pmf",
    "running_completion_pmf",
    "QueueEntry",
    "core_completion_pmfs",
    "core_robustness",
    "system_robustness",
]
