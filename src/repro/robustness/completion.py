"""Stochastic completion-time machinery (paper Section IV-B).

Predicting the completion time of a task ``z`` placed on core ``k`` at
time-step ``t_l`` combines three distributions:

1. the *running* task's completion time — its execution-time pmf shifted
   by its start time, with past impulses removed and the remainder
   renormalized;
2. the execution-time pmfs of tasks already queued on the core, convolved
   in order;
3. the execution-time pmf of ``z`` itself in its candidate P-state.

(1) ⊛ (2) is the core's *ready-time* distribution; its convolution with
(3) is the completion-time distribution of ``z``.  The scheduler's hot
path never materializes that final convolution: the probability of an
on-time completion is a single dot product against the ready-time CDF
(:func:`prob_on_time`), and the expected completion time is a sum of
means (linearity of expectation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stoch.ops import convolve, convolve_many, prob_sum_at_most, shift, truncate_below
from repro.stoch.pmf import PMF

__all__ = [
    "running_completion_pmf",
    "ready_pmf",
    "completion_pmf",
    "prob_on_time",
    "prob_on_time_all_pstates",
]


def running_completion_pmf(exec_pmf: PMF, start_time: float, t_now: float) -> PMF:
    """Completion-time pmf of the currently-executing task, seen at ``t_now``.

    Shift the execution-time distribution by the start time, delete
    impulses in the past, renormalize (Section IV-B).  If the task is
    overdue relative to its own distribution the prediction degenerates to
    "completes now".
    """
    if t_now < start_time:
        raise ValueError("t_now precedes the task's start time")
    return truncate_below(shift(exec_pmf, start_time), t_now)


def ready_pmf(
    running: PMF | None,
    queued_exec_pmfs: Sequence[PMF],
    t_now: float,
    dt: float,
) -> PMF:
    """Distribution of the time the core becomes free for a new task.

    ``running`` is the (already truncated) completion pmf of the executing
    task, or ``None`` when the core is idle — in which case the core is
    ready immediately and the result is degenerate at ``t_now``.
    """
    if running is None:
        if queued_exec_pmfs:
            raise ValueError("an idle core cannot have queued tasks")
        return PMF.delta(t_now, dt)
    if not queued_exec_pmfs:
        return running
    return convolve(running, convolve_many(list(queued_exec_pmfs)))


def completion_pmf(ready: PMF, exec_pmf: PMF) -> PMF:
    """Completion-time pmf of a candidate task given the core's ready pmf."""
    return convolve(ready, exec_pmf)


def prob_on_time(ready: PMF, exec_pmf: PMF, deadline: float) -> float:
    """``rho(i, j, k, pi, t_l, z)``: probability ``z`` meets its deadline.

    Computed without convolution as ``sum_x P[X=x] * F_ready(d - x)``.
    """
    return prob_sum_at_most(ready, exec_pmf, deadline)


def prob_on_time_all_pstates(
    ready: PMF,
    times_matrix: np.ndarray,
    probs_matrix: np.ndarray,
    deadline: float,
) -> np.ndarray:
    """On-time probabilities for every P-state of one core in one pass.

    ``times_matrix``/``probs_matrix`` are the padded per-(type, node)
    matrices from :class:`~repro.workload.pmf_table.ExecutionTimeTable`
    (rows = P-states; padded entries have zero probability).  Row ``pi``
    of the result equals ``prob_on_time(ready, pmf[pi], deadline)``.
    """
    # Index of F_ready at (deadline - x) for each impulse time x:
    # k = floor((deadline - x - ready.start) / dt); k < 0 contributes 0.
    ks = np.floor((deadline - times_matrix - ready.start) / ready.dt + 1e-9).astype(np.int64)
    # minimum+maximum instead of np.clip: exact on integers and cheaper
    # to dispatch, which matters on this per-arrival-per-core path.
    np.minimum(ks, ready.probs.size - 1, out=ks)
    np.maximum(ks, -1, out=ks)
    cdf = ready.cdf
    fr = np.where(ks >= 0, cdf[np.maximum(ks, 0)], 0.0)
    return np.einsum("pl,pl->p", probs_matrix, fr)
