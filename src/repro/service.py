"""repro.service — continuous-service mode: the engine as an always-on system.

The batch pipeline answers "how did this 1000-task burst go?"; the
service layer answers "how is the system doing *right now*?".  It drives
the engine from a lazy traffic stream (:mod:`repro.workload.traffic`),
aggregates results into fixed-length time windows
(:class:`~repro.sim.metrics.WindowStats`) instead of per-task outcomes,
meters energy with O(num_cores) state
(:class:`~repro.cluster.energy.StreamingEnergyMeter`), and replaces the
trial-wide energy budget with a token-bucket allowance
(:class:`~repro.sim.state.RollingEnergyBudget`).  Memory stays bounded
no matter how long the run.

Two regimes:

* **Generative traffic** (``poisson``/``diurnal``/``mmpp``/``burst``) —
  an open-loop arrival stream derived from the system's equilibrium
  rate, bounded by ``horizon`` and/or ``task_limit``.  Per-task state is
  off; results are the window summaries.
* **Replay** (``traffic="replay"``) — the batch workload's own tasks
  stream through the service loop.  This reduces exactly to batch
  semantics: the returned :attr:`ServiceResult.trial_result` is bitwise
  identical to :func:`repro.sim.engine.run_trial` (the parity test pins
  it), with window summaries observed alongside.

Determinism: arrival times, task types and execution luck draw from
``rng.stream(seed, "service", ...)`` sub-streams, so a service run is as
reproducible as a batch trial.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Callable, Iterator

from repro import rng as rng_mod
from repro.cluster.energy import EnergyLedger, StreamingEnergyMeter
from repro.experiments.runner import VariantSpec, policy_for
from repro.faults import FaultPolicy, FaultSchedule, SheddingConfig
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.timeline import TimelineRecorder
from repro.perf.kernel_cache import PerfConfig
from repro.registry import TRAFFIC_PLUGINS, TrafficContext
from repro.sim.engine import Engine
from repro.sim.metrics import WindowAccumulator, WindowStats
from repro.sim.results import TrialResult
from repro.sim.state import RollingEnergyBudget
from repro.sim.system import TrialSystem
from repro.workload.task import Task
from repro.workload.traffic import TaskFactory, replay_tasks

__all__ = [
    "TRAFFIC_MODELS",
    "WINDOW_FORMAT",
    "WINDOW_SCHEMA_VERSION",
    "TRAILER_FORMAT",
    "ServiceConfig",
    "ServiceResult",
    "serve_system",
    "window_rows",
    "write_windows_jsonl",
]

#: The builtin ``ServiceConfig.traffic`` names.  Validation goes through
#: :data:`repro.registry.TRAFFIC_PLUGINS`, so models registered later
#: (third-party entry points, ``@register_traffic``) are accepted too.
TRAFFIC_MODELS = ("poisson", "diurnal", "mmpp", "burst", "replay")

#: Format tag of one JSONL window-summary row.
WINDOW_FORMAT = "repro.window/1"

#: Schema version stamped on every window row.  History: 1 — the PR 6
#: columns (arrivals/mapped/discarded/completed/on_time/late/energy/...);
#: 2 — adds the fault columns (shed/deferred/orphaned/remapped/lost)
#: and this field itself.  Scrapers should accept any version >= the
#: one they were written against.
WINDOW_SCHEMA_VERSION = 2

#: Format tag of the trailer row marking a truncated (interrupted) run.
TRAILER_FORMAT = "repro.window_trailer/1"

# Matches TaskOutcome.on_time: completion <= deadline + 1e-9 is on time.
_LATE_TOL = 1e-9


@dataclass(frozen=True)
class ServiceConfig:
    """How to run the engine as a continuous service.

    Rate-like values are expressed relative to the system's *equilibrium*
    arrival rate (one task per core per ``t_avg``), so one config scales
    across cluster sizes.  ``None`` fields resolve against the trial
    system at run time (see :func:`serve_system`).

    Attributes
    ----------
    traffic:
        One of :data:`TRAFFIC_MODELS`.  ``"replay"`` streams the batch
        workload's own tasks (finite, scored, batch-identical); the rest
        generate open-loop arrivals and need a ``horizon`` and/or
        ``task_limit`` bound.
    rate_mult:
        Mean arrival rate as a multiple of the equilibrium rate.
    swing:
        Peak-to-mean swing of ``diurnal``/``mmpp`` traffic in ``[0, 1)``:
        phases run at ``(1 ± swing)`` times the mean rate.
    phase_length:
        Mean length of one traffic phase (half a diurnal period, an MMPP
        dwell).  Default: five windows.
    window:
        Metric window length in simulated seconds.  Default: the span of
        50 equilibrium arrivals.
    horizon:
        Stop admitting arrivals after this simulated time (committed
        work still drains).
    task_limit:
        Stop admitting arrivals after this many tasks.
    budget_rate_mult:
        Energy-allowance accrual as a multiple of the offered load's
        average cost (``mean_rate * t_avg * p_avg`` joules/second) —
        1.0 grants exactly enough for the average task mix.
    budget_cap_windows:
        Allowance pool cap, in windows' worth of accrual.
    budget_cap:
        Absolute pool cap in joules; overrides ``budget_cap_windows``
        (useful to hold the budget fixed while varying the window).
    planning_tasks:
        The energy filter's fair-share divisor (batch mode uses "tasks
        left in the trial", meaningless for a stream).  Default: the
        expected arrivals in one window.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` of in-simulation
        outages/slowdowns injected into the run.
    fault_policy:
        :class:`~repro.faults.FaultPolicy` for work caught by outages
        (``None`` uses the engine default: running lost, orphans
        re-mapped).
    shedding:
        Optional :class:`~repro.faults.SheddingConfig` enabling the
        admission controller (overload protection).
    """

    traffic: str = "poisson"
    rate_mult: float = 1.0
    swing: float = 0.75
    phase_length: float | None = None
    window: float | None = None
    horizon: float | None = None
    task_limit: int | None = None
    budget_rate_mult: float = 1.0
    budget_cap_windows: float = 4.0
    budget_cap: float | None = None
    planning_tasks: int | None = None
    faults: FaultSchedule | None = None
    fault_policy: FaultPolicy | None = None
    shedding: SheddingConfig | None = None

    def __post_init__(self) -> None:
        if self.traffic not in TRAFFIC_PLUGINS:
            raise ValueError(
                f"unknown traffic model {self.traffic!r}; "
                f"known: {', '.join(TRAFFIC_PLUGINS.names())}"
            )
        # Canonicalize case so "Replay" and "replay" name the same regime.
        object.__setattr__(self, "traffic", TRAFFIC_PLUGINS.canonical(self.traffic))
        if not (self.rate_mult > 0.0):
            raise ValueError(f"rate_mult must be positive, got {self.rate_mult}")
        if not (0.0 <= self.swing < 1.0):
            raise ValueError(f"swing must be in [0, 1), got {self.swing}")
        for name in ("phase_length", "window", "horizon"):
            value = getattr(self, name)
            if value is not None and not (value > 0.0):
                raise ValueError(f"{name} must be positive, got {value}")
        if self.task_limit is not None and self.task_limit < 1:
            raise ValueError(f"task_limit must be positive, got {self.task_limit}")
        if not (self.budget_rate_mult > 0.0):
            raise ValueError("budget_rate_mult must be positive")
        if not (self.budget_cap_windows > 0.0):
            raise ValueError("budget_cap_windows must be positive")
        if self.budget_cap is not None and not (self.budget_cap > 0.0):
            raise ValueError("budget_cap must be positive")
        if self.planning_tasks is not None and self.planning_tasks < 1:
            raise ValueError("planning_tasks must be positive")
        if self.traffic != "replay" and self.horizon is None and self.task_limit is None:
            raise ValueError(
                "generative traffic is unbounded: set horizon and/or task_limit"
            )


@dataclass(frozen=True)
class ServiceResult:
    """What a service run produced.

    ``windows`` are contiguous :class:`WindowStats`; ``totals`` is their
    monoid fold (the whole run as one window).  ``trial_result`` is the
    batch-identical scored result in replay mode, ``None`` otherwise.
    ``truncated`` marks a run stopped early (graceful shutdown): the
    stream was cut but committed work drained and the final partial
    window was flushed.  ``fault_totals`` snapshots the engine's
    :class:`~repro.faults.FaultStats` when a fault schedule or shedding
    config was active, ``None`` otherwise.
    """

    label: str
    seed: int
    traffic: str
    window: float
    windows: tuple[WindowStats, ...]
    makespan: float
    total_energy: float = 0.0
    budget_drawn: float = 0.0
    budget_deficit: float = 0.0
    trial_result: TrialResult | None = None
    truncated: bool = False
    fault_totals: dict[str, int] | None = None
    budget_rate: float | None = None

    @property
    def totals(self) -> WindowStats:
        """All windows merged into one covering window."""
        return WindowStats.merge_all(self.windows)

    @property
    def arrivals(self) -> int:
        """Tasks admitted over the run."""
        return self.totals.arrivals

    def steady_state(
        self,
        metrics: tuple[str, ...] | None = None,
        *,
        level: float = 0.95,
    ) -> dict[str, Any]:
        """Steady-state summaries of this run's per-window metrics.

        MSER-5 warm-up truncation plus batch-means confidence intervals
        (see :mod:`repro.analysis.steady_state`) keyed by metric name.
        ``budget_rate`` recorded at run time enables the ``burn_rate``
        metric.
        """
        from repro.analysis.steady_state import DEFAULT_METRICS, analyze_windows

        rows = [stats.to_dict() for stats in self.windows]
        return analyze_windows(
            rows,
            metrics if metrics is not None else DEFAULT_METRICS,
            budget_rate=self.budget_rate,
            level=level,
        )


class _LuckSource:
    """Per-task execution luck for unbounded streams, by block.

    Batch trials pre-draw one uniform per task (``system.exec_luck``);
    a stream draws them in blocks keyed by ``task_id // block`` from
    dedicated rng sub-streams, so a task's luck depends only on its id —
    the pairing discipline survives unbounded runs.  Blocks regenerate
    deterministically on demand, so the small LRU of live blocks can
    evict freely and memory stays bounded.
    """

    BLOCK = 512
    _MAX_LIVE = 32

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._blocks: dict[int, Any] = {}

    def __call__(self, task_id: int) -> float:
        block, offset = divmod(task_id, self.BLOCK)
        values = self._blocks.get(block)
        if values is None:
            values = rng_mod.stream(self._seed, "service", "luck", block).random(
                self.BLOCK
            )
            if len(self._blocks) >= self._MAX_LIVE:
                self._blocks.pop(min(self._blocks))
            self._blocks[block] = values
        return float(values[offset])


class _ServiceHooks:
    """EngineHooks adapter feeding the window accumulator (and timeline).

    The telemetry hub rides along: every feed is guarded by the hub's
    class-level ``enabled`` flag, so with :data:`NULL_TELEMETRY` the
    disabled path computes no derived values (no latency subtraction,
    no ``avg_queue_depth`` read) — the zero-overhead discipline the
    parity tests pin.
    """

    __slots__ = ("acc", "timeline", "tele")

    def __init__(
        self,
        acc: WindowAccumulator,
        timeline: TimelineRecorder | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self.acc = acc
        self.timeline = timeline
        self.tele = telemetry

    def on_mapped(self, engine: Engine, task: Task, core_id: int, pstate: int) -> None:
        self.acc.on_mapped(engine.now, engine.in_system)
        if self.timeline is not None:
            self.timeline.on_mapped(engine)
        if self.tele.enabled:
            self.tele.on_mapped(engine.now, engine.avg_queue_depth)

    def on_discarded(self, engine: Engine, task: Task) -> None:
        self.acc.on_discarded(engine.now, engine.in_system)
        if self.timeline is not None:
            self.timeline.on_discarded(engine)
        if self.tele.enabled:
            self.tele.on_discarded(engine.now)

    def on_completion(
        self, engine: Engine, core_id: int, task: Task, t_now: float
    ) -> None:
        late = t_now > task.deadline + _LATE_TOL
        self.acc.on_completion(t_now, late, engine.in_system)
        if self.timeline is not None:
            self.timeline.on_completion(engine)
        if self.tele.enabled:
            self.tele.on_completion(t_now, t_now - task.arrival, not late)

    # -- fault-layer hooks (only called when faults/shedding are on) ----

    def on_shed(self, engine: Engine, task: Task, cause: str, deferred: bool) -> None:
        self.acc.on_shed(engine.now, engine.in_system, deferred=deferred)
        if self.tele.enabled:
            self.tele.on_shed(engine.now, deferred)

    def on_orphaned(
        self, engine: Engine, task: Task, core_id: int, disposition: str
    ) -> None:
        self.acc.on_orphaned(engine.now, engine.in_system, disposition=disposition)


def _bound(tasks: Iterator[Task], service: ServiceConfig) -> Iterator[Task]:
    """Apply the configured task-limit / horizon bounds to a task stream."""
    if service.task_limit is not None:
        tasks = itertools.islice(tasks, service.task_limit)
    if service.horizon is not None:
        horizon = service.horizon
        tasks = itertools.takewhile(lambda task: task.arrival <= horizon, tasks)
    return tasks


def _stoppable(
    tasks: Iterator[Task], stop: Callable[[], bool], state: dict[str, bool]
) -> Iterator[Task]:
    """Cut the stream when ``stop()`` turns true; note it in ``state``.

    The check runs between arrivals, so a triggered stop never abandons
    a task already admitted — committed work drains normally and the
    run merely stops taking new arrivals (graceful shutdown).
    """
    for task in tasks:
        if stop():
            state["truncated"] = True
            return
        yield task


def _arrival_stream(
    system: TrialSystem, service: ServiceConfig, mean_rate: float, phase_length: float
) -> Iterator[float]:
    """The resolved arrival-time stream of a generative traffic model.

    Construction is delegated to the traffic plugin registered under
    ``service.traffic`` (builtins in :mod:`repro.workload.traffic`);
    every plugin receives the same seeded context, so a model's stream
    is identical however the config was built.
    """
    ctx = TrafficContext(
        rng=rng_mod.stream(system.config.seed, "service", "arrivals"),
        mean_rate=mean_rate,
        phase_length=phase_length,
        swing=service.swing,
        rate_mult=service.rate_mult,
        workload=system.config.workload,
        rates=system.workload.rates,
    )
    return TRAFFIC_PLUGINS.create(service.traffic, ctx)


def serve_system(
    system: TrialSystem,
    spec: VariantSpec,
    service: ServiceConfig,
    *,
    timeline: TimelineRecorder | None = None,
    stop: Callable[[], bool] | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
    perf: PerfConfig | None = None,
) -> ServiceResult:
    """Run one spec as a continuous service against a built trial system.

    Replay mode scores a :class:`TrialResult` exactly as the batch path
    would; generative modes run unbounded-safe (windowed accounting,
    streaming energy meter, rolling budget, no per-task state).

    ``stop`` is the graceful-shutdown probe: checked between arrivals,
    and once it returns true the stream is cut, committed work drains,
    the trailing partial window is flushed, and the result is marked
    :attr:`ServiceResult.truncated` (the CLI wires SIGINT/SIGTERM to
    it).

    ``telemetry`` is a live :class:`~repro.obs.telemetry.Telemetry` hub
    fed per-event (latency, queue depth) and per-window (energy, SLO
    rules, steady state).  The default :data:`NULL_TELEMETRY` is inert
    and keeps results bitwise identical to a run without it.

    ``perf`` selects the hot-path performance knobs
    (:class:`~repro.perf.PerfConfig`, including the compiled kernel
    ``backend``); ``None`` means the engine default.
    """
    eq_rate = system.workload.rates.eq
    mean_rate = service.rate_mult * eq_rate
    window = service.window if service.window is not None else 50.0 / eq_rate
    phase_length = (
        service.phase_length if service.phase_length is not None else 5.0 * window
    )
    seed = system.config.seed
    heuristic, chain = policy_for(system, spec)
    stop_state = {"truncated": False}
    fault_layer = service.faults is not None or service.shedding is not None
    on_close = telemetry.on_window if telemetry.enabled else None

    if service.traffic == "replay":
        if telemetry.enabled:
            telemetry.configure(window=window)
        ledger = EnergyLedger(system.cluster, system.config.energy.idle_power_mode)
        acc = WindowAccumulator(
            window, energy_at=ledger.cumulative_energy_at, on_close=on_close
        )
        hooks = _ServiceHooks(acc, timeline, telemetry)
        engine = Engine(
            system,
            heuristic,
            chain,
            hooks=hooks,
            ledger=ledger,
            perf=perf,
            faults=service.faults,
            fault_policy=service.fault_policy,
            shedding=service.shedding,
        )
        trial: TrialResult | None = None
        if service.task_limit is None and service.horizon is None:
            if stop is None:
                # Full replay: score exactly as the batch path does.  The
                # parity test pins this result bitwise against run_trial.
                trial = engine.run()
                makespan = trial.makespan
            else:
                # Stop-guarded full replay: drain the stoppable stream,
                # and score only if the whole workload was offered — a
                # truncated replay saw a different stream than the batch
                # run and must not claim batch equivalence.
                tasks = _stoppable(
                    replay_tasks(system.workload.tasks), stop, stop_state
                )
                makespan = engine.serve(tasks)
                if not stop_state["truncated"]:
                    trial = engine.score(makespan)
        else:
            # Bounded replay drains unscored (scoring assumes the
            # whole workload was offered).
            tasks = _bound(replay_tasks(system.workload.tasks), service)
            if stop is not None:
                tasks = _stoppable(tasks, stop, stop_state)
            makespan = engine.serve(tasks)
        windows = tuple(acc.flush(makespan))
        return ServiceResult(
            label=spec.label,
            seed=seed,
            traffic=service.traffic,
            window=window,
            windows=windows,
            makespan=makespan,
            total_energy=ledger.total_energy(),
            trial_result=trial,
            truncated=stop_state["truncated"],
            fault_totals=engine.fault_stats.to_dict() if fault_layer else None,
        )

    meter = StreamingEnergyMeter(system.cluster, system.config.energy.idle_power_mode)
    accrual = service.budget_rate_mult * mean_rate * system.t_avg * system.p_avg
    cap = (
        service.budget_cap
        if service.budget_cap is not None
        else service.budget_cap_windows * window * accrual
    )
    budget = RollingEnergyBudget(rate=accrual, cap=cap)
    planning = (
        service.planning_tasks
        if service.planning_tasks is not None
        else max(1, round(mean_rate * window))
    )
    if telemetry.enabled:
        telemetry.configure(window=window, budget_rate=accrual)
    acc = WindowAccumulator(
        window, energy_at=meter.consumed_at, budget=budget, on_close=on_close
    )
    hooks = _ServiceHooks(acc, timeline, telemetry)
    engine = Engine(
        system,
        heuristic,
        chain,
        hooks=hooks,
        ledger=meter,
        rolling_budget=budget,
        tasks_left=planning,
        luck=_LuckSource(seed),
        track_outcomes=False,
        perf=perf,
        faults=service.faults,
        fault_policy=service.fault_policy,
        shedding=service.shedding,
    )
    factory = TaskFactory.for_table(system.config.workload, system.table)
    tasks = _bound(
        factory.stream(
            _arrival_stream(system, service, mean_rate, phase_length),
            rng_mod.stream(seed, "service", "types"),
        ),
        service,
    )
    if stop is not None:
        tasks = _stoppable(tasks, stop, stop_state)
    makespan = engine.serve(tasks)
    windows = tuple(acc.flush(makespan))
    return ServiceResult(
        label=spec.label,
        seed=seed,
        traffic=service.traffic,
        window=window,
        windows=windows,
        makespan=makespan,
        total_energy=meter.total_energy(),
        budget_drawn=budget.drawn,
        budget_deficit=budget.deficit,
        truncated=stop_state["truncated"],
        fault_totals=engine.fault_stats.to_dict() if fault_layer else None,
        budget_rate=accrual,
    )


def window_rows(result: ServiceResult) -> Iterator[dict[str, Any]]:
    """Self-describing JSONL rows, one per window."""
    for index, stats in enumerate(result.windows):
        row: dict[str, Any] = {
            "format": WINDOW_FORMAT,
            "schema_version": WINDOW_SCHEMA_VERSION,
            "index": index,
            "label": result.label,
            "seed": result.seed,
            "traffic": result.traffic,
        }
        row.update(stats.to_dict())
        yield row


def write_windows_jsonl(result: ServiceResult, out: str | Path | IO[str]) -> int:
    """Write one JSON line per window; returns the window-row count.

    A truncated run (graceful shutdown) appends one trailer row tagged
    :data:`TRAILER_FORMAT` after the windows, so downstream consumers
    can tell a cleanly-stopped partial run from a complete one.
    Untruncated output is byte-identical to the pre-trailer format.
    """
    rows = list(window_rows(result))
    if result.truncated:
        rows.append(
            {
                "format": TRAILER_FORMAT,
                "truncated": True,
                "windows": len(rows),
                "makespan": result.makespan,
            }
        )
    if hasattr(out, "write"):
        for row in rows:
            out.write(json.dumps(row, sort_keys=True) + "\n")
    else:
        with open(out, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows) - (1 if result.truncated else 0)
