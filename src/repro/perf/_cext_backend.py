"""The ``"cext"`` kernel backend: C kernels built on demand via ctypes.

The kernel library is ~100 lines of dependency-free C99 mirroring the
numpy hot-path expressions of :mod:`repro.stoch.ops` and
:class:`~repro.sim.mapper.CandidateBuilder` (see
:mod:`repro.perf.kernels` for the tolerance contract).  It is compiled
once per source revision with whatever C compiler the host provides
(``$CC``, then ``cc``/``gcc``/``clang``) into a shared library cached
by source digest, so repeat processes pay only a ``dlopen``.  Every
failure mode — no compiler, a failing build, a missing symbol — makes
the backend *unavailable* rather than raising: callers fall back to the
numpy reference path.

Index arithmetic in the C kernels follows the numpy operation order
exactly (e.g. ``floor(((deadline - t) - start) / dt + 1e-9)``), so
gather indices are bitwise identical to the reference.  Reductions use
Neumaier-compensated summation: numpy's pairwise/BLAS reductions often
land on the correctly rounded sum (e.g. an exactly-representable 0.5
that a policy threshold then compares against), and compensation makes
the compiled kernels at least that accurate instead of one ulp shy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.perf.kernels import KernelBackend

__all__ = ["load_cext_backend"]

# Mirrors repro.stoch.pmf._RTOL / _TRIM_EPS — the C source embeds the
# same literals, so the normalize/trim branches match the numpy path
# decision for decision.
_C_SOURCE = r"""
#include <math.h>
#include <string.h>
#include <stdint.h>

#define RTOL 1e-9
#define TRIM_EPS 1e-12

/* Neumaier-compensated accumulator.  numpy's reductions are pairwise
 * (or BLAS-blocked), which often lands on the correctly rounded sum —
 * notably the exactly-representable 0.5 that policy thresholds compare
 * against.  A plain sequential sum can sit one ulp off such values and
 * flip a downstream `>=` decision; compensation recovers the correctly
 * rounded result, so the compiled kernels are at least as accurate as
 * the reference instead of merely close. */
typedef struct { double s, c; } ksum;
static inline void kadd(ksum *k, double x) {
    double t = k->s + x;
    if (fabs(k->s) >= fabs(x)) k->c += (k->s - t) + x;
    else k->c += (x - t) + k->s;
    k->s = t;
}
static inline double kval(const ksum *k) { return k->s + k->c; }

/* Finished linear convolution: raw product, normalize, tail-trim —
 * branch for branch the flow of repro.stoch.ops._finalize_conv.
 * `out` has room for na + nb - 1 doubles; returns the trimmed length
 * and writes the trim offset into *lo_out. */
int64_t repro_conv_full(const double *a, int64_t na,
                        const double *b, int64_t nb,
                        double *out, int64_t *lo_out) {
    int64_t n = na + nb - 1;
    for (int64_t i = 0; i < n; i++) {
        int64_t klo = i - nb + 1; if (klo < 0) klo = 0;
        int64_t khi = i; if (khi > na - 1) khi = na - 1;
        ksum acc = {0.0, 0.0};
        for (int64_t k = klo; k <= khi; k++) kadd(&acc, a[k] * b[i - k]);
        out[i] = kval(&acc);
    }
    ksum tsum = {0.0, 0.0};
    for (int64_t i = 0; i < n; i++) kadd(&tsum, out[i]);
    double total = kval(&tsum);
    if (fabs(total - 1.0) > RTOL) {
        for (int64_t i = 0; i < n; i++) out[i] = out[i] / total;
    }
    double mx = out[0];
    for (int64_t i = 1; i < n; i++) if (out[i] > mx) mx = out[i];
    double thresh = mx * TRIM_EPS;
    int64_t lo = 0, hi = n - 1;
    if (!(out[0] > thresh && out[n - 1] > thresh)) {
        while (lo < n && !(out[lo] > thresh)) lo++;
        while (hi > lo && !(out[hi] > thresh)) hi--;
    }
    *lo_out = lo;
    if (lo == 0 && hi == n - 1) return n;
    int64_t m = hi - lo + 1;
    ksum t2sum = {0.0, 0.0};
    for (int64_t i = 0; i < m; i++) kadd(&t2sum, out[lo + i]);
    double t2 = kval(&t2sum);
    if (fabs(t2 - 1.0) > RTOL) {
        for (int64_t i = 0; i < m; i++) out[i] = out[lo + i] / t2;
    } else {
        memmove(out, out + lo, (size_t)m * sizeof(double));
    }
    return m;
}

/* Renormalized tail probs[k:] (0 < k < n); returns the tail length or
 * 0 when it carries no mass (caller substitutes the degenerate pmf). */
int64_t repro_trunc_tail(const double *probs, int64_t n, int64_t k,
                         double *out) {
    int64_t m = n - k;
    ksum tsum = {0.0, 0.0};
    for (int64_t i = 0; i < m; i++) kadd(&tsum, probs[k + i]);
    double total = kval(&tsum);
    if (total <= 0.0) return 0;
    if (fabs(total - 1.0) > RTOL) {
        for (int64_t i = 0; i < m; i++) out[i] = probs[k + i] / total;
    } else {
        memcpy(out, probs + k, (size_t)m * sizeof(double));
    }
    return m;
}

/* P[R + X <= d] without the convolution: sum_i ep[i] * F(ks_i) with
 * ks_i = floor(base + 1e-9 - i) clamped into the CDF support. */
double repro_prob_sum(const double *ep, int64_t n, double base,
                      const double *cdf, int64_t ncdf) {
    ksum acc = {0.0, 0.0};
    for (int64_t i = 0; i < n; i++) {
        double kf = floor(base + 1e-9 - (double)i);
        int64_t k = (int64_t)kf;
        if (k >= 0) {
            if (k > ncdf - 1) k = ncdf - 1;
            kadd(&acc, ep[i] * cdf[k]);
        }
    }
    return kval(&acc);
}

/* The CandidateBuilder batched prob-on-time pass: one (u, P) row
 * matrix over u distinct (node, ready pmf) pairs.  times/probs are the
 * (N, P, W) padded stacks; each row reduces over its node's native pad
 * width.  Index arithmetic mirrors the numpy chain
 * floor(((deadline - t) - start) / dt + 1e-9) exactly. */
void repro_score_rows(const double *times, const double *probs,
                      const int64_t *widths, int64_t P, int64_t W,
                      const double *starts, const int64_t *sizes,
                      const int64_t *offsets, const int64_t *row_node,
                      int64_t u, const double *cdf_flat,
                      double deadline, double dt, double *rows) {
    for (int64_t r = 0; r < u; r++) {
        int64_t node = row_node[r];
        int64_t w = widths[node];
        double start = starts[r];
        int64_t size = sizes[r];
        const double *cdf = cdf_flat + offsets[r];
        for (int64_t p = 0; p < P; p++) {
            const double *tp = times + (node * P + p) * W;
            const double *pp = probs + (node * P + p) * W;
            ksum acc = {0.0, 0.0};
            for (int64_t l = 0; l < w; l++) {
                double kf = floor(((deadline - tp[l]) - start) / dt + 1e-9);
                int64_t k = (int64_t)kf;
                if (k >= 0) {
                    if (k > size - 1) k = size - 1;
                    kadd(&acc, pp[l] * cdf[k]);
                }
            }
            rows[r * P + p] = kval(&acc);
        }
    }
}

/* dot(arange(n), probs): the start-independent first moment. */
double repro_moment1(const double *p, int64_t n) {
    ksum acc = {0.0, 0.0};
    for (int64_t i = 0; i < n; i++) kadd(&acc, (double)i * p[i]);
    return kval(&acc);
}
"""


def _build_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_KERNEL_BUILD_DIR")
    if override:
        return pathlib.Path(override)
    # Per-user so the cache is writable in shared-tempdir environments.
    return pathlib.Path(tempfile.gettempdir()) / f"repro-ckernels-{os.getuid()}"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile_library() -> pathlib.Path | None:
    """Build (or reuse) the kernel shared library; ``None`` on any failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    suffix = "dylib" if sys.platform == "darwin" else "so"
    build_dir = _build_dir()
    lib_path = build_dir / f"repro_kernels_{digest}.{suffix}"
    if lib_path.exists():
        return lib_path
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        build_dir.mkdir(parents=True, exist_ok=True)
        src_path = build_dir / f"repro_kernels_{digest}.c"
        src_path.write_text(_C_SOURCE)
        # Build to a unique temp name and rename into place: concurrent
        # processes race benignly (rename is atomic on POSIX).
        with tempfile.NamedTemporaryFile(
            dir=build_dir, suffix=f".{suffix}", delete=False
        ) as handle:
            tmp_path = pathlib.Path(handle.name)
        result = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", str(src_path), "-o", str(tmp_path), "-lm"],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            return None
        tmp_path.replace(lib_path)
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


_i64 = ctypes.c_int64
_f64 = ctypes.c_double
# Array arguments are declared ``c_void_p`` and passed as raw addresses
# (``arr.ctypes.data``): a ``ctypes.cast`` per argument costs more than
# some of the kernels themselves at hot-path call rates.
_ptr = ctypes.c_void_p


def load_cext_backend() -> KernelBackend | None:
    """Compile/load the C kernels; ``None`` when no toolchain works."""
    t0 = time.perf_counter()
    lib_path = _compile_library()
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(lib_path))
        conv_c = lib.repro_conv_full
        trunc_c = lib.repro_trunc_tail
        prob_c = lib.repro_prob_sum
        score_c = lib.repro_score_rows
        moment_c = lib.repro_moment1
    except (OSError, AttributeError):  # pragma: no cover - corrupt build
        return None
    conv_c.restype = _i64
    conv_c.argtypes = [_ptr, _i64, _ptr, _i64, _ptr, _ptr]
    trunc_c.restype = _i64
    trunc_c.argtypes = [_ptr, _i64, _i64, _ptr]
    prob_c.restype = _f64
    prob_c.argtypes = [_ptr, _i64, _f64, _ptr, _i64]
    score_c.restype = None
    score_c.argtypes = [
        _ptr, _ptr, _ptr, _i64, _i64,
        _ptr, _ptr, _ptr, _ptr, _i64,
        _ptr, _f64, _f64, _ptr,
    ]
    moment_c.restype = _f64
    moment_c.argtypes = [_ptr, _i64]

    lo_box = ctypes.c_int64()
    lo_addr = ctypes.addressof(lo_box)

    def conv_full(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, int]:
        out = np.empty(a.size + b.size - 1)
        n = conv_c(a.ctypes.data, a.size, b.ctypes.data, b.size, out.ctypes.data, lo_addr)
        arr = out[:n] if n != out.size else out
        arr.setflags(write=False)
        return arr, lo_box.value

    def trunc_tail(probs: np.ndarray, k: int) -> np.ndarray | None:
        out = np.empty(probs.size - k)
        n = trunc_c(probs.ctypes.data, probs.size, k, out.ctypes.data)
        if n == 0:
            return None
        out.setflags(write=False)
        return out

    def prob_sum(exec_probs: np.ndarray, base: float, cdf: np.ndarray) -> float:
        return prob_c(
            exec_probs.ctypes.data, exec_probs.size, base, cdf.ctypes.data, cdf.size
        )

    def score_rows(
        times: np.ndarray,
        probs: np.ndarray,
        widths: np.ndarray,
        starts: np.ndarray,
        sizes: np.ndarray,
        offsets: np.ndarray,
        row_node: np.ndarray,
        cdf_flat: np.ndarray,
        deadline: float,
        dt: float,
    ) -> np.ndarray:
        u = starts.size
        P, W = times.shape[1], times.shape[2]
        rows = np.empty((u, P))
        score_c(
            times.ctypes.data, probs.ctypes.data, widths.ctypes.data, P, W,
            starts.ctypes.data, sizes.ctypes.data, offsets.ctypes.data,
            row_node.ctypes.data, u,
            cdf_flat.ctypes.data, deadline, dt, rows.ctypes.data,
        )
        return rows

    def moment1(probs: np.ndarray) -> float:
        return moment_c(probs.ctypes.data, probs.size)

    backend = KernelBackend(
        "cext",
        compiled=True,
        conv_full=conv_full,
        trunc_tail=trunc_tail,
        prob_sum=prob_sum,
        score_rows=score_rows,
        moment1=moment1,
        warmup_s=time.perf_counter() - t0,
    )
    # Smoke the bindings once so a broken build surfaces here (as
    # "unavailable") rather than mid-trial.
    try:
        arr, lo = backend.conv_full(np.array([0.5, 0.5]), np.array([0.25, 0.75]))
        assert arr.size >= 1 and lo >= 0
        assert backend.trunc_tail(np.array([0.25, 0.25, 0.5]), 1) is not None
    except Exception:  # pragma: no cover - corrupt build
        return None
    return backend
