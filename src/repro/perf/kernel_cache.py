"""Content-addressed interning of pmf kernel results.

The mapping hot path recomputes the same pmf kernels constantly: the
same (type, node, P-state) execution pmfs recur across cores, tasks and
time, so the *operands* of most truncations have been seen before.
:class:`KernelCache` interns the finished result of each
``truncate_below`` call keyed by a digest of its operand contents, so a
repeat of the same truncation is a dict lookup instead of a slice,
renormalization and pmf validation.  (Convolution results were measured
to repeat far too rarely to be worth interning — a queue convolution's
left operand is an ever-changing accumulator — so ``convolve`` only
uses the validation-free finalizer, never the cache.)

Correctness contract — *bitwise identity*.  A cached kernel stores the
exact probability array the uncached code path produced (plus the
integer grid offset of the result relative to its operand), and a hit
reconstructs a :class:`~repro.stoch.pmf.PMF` from that array verbatim.
The truncation's probability contents are independent of the operand's
absolute ``start`` time, which is what makes content addressing sound:
the result array is the renormalized tail ``probs[k:]`` and the start
is ``pmf.start + k * dt`` — so the key is ``(digest(probs), k)``, not
the wall-clock cut time.

The cache is bounded (LRU by access order) and purely local to one
engine run; eviction only ever costs recomputation, never correctness.

Counters (hits / misses / evictions) are reported two ways: locally via
:meth:`KernelCache.stats`, and through the
:func:`repro.stoch.ops.set_op_observer` callback as the pseudo-ops
``cache_hit`` / ``cache_miss`` / ``cache_evict``, which the
observability layer turns into ``stoch.ops.cache_*`` metrics counters
alongside the existing per-operation counts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.perf.kernels import (
    BACKEND_CHOICES,
    KernelBackend,
    default_backend_name,
    resolve_backend,
)
from repro.stoch.pmf import PMF

__all__ = ["CacheStats", "InternedKernel", "KernelCache", "PerfConfig"]

#: Key tag for the interned operation (a single namespace today, kept
#: explicit so further interned ops can join the same table).
OP_TRUNCATE = 1

#: A cache key: ``(op, operand digests / parameters ...)``.
KernelKey = Tuple[object, ...]


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """Plain-dict form for benchmark reports and metrics dumps."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }

    def since(self, base: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot of the same cache.

        Used to attribute a *shared* cache's activity to one engine run:
        ``hits``/``misses``/``evictions`` become the run's own counts and
        ``entries`` the entries the run added (an LRU at capacity adds
        none).  For a fresh private cache ``base`` is all zeros and this
        is the identity.
        """
        return CacheStats(
            hits=self.hits - base.hits,
            misses=self.misses - base.misses,
            evictions=self.evictions - base.evictions,
            entries=self.entries - base.entries,
        )


class InternedKernel:
    """One interned result: a probability array plus its grid offset.

    ``probs`` is the read-only array the uncached computation produced;
    ``lo`` is the integer number of grid bins between the operation's
    natural start (the operand's start, for a truncation) and the
    result's first impulse.
    :meth:`rebuild` re-materializes the pmf for any operand start using
    the same arithmetic expression the uncached path evaluates, so the
    reconstructed pmf is bitwise identical to a fresh computation.
    """

    __slots__ = ("probs", "lo", "key", "m1", "cdf")

    def __init__(
        self,
        probs: np.ndarray,
        lo: int,
        key: bytes | None,
        m1: "np.floating | None",
        cdf: np.ndarray | None,
    ) -> None:
        self.probs = probs
        self.lo = lo
        self.key = key
        self.m1 = m1
        self.cdf = cdf

    @classmethod
    def from_result(cls, result: PMF, base_start: float) -> "InternedKernel":
        """Intern a finished pmf produced from operands with ``base_start``.

        The derived values (digest, first moment, cumulative sum) are
        *not* forced here: a kernel that never gets a hit would pay for
        quantities nobody reads.  Whatever the result instance has
        already computed is carried over (all three depend on the probs
        alone, so sharing is exact); the rest is backfilled lazily on
        the first rebuild.
        """
        lo = int(round((result.start - base_start) / result.dt))
        key = object.__getattribute__(result, "_key")
        m1 = object.__getattribute__(result, "_m1")
        cdf = object.__getattribute__(result, "_cdf")
        return cls(result.probs, lo, key, m1, cdf)

    def rebuild(self, base_start: float, dt: float) -> PMF:
        """Reconstruct the result pmf for operands starting at ``base_start``."""
        m1 = self.m1
        if m1 is None:
            # First hit: materialize the start-independent moment once
            # and share it with every future sibling — the same
            # expression as PMF.mean's cache-miss branch, so the value
            # is bitwise identical.
            m1 = np.dot(np.arange(self.probs.size), self.probs)
            self.m1 = m1
        cdf = self.cdf
        if cdf is None:
            # Likewise the cumulative sum (PMF.cdf's lazy expression).
            cdf = self.probs.cumsum()
            cdf.setflags(write=False)
            self.cdf = cdf
        # ``base + lo * dt`` is the exact expression the uncached path
        # evaluates (``PMF.compact`` / ``truncate_below``); ``lo == 0``
        # keeps the base bit-for-bit, matching compact's return-self.
        start = base_start if self.lo == 0 else base_start + self.lo * dt
        return PMF._intern(start, dt, self.probs, key=self.key, m1=m1, cdf=cdf)


class KernelCache:
    """Bounded LRU intern table for pmf kernel results.

    Parameters
    ----------
    max_entries:
        Entry cap; the least-recently-used kernels are evicted past it.
        Sized so a full paper-scale trial (deep queues on ~50 cores)
        fits comfortably: at ~100-500 bins per kernel the default cap
        is tens of MB at worst.
    """

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[KernelKey, InternedKernel] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: KernelKey) -> InternedKernel | None:
        """Look up a kernel, refreshing its LRU position."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: KernelKey, kernel: InternedKernel) -> int:
        """Store a kernel; returns how many entries were evicted."""
        self._entries[key] = kernel
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Snapshot the counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
        )


@dataclass(frozen=True)
class PerfConfig:
    """Knobs of the hot-path performance layer.

    Every knob except ``backend`` is *results-neutral*: the engine
    produces bitwise identical
    :class:`~repro.sim.results.TrialResult`s (and therefore identical
    manifest digests) for any combination, enforced by
    ``tests/perf/test_parity.py``.  The knobs only trade memory for
    speed.  ``backend`` is the one documented exception: compiled
    backends agree with the numpy reference to ≤1e-12 (see
    :mod:`repro.perf.kernels`), which is why it defaults to
    ``"numpy"`` and digests are always defined by the numpy path.

    Attributes
    ----------
    kernel_cache:
        Intern convolution/truncation kernels for the run (one private
        cache per engine unless ``warm_cache`` shares it; nothing ever
        leaks across trials).
    batch_mapper:
        Use the vectorized :class:`~repro.sim.mapper.CandidateBuilder`
        instead of the reference per-core loop.
    max_entries:
        Kernel-cache capacity (LRU past it).
    warm_cache:
        Share one kernel cache and one ``CandidateBuilder`` type-table
        cache across every spec of a trial (via
        :class:`~repro.perf.trial_cache.TrialCache`): all 16 specs run
        against the same :class:`~repro.sim.system.TrialSystem`, so the
        interned truncation tails seeded by the first spec are hits for
        the rest.  Scope is one trial in one worker — trials never share.
    batch_table:
        Build the per-trial
        :class:`~repro.workload.pmf_table.ExecutionTimeTable` through
        one vectorized gamma-CDF pass instead of a per-cell scipy loop.
    backend:
        Which kernel implementation executes the stochastic hot path:
        ``"numpy"`` (the reference, default), ``"numba"`` / ``"cext"``
        (compiled, opt-in, warn-and-fall-back when unavailable) or
        ``"auto"`` (fastest available, silent fallback).  The default
        honours the ``REPRO_PERF_BACKEND`` environment override so
        deployments can opt in without touching call sites.
    """

    kernel_cache: bool = True
    batch_mapper: bool = True
    max_entries: int = 65536
    warm_cache: bool = True
    batch_table: bool = True
    backend: str = field(default_factory=default_backend_name)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown kernel backend {self.backend!r}; "
                f"choose from {BACKEND_CHOICES}"
            )

    @staticmethod
    def disabled() -> "PerfConfig":
        """The reference configuration: no cache, no batch paths, numpy."""
        return PerfConfig(
            kernel_cache=False,
            batch_mapper=False,
            warm_cache=False,
            batch_table=False,
            backend="numpy",
        )

    def make_cache(self) -> KernelCache | None:
        """Build the engine's kernel cache (``None`` when disabled)."""
        return KernelCache(self.max_entries) if self.kernel_cache else None

    def make_backend(self) -> KernelBackend | None:
        """Resolve the configured kernel backend (``None`` = numpy path).

        Warns and falls back to the reference path when an explicitly
        requested compiled backend cannot be loaded; ``"auto"`` probes
        silently.  Resolution is cached per process, so this is cheap
        to call once per engine.
        """
        return resolve_backend(self.backend)
