"""Compiled hot-path kernel backends (the ``PerfConfig.backend`` knob).

The stochastic hot kernels — convolution, tail truncation, the
``prob_sum_at_most`` dot and the mapper's batched prob-on-time rows —
are executed millions of times per trial.  This module lets them run as
*compiled* code while keeping the pure-numpy reference path the default
and always available:

``"numpy"``
    The reference path: :mod:`repro.stoch.ops` and
    :class:`~repro.sim.mapper.CandidateBuilder` run their own vectorized
    numpy code, bitwise-reproducible across machines.  Resolves to
    ``None`` — no dispatch object is installed at all, so the default
    configuration costs nothing.
``"numba"``
    ``@njit``-compiled kernels (:mod:`repro.perf._numba_backend`).
    Requires the optional ``repro[perf]`` extra; auto-detected at
    import, never a hard dependency.
``"cext"``
    A small C kernel library compiled on demand with the system C
    compiler and bound through :mod:`ctypes`
    (:mod:`repro.perf._cext_backend`).  Covers environments where numba
    is unavailable but a toolchain exists; the build is cached by
    source digest.
``"auto"``
    The fastest available compiled backend (numba, then cext), silently
    falling back to numpy when neither can be loaded.

Correctness contract — *documented tolerance, not bitwise*.  Compiled
kernels mirror the numpy expressions operation for operation, including
the index arithmetic (``floor((deadline - t - start) / dt + 1e-9)`` is
evaluated with the exact same IEEE operation sequence, so gather
indices are bitwise identical).  Only the final *reductions* (sums and
dots) can differ: numpy uses pairwise/BLAS accumulation while the
compiled loops use Neumaier-compensated summation — at least as
accurate, and in particular landing on the same exactly-representable
values (a ``prob_on_time`` of exactly 0.5) that policy thresholds
compare against — so probabilities agree to ~1e-16 relative and
everything downstream to ≤1e-12.  ``tests/perf`` pins
this, and manifest/config digests are always defined by the numpy path
— which is why the *default* backend stays ``"numpy"`` and compiled
execution is strictly opt-in (CLI ``--perf-backend``, the
``REPRO_PERF_BACKEND`` environment override, or
``PerfConfig(backend=...)``).

Dispatch follows the ``set_kernel_cache`` seam: the engine resolves its
:class:`KernelBackend` once and installs it into :mod:`repro.stoch.ops`
for exactly the duration of one run, so nothing leaks across trials and
:class:`~repro.config.SimulationConfig` / scenario digests stay
perf-independent.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

import numpy as np

__all__ = [
    "BACKEND_CHOICES",
    "KernelBackend",
    "available_backends",
    "default_backend_name",
    "describe_backends",
    "resolve_backend",
]

#: Valid values of ``PerfConfig.backend`` / ``--perf-backend``.
BACKEND_CHOICES = ("numpy", "numba", "cext", "auto")

#: Preference order ``"auto"`` walks (first loadable wins).
AUTO_ORDER = ("numba", "cext")


class KernelBackend:
    """A set of compiled kernels :mod:`repro.stoch.ops` can dispatch to.

    All five slots are array-level pure functions (no
    :class:`~repro.stoch.pmf.PMF` in their signatures) so backend
    modules stay import-light and the kernels are trivially testable
    against the reference expressions:

    ``conv_full(a, b) -> (probs, lo)``
        Finished linear convolution of two probability arrays:
        normalized, tail-trimmed exactly as
        ``repro.stoch.ops._finalize_conv`` trims, returned read-only
        with the trim offset ``lo`` in grid bins.
    ``trunc_tail(probs, k) -> probs | None``
        The renormalized tail ``probs[k:]`` (``0 < k < len(probs)``),
        or ``None`` when the tail carries no mass (the caller
        substitutes the degenerate "completes now" pmf).
    ``prob_sum(exec_probs, base, cdf) -> float``
        ``sum_i exec_probs[i] * F(ks_i)`` with
        ``ks_i = floor(base + 1e-9 - i)`` clamped to the CDF's support
        and ``F(k < 0) = 0`` — the ``prob_sum_at_most`` inner loop.
    ``score_rows(times, probs, widths, starts, sizes, offsets,
    row_node, cdf_flat, deadline, dt) -> rows``
        The :class:`~repro.sim.mapper.CandidateBuilder` batched
        prob-on-time pass: one ``(u, P)`` row matrix over ``u``
        distinct (node, ready-pmf) pairs, each row reduced over the
        node's *native* pad width.
    ``moment1(probs) -> float``
        ``dot(arange(n), probs)`` — the start-independent first moment
        used by ``expectation_of_sum``.
    """

    __slots__ = (
        "name",
        "compiled",
        "conv_full",
        "trunc_tail",
        "prob_sum",
        "score_rows",
        "moment1",
        "warmup_s",
    )

    def __init__(
        self,
        name: str,
        *,
        compiled: bool,
        conv_full: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, int]],
        trunc_tail: Callable[[np.ndarray, int], np.ndarray | None],
        prob_sum: Callable[[np.ndarray, float, np.ndarray], float],
        score_rows: Callable[..., np.ndarray],
        moment1: Callable[[np.ndarray], float],
        warmup_s: float = 0.0,
    ) -> None:
        self.name = name
        self.compiled = compiled
        self.conv_full = conv_full
        self.trunc_tail = trunc_tail
        self.prob_sum = prob_sum
        self.score_rows = score_rows
        self.moment1 = moment1
        #: Wall-clock seconds the one-time JIT / C build took in this
        #: process (amortized across every later call; benchmarked by
        #: ``scripts/bench_kernels.py``).
        self.warmup_s = warmup_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r}, compiled={self.compiled})"


def default_backend_name() -> str:
    """The backend ``PerfConfig`` defaults to: env override or ``"numpy"``.

    ``REPRO_PERF_BACKEND`` lets a deployment opt whole runs into a
    compiled backend without touching call sites; an unknown value
    warns once and falls back to the reference path rather than
    poisoning every ``PerfConfig()`` construction with an error.
    """
    value = os.environ.get("REPRO_PERF_BACKEND", "").strip().lower()
    if not value:
        return "numpy"
    if value not in BACKEND_CHOICES:
        warnings.warn(
            f"REPRO_PERF_BACKEND={value!r} is not one of {BACKEND_CHOICES}; "
            "using the numpy reference backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "numpy"
    return value


# Per-process cache of loaded backends: loading is expensive (JIT
# compilation / a C build) and the result is stateless, so one instance
# serves every engine in the process.  ``False`` marks a backend that
# was tried and found unavailable (so the probe doesn't repeat).
_loaded: dict[str, KernelBackend | None | bool] = {}


def _load(name: str) -> KernelBackend | None:
    cached = _loaded.get(name)
    if cached is not None:
        return None if cached is False else cached
    backend: KernelBackend | None = None
    try:
        if name == "numba":
            from repro.perf._numba_backend import load_numba_backend

            backend = load_numba_backend()
        elif name == "cext":
            from repro.perf._cext_backend import load_cext_backend

            backend = load_cext_backend()
    except Exception:  # pragma: no cover - defensive: a broken toolchain
        backend = None
    _loaded[name] = backend if backend is not None else False
    return backend


def resolve_backend(name: str, *, warn: bool = True) -> KernelBackend | None:
    """Resolve a backend name to a :class:`KernelBackend` (or ``None``).

    ``None`` means "run the reference numpy path" — both for
    ``"numpy"`` itself and for fallbacks.  Requesting ``"numba"`` or
    ``"cext"`` explicitly when it cannot be loaded emits a
    :class:`RuntimeWarning` (suppress with ``warn=False``) and falls
    back; ``"auto"`` probes silently.  Unknown names raise
    ``ValueError``.
    """
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    if name == "numpy":
        return None
    if name == "auto":
        for candidate in AUTO_ORDER:
            backend = _load(candidate)
            if backend is not None:
                return backend
        return None
    backend = _load(name)
    if backend is None and warn:
        warnings.warn(
            f"kernel backend {name!r} is unavailable "
            f"({_unavailable_reason(name)}); falling back to the numpy "
            "reference path",
            RuntimeWarning,
            stacklevel=2,
        )
    return backend


def _unavailable_reason(name: str) -> str:
    if name == "numba":
        return "numba is not importable — install the repro[perf] extra"
    return "no working C compiler was found"


def available_backends() -> tuple[str, ...]:
    """Names that resolve to a runnable backend right now.

    Always includes ``"numpy"``; probing never warns.
    """
    names = ["numpy"]
    for candidate in AUTO_ORDER:
        if _load(candidate) is not None:
            names.append(candidate)
    return tuple(names)


def describe_backends() -> dict[str, dict[str, object]]:
    """Catalog of every backend choice with availability and warm-up cost."""
    out: dict[str, dict[str, object]] = {
        "numpy": {"available": True, "compiled": False, "warmup_s": 0.0}
    }
    for candidate in AUTO_ORDER:
        backend = _load(candidate)
        out[candidate] = {
            "available": backend is not None,
            "compiled": True,
            "warmup_s": round(backend.warmup_s, 3) if backend is not None else None,
        }
    return out
