"""The ``"numba"`` kernel backend: ``@njit``-compiled hot-path kernels.

Numba is an *optional* extra (``pip install repro[perf]``); this module
is only imported by :func:`repro.perf.kernels.resolve_backend` and
degrades to "unavailable" when the import fails, so the dependency is
never hard.  The kernels mirror the C backend
(:mod:`repro.perf._cext_backend`) statement for statement — same
operation order in the index arithmetic, same Neumaier-compensated
reductions — so both compiled backends sit under the same tolerance
contract and the same equivalence suite
(``tests/perf/test_kernel_equivalence.py``).

``load_numba_backend`` triggers JIT compilation of every kernel up
front on tiny inputs (``cache=True`` persists the machine code next to
this module, so later processes skip the compile).  The measured
warm-up cost is reported on ``KernelBackend.warmup_s`` and benchmarked
by ``scripts/bench_kernels.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.perf.kernels import KernelBackend

__all__ = ["load_numba_backend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit
except ImportError:  # pragma: no cover - the numba-free default path
    njit = None

# Mirrors repro.stoch.pmf._RTOL / _TRIM_EPS.
_RTOL = 1e-9
_TRIM_EPS = 1e-12


def _build_kernels():  # pragma: no cover - requires numba
    jit = njit(cache=True, fastmath=False)

    # Neumaier-compensated add, mirroring the C backend's `kadd`: the
    # running sum and compensation travel as a (s, c) pair and the
    # rounded result is s + c.  fastmath stays off so the compensation
    # arithmetic is not optimized away.
    @jit
    def _kadd(s, c, x):
        t = s + x
        if abs(s) >= abs(x):
            c += (s - t) + x
        else:
            c += (x - t) + s
        return t, c

    @jit
    def conv_full(a, b):
        na = a.shape[0]
        nb = b.shape[0]
        n = na + nb - 1
        out = np.empty(n)
        for i in range(n):
            klo = i - nb + 1
            if klo < 0:
                klo = 0
            khi = i
            if khi > na - 1:
                khi = na - 1
            acc = 0.0
            comp = 0.0
            for k in range(klo, khi + 1):
                acc, comp = _kadd(acc, comp, a[k] * b[i - k])
            out[i] = acc + comp
        total = 0.0
        comp = 0.0
        for i in range(n):
            total, comp = _kadd(total, comp, out[i])
        total = total + comp
        if abs(total - 1.0) > _RTOL:
            for i in range(n):
                out[i] = out[i] / total
        mx = out[0]
        for i in range(1, n):
            if out[i] > mx:
                mx = out[i]
        thresh = mx * _TRIM_EPS
        lo = 0
        hi = n - 1
        if not (out[0] > thresh and out[n - 1] > thresh):
            while lo < n and not (out[lo] > thresh):
                lo += 1
            while hi > lo and not (out[hi] > thresh):
                hi -= 1
        if lo == 0 and hi == n - 1:
            return out, 0
        m = hi - lo + 1
        t2 = 0.0
        comp = 0.0
        for i in range(m):
            t2, comp = _kadd(t2, comp, out[lo + i])
        t2 = t2 + comp
        sl = np.empty(m)
        if abs(t2 - 1.0) > _RTOL:
            for i in range(m):
                sl[i] = out[lo + i] / t2
        else:
            for i in range(m):
                sl[i] = out[lo + i]
        return sl, lo

    @jit
    def trunc_tail(probs, k):
        n = probs.shape[0]
        m = n - k
        total = 0.0
        comp = 0.0
        for i in range(m):
            total, comp = _kadd(total, comp, probs[k + i])
        total = total + comp
        if total <= 0.0:
            return np.empty(0)
        out = np.empty(m)
        if abs(total - 1.0) > _RTOL:
            for i in range(m):
                out[i] = probs[k + i] / total
        else:
            for i in range(m):
                out[i] = probs[k + i]
        return out

    @jit
    def prob_sum(ep, base, cdf):
        n = ep.shape[0]
        ncdf = cdf.shape[0]
        acc = 0.0
        comp = 0.0
        for i in range(n):
            k = int(np.floor(base + 1e-9 - float(i)))
            if k >= 0:
                if k > ncdf - 1:
                    k = ncdf - 1
                acc, comp = _kadd(acc, comp, ep[i] * cdf[k])
        return acc + comp

    @jit
    def score_rows(times, probs, widths, starts, sizes, offsets, row_node, cdf_flat, deadline, dt):
        u = starts.shape[0]
        P = times.shape[1]
        rows = np.empty((u, P))
        for r in range(u):
            node = row_node[r]
            w = widths[node]
            start = starts[r]
            size = sizes[r]
            off = offsets[r]
            for p in range(P):
                acc = 0.0
                comp = 0.0
                for l in range(w):
                    kf = np.floor(((deadline - times[node, p, l]) - start) / dt + 1e-9)
                    k = int(kf)
                    if k >= 0:
                        if k > size - 1:
                            k = size - 1
                        acc, comp = _kadd(acc, comp, probs[node, p, l] * cdf_flat[off + k])
                rows[r, p] = acc + comp
        return rows

    @jit
    def moment1(probs):
        acc = 0.0
        comp = 0.0
        for i in range(probs.shape[0]):
            acc, comp = _kadd(acc, comp, float(i) * probs[i])
        return acc + comp

    return conv_full, trunc_tail, prob_sum, score_rows, moment1


def load_numba_backend() -> KernelBackend | None:
    """JIT-compile the kernels; ``None`` when numba is not importable."""
    if njit is None:
        return None
    t0 = time.perf_counter()  # pragma: no cover - requires numba
    try:  # pragma: no cover - requires numba
        conv_full, trunc_tail, prob_sum, score_rows, moment1 = _build_kernels()
        # Force compilation of every signature now so the first trial
        # doesn't absorb JIT latency mid-event-loop.
        a = np.array([0.5, 0.5])
        b = np.array([0.25, 0.5, 0.25])
        conv_full(a, b)
        trunc_tail(b, 1)
        prob_sum(a, 1.0, np.array([0.5, 1.0]))
        score_rows(
            np.zeros((1, 2, 3)),
            np.full((1, 2, 3), 1.0 / 3.0),
            np.array([3], dtype=np.int64),
            np.array([0.0]),
            np.array([2], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([0.5, 1.0]),
            1.0,
            1.0,
        )
        moment1(a)
    except Exception:  # pragma: no cover - broken numba install
        return None

    def trunc_tail_shim(probs: np.ndarray, k: int) -> np.ndarray | None:  # pragma: no cover
        out = trunc_tail(probs, k)
        if out.size == 0:
            return None
        out.setflags(write=False)
        return out

    def conv_full_shim(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, int]:  # pragma: no cover
        arr, lo = conv_full(a, b)
        arr.setflags(write=False)
        return arr, lo

    return KernelBackend(  # pragma: no cover - requires numba
        "numba",
        compiled=True,
        conv_full=conv_full_shim,
        trunc_tail=trunc_tail_shim,
        prob_sum=prob_sum,
        score_rows=score_rows,
        moment1=moment1,
        warmup_s=time.perf_counter() - t0,
    )
