"""Trial-scoped sharing of warm performance state across specs.

The runner's pairing discipline runs every (heuristic, filter) spec of a
trial against the *same* :class:`~repro.sim.system.TrialSystem`, yet
before this module each :class:`~repro.sim.engine.Engine` started cold:
a fresh :class:`~repro.perf.kernel_cache.KernelCache` and a fresh
:class:`~repro.sim.mapper.CandidateBuilder` type-table cache per run.
Both caches are keyed purely by *content that is identical across the
specs of a trial* — interned truncation kernels are addressed by pmf
content digest, and the builder's per-type tables are pure functions of
the shared execution-time table — so one spec's warm state is a valid
(and bitwise-identical) answer for the next.

:class:`TrialCache` is the handle the runner creates once per trial and
threads through every ``TrialPlan.run()`` call.  The engine *reuses*
the installed kernel cache instead of replacing it (nesting preserved by
``set_kernel_cache``'s return-previous protocol) and snapshots the
counters at run start, so :meth:`Engine.kernel_cache_stats` and the
``perf.cache.*`` metrics stay attributable per spec even though the
cache object is shared.

Sharing scope is deliberately *one trial in one worker process*: trials
have different systems (different pmf contents, so cross-trial entries
would only pollute the LRU), and worker processes never share memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.perf.kernel_cache import CacheStats, KernelCache, PerfConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workload.pmf_table import ExecutionTimeTable

__all__ = ["TrialCache"]


class TrialCache:
    """Warm per-trial performance state shared across an engine sequence.

    Parameters
    ----------
    perf:
        The trial's performance knobs; ``None`` means defaults.  With
        ``warm_cache=False`` (or the relevant base knob off) the handle
        degrades to inert — engines fall back to their private state —
        so the runner can always create one unconditionally.
    """

    __slots__ = ("perf", "kernel", "_tables_for", "_tables")

    def __init__(self, perf: PerfConfig | None = None) -> None:
        self.perf = perf if perf is not None else PerfConfig()
        #: The shared kernel cache (``None`` when sharing or the kernel
        #: cache itself is disabled).
        self.kernel: KernelCache | None = (
            self.perf.make_cache() if self.perf.warm_cache else None
        )
        self._tables_for: Any = None
        self._tables: dict | None = None

    def mapper_tables(self, table: "ExecutionTimeTable") -> dict | None:
        """The shared ``CandidateBuilder`` type-table dict for ``table``.

        Entries are read-only arrays derived from ``table`` alone, so
        sharing the dict across the trial's builders is exact.  Returns
        ``None`` (private tables) when sharing is off, and resets if
        asked about a *different* table — a misuse guard; the runner
        only ever pairs one system with one ``TrialCache``.
        """
        if not (self.perf.warm_cache and self.perf.batch_mapper):
            return None
        if self._tables is None or self._tables_for is not table:
            self._tables_for = table
            self._tables = {}
        return self._tables

    def stats(self) -> CacheStats | None:
        """Cumulative counters of the shared kernel cache (whole trial)."""
        return self.kernel.stats() if self.kernel is not None else None
