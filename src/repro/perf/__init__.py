"""repro.perf — the hot-path performance layer.

Two mechanisms, both strictly results-neutral (bitwise-identical
trial results and manifest digests with the layer on or off):

* a **content-addressed kernel cache** (:class:`KernelCache`) interning
  the results of pmf convolutions and truncations, installed into
  :mod:`repro.stoch.ops` for the duration of one engine run;
* the **vectorized candidate builder**
  (:class:`~repro.sim.mapper.CandidateBuilder`), which assembles the
  whole per-arrival :class:`~repro.heuristics.base.CandidateSet` with
  batched array ops and per-ready-pmf deduplication.

At ensemble scale two more mechanisms ride on the same contract:

* a **trial-scoped warm cache** (:class:`TrialCache`) sharing the
  kernel cache and the builder's type tables across every spec of a
  trial (all specs run the same :class:`~repro.sim.system.TrialSystem`);
* **batched table construction** (``PerfConfig.batch_table``): the
  per-trial :class:`~repro.workload.pmf_table.ExecutionTimeTable` is
  discretized through one vectorized gamma-CDF pass.

A fifth mechanism is *opt-in* and sits under a documented ≤1e-12
tolerance instead of bitwise identity: **compiled kernel backends**
(:mod:`repro.perf.kernels`, ``PerfConfig.backend``) replace the
stochastic hot kernels — convolution, tail truncation, the
``prob_sum_at_most`` dot, the mapper's batched prob-on-time rows —
with numba- or C-compiled loops.  The numpy reference path remains the
default and always available; digests and manifests are always defined
by it.

:class:`PerfConfig` selects all of them; the engine defaults to
everything on except compiled backends.  ``PerfConfig.disabled()`` is
the reference configuration used by the parity tests and as the
baseline of ``BENCH_perf.json`` / ``BENCH_ensemble.json``.
"""

from repro.perf.kernel_cache import CacheStats, InternedKernel, KernelCache, PerfConfig
from repro.perf.kernels import (
    BACKEND_CHOICES,
    KernelBackend,
    available_backends,
    default_backend_name,
    describe_backends,
    resolve_backend,
)
from repro.perf.trial_cache import TrialCache

__all__ = [
    "BACKEND_CHOICES",
    "CacheStats",
    "InternedKernel",
    "KernelBackend",
    "KernelCache",
    "PerfConfig",
    "TrialCache",
    "available_backends",
    "default_backend_name",
    "describe_backends",
    "resolve_backend",
]
