"""repro.perf — the hot-path performance layer.

Two mechanisms, both strictly results-neutral (bitwise-identical
trial results and manifest digests with the layer on or off):

* a **content-addressed kernel cache** (:class:`KernelCache`) interning
  the results of pmf convolutions and truncations, installed into
  :mod:`repro.stoch.ops` for the duration of one engine run;
* the **vectorized candidate builder**
  (:class:`~repro.sim.mapper.CandidateBuilder`), which assembles the
  whole per-arrival :class:`~repro.heuristics.base.CandidateSet` with
  batched array ops and per-ready-pmf deduplication.

:class:`PerfConfig` selects both; the engine defaults to everything on.
``PerfConfig.disabled()`` is the reference configuration used by the
parity tests and as the baseline of ``BENCH_perf.json``.
"""

from repro.perf.kernel_cache import CacheStats, InternedKernel, KernelCache, PerfConfig

__all__ = ["CacheStats", "InternedKernel", "KernelCache", "PerfConfig"]
