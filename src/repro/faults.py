"""repro.faults — deterministic in-simulation faults and overload shedding.

PR 2's chaos layer (:mod:`repro.experiments.chaos`) kills *worker
processes around* trials; this module models failures *inside* the
simulated cluster: nodes and cores go down mid-run, run slow, and come
back, while the scheduler keeps mapping against whatever capacity
survives.

The pieces:

* :class:`FaultEvent` / :class:`FaultSchedule` — a typed, explicit or
  seed-generated list of outages and slowdowns.  The schedule is pure
  data; :meth:`FaultSchedule.transitions` compiles it against a cluster
  into the time-ordered fail/recover :class:`FaultTransition` stream the
  engine injects into its event heap.
* :class:`FaultPolicy` — what happens to work caught by an outage:
  running tasks are ``lost`` or ``resume``-orphaned, and orphans are
  (by default) re-mapped through the normal heuristic/filter stack.
* :class:`SheddingConfig` / :class:`AdmissionController` — overload
  protection for continuous service: arrivals are deferred or dropped
  when queue depth or the rolling energy budget cross thresholds, or
  when the chosen assignment's ``prob_on_time`` falls below a floor
  (probabilistic task pruning, Gentry et al., arXiv:1901.09312).
* :class:`FaultStats` — the engine's running counters over all of the
  above, surfaced per window in service mode.

Determinism: generated schedules draw exclusively from
``rng.stream(seed, "faults", scope, target)`` sub-streams, so the same
seed always yields the same failure/repair process, independent of every
other stream in the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

from repro import rng as rng_mod
from repro.registry import ADMISSION_PLUGINS, register_admission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.cluster import ClusterSpec

__all__ = [
    "FAULT_KINDS",
    "FAULTS_FORMAT",
    "FaultEvent",
    "FaultTransition",
    "FaultSchedule",
    "FaultPolicy",
    "SheddingConfig",
    "AdmissionController",
    "make_admission",
    "FaultStats",
]

#: Valid :attr:`FaultEvent.kind` values.
FAULT_KINDS = ("node_outage", "core_outage", "node_slowdown")

#: Format tag of a serialized fault schedule (see :mod:`repro.io.faults_io`).
FAULTS_FORMAT = "repro.faults/1"

#: Shed / defer causes recorded by the admission controller.
SHED_QUEUE_DEPTH = "queue_depth"
SHED_BUDGET = "budget"
SHED_MIN_PROB = "min_prob"


@dataclass(frozen=True)
class FaultEvent:
    """One failure episode: a target degrades at ``start`` for ``duration``.

    ``target`` is a node index for ``node_outage`` / ``node_slowdown``
    and a flat core id for ``core_outage``.  ``pstate_floor`` applies to
    slowdowns only: while active, P-states *faster* than the floor index
    are forbidden (index 0 is the fastest, so a floor of 2 caps the node
    to P-states 2 and deeper — DVFS throttling under thermal or power
    emergencies).
    """

    kind: str
    target: int
    start: float
    duration: float
    pstate_floor: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.target < 0:
            raise ValueError(f"target must be non-negative, got {self.target}")
        if not (self.start >= 0.0) or not math.isfinite(self.start):
            raise ValueError(f"start must be finite and >= 0, got {self.start}")
        if not (self.duration > 0.0) or not math.isfinite(self.duration):
            raise ValueError(f"duration must be finite and positive, got {self.duration}")
        if self.pstate_floor < 0:
            raise ValueError(f"pstate_floor must be non-negative, got {self.pstate_floor}")
        if self.kind != "node_slowdown" and self.pstate_floor != 0:
            raise ValueError("pstate_floor only applies to node_slowdown events")

    @property
    def end(self) -> float:
        """The recovery instant."""
        return self.start + self.duration


@dataclass(frozen=True)
class FaultTransition:
    """One compiled edge of a fault episode: a fail or a recover.

    Produced by :meth:`FaultSchedule.transitions`; ``core_ids`` is the
    resolved flat-core extent of the originating event, so the engine
    never needs to map node indices itself.
    """

    time: float
    action: str  # "fail" | "recover"
    event: FaultEvent
    core_ids: tuple[int, ...]

    @property
    def is_outage(self) -> bool:
        """Whether the originating event removes capacity entirely."""
        return self.event.kind in ("node_outage", "core_outage")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, replayable list of in-simulation fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """A schedule with no events (engine behaves exactly as baseline)."""
        return cls(())

    @classmethod
    def generate(
        cls,
        *,
        num_targets: int,
        horizon: float,
        mtbf: float,
        mttr: float,
        seed: int,
        scope: str = "node",
        pstate_floor: int = 0,
    ) -> "FaultSchedule":
        """Draw a failure/repair renewal process per target.

        Each target alternates exponentially-distributed up intervals
        (mean ``mtbf``) and down intervals (mean ``mttr``), starting up
        at time 0; episodes beginning before ``horizon`` are kept.
        ``scope`` picks the event kind: ``"node"`` emits node outages
        over node indices ``0..num_targets-1``, ``"core"`` core outages
        over flat core ids, and ``"slowdown"`` node slowdowns capped at
        ``pstate_floor``.  Every target draws from its own
        ``rng.stream(seed, "faults", scope, target)``, so schedules are
        reproducible and adding targets never perturbs existing ones.
        """
        kinds = {"node": "node_outage", "core": "core_outage", "slowdown": "node_slowdown"}
        if scope not in kinds:
            raise ValueError(f"unknown fault scope {scope!r}; known: {', '.join(kinds)}")
        if num_targets < 1:
            raise ValueError(f"num_targets must be positive, got {num_targets}")
        if not (horizon > 0.0):
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not (mtbf > 0.0) or not (mttr > 0.0):
            raise ValueError(f"mtbf and mttr must be positive, got {mtbf}, {mttr}")
        kind = kinds[scope]
        floor = pstate_floor if kind == "node_slowdown" else 0
        events: list[FaultEvent] = []
        for target in range(num_targets):
            gen = rng_mod.stream(seed, "faults", scope, target)
            t = float(gen.exponential(mtbf))
            while t < horizon:
                duration = float(gen.exponential(mttr))
                events.append(
                    FaultEvent(
                        kind=kind,
                        target=target,
                        start=t,
                        duration=duration,
                        pstate_floor=floor,
                    )
                )
                t += duration + float(gen.exponential(mtbf))
        events.sort(key=lambda e: (e.start, e.target, e.kind))
        return cls(tuple(events))

    def transitions(self, cluster: "ClusterSpec") -> tuple[FaultTransition, ...]:
        """Compile to the time-ordered fail/recover edges for ``cluster``.

        Ties at one instant order recoveries before failures (capacity
        returning at the exact moment another fault lands is visible to
        it), then schedule order — fully deterministic.
        """
        import numpy as np

        edges: list[tuple[float, int, int, FaultTransition]] = []
        for index, event in enumerate(self.events):
            if event.kind == "core_outage":
                if event.target >= cluster.num_cores:
                    raise ValueError(
                        f"core_outage target {event.target} outside cluster "
                        f"({cluster.num_cores} cores)"
                    )
                core_ids: tuple[int, ...] = (event.target,)
            else:
                if event.target >= cluster.num_nodes:
                    raise ValueError(
                        f"{event.kind} target {event.target} outside cluster "
                        f"({cluster.num_nodes} nodes)"
                    )
                core_ids = tuple(
                    int(c) for c in np.flatnonzero(cluster.core_node_index == event.target)
                )
            if event.kind == "node_slowdown" and event.pstate_floor >= cluster.num_pstates:
                raise ValueError(
                    f"pstate_floor {event.pstate_floor} >= num_pstates "
                    f"{cluster.num_pstates} would forbid every P-state"
                )
            fail = FaultTransition(event.start, "fail", event, core_ids)
            recover = FaultTransition(event.end, "recover", event, core_ids)
            edges.append((event.start, 1, index, fail))
            edges.append((event.end, 0, index, recover))
        edges.sort(key=lambda e: e[:3])
        return tuple(edge[3] for edge in edges)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (see :data:`FAULTS_FORMAT`)."""
        return {
            "format": FAULTS_FORMAT,
            "events": [
                {
                    "kind": e.kind,
                    "target": e.target,
                    "start": e.start,
                    "duration": e.duration,
                    "pstate_floor": e.pstate_floor,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSchedule":
        """Rebuild from :meth:`to_dict` output (strict about the tag)."""
        if data.get("format") != FAULTS_FORMAT:
            raise ValueError(
                f"not a fault schedule: format {data.get('format')!r} != {FAULTS_FORMAT!r}"
            )
        events = tuple(
            FaultEvent(
                kind=e["kind"],
                target=e["target"],
                start=e["start"],
                duration=e["duration"],
                pstate_floor=e.get("pstate_floor", 0),
            )
            for e in data.get("events", ())
        )
        return cls(events)


@dataclass(frozen=True)
class FaultPolicy:
    """What the engine does with work caught by an outage.

    ``running`` decides the fate of a task executing when its core goes
    down: ``"lost"`` kills it (the energy already spent stays on the
    ledger — the paper's budget is consumed, not refunded), ``"resume"``
    orphans it for re-mapping, restarting from scratch on the surviving
    cluster (a checkpoint-restart with zero salvaged progress — the
    conservative bound).  ``remap`` controls whether orphans (queued
    tasks always, resumed running tasks under ``"resume"``) go back
    through the heuristic/filter stack; with ``remap=False`` every
    orphan is lost, which is the no-recovery baseline the degraded
    report compares against.
    """

    running: str = "lost"
    remap: bool = True

    def __post_init__(self) -> None:
        if self.running not in ("lost", "resume"):
            raise ValueError(f"running policy must be 'lost' or 'resume', got {self.running!r}")


@dataclass(frozen=True)
class SheddingConfig:
    """Overload-protection thresholds for the admission controller.

    Every threshold defaults to ``None`` (check disabled); a config with
    all checks disabled is inert and the engine treats it exactly as
    "no shedding".

    Attributes
    ----------
    queue_depth:
        Defer/shed an arrival when the cluster-average queue depth
        exceeds this many tasks per core.
    budget_frac:
        Defer/shed when the energy allowance falls below this fraction
        of its cap (rolling budget) or of the trial budget (batch).
    min_prob:
        After selection, shed the task anyway when the *chosen*
        assignment's ``prob_on_time`` is below this floor — admitting
        work that will almost surely be late wastes energy that
        on-time-capable tasks need (probabilistic task pruning).
    defer:
        When a threshold trips, re-try the arrival this many simulated
        seconds later instead of dropping it immediately (``None``
        drops at once).
    max_defers:
        Deferrals per task before it is shed for good.
    """

    queue_depth: float | None = None
    budget_frac: float | None = None
    min_prob: float | None = None
    defer: float | None = None
    max_defers: int = 3
    policy: str = "threshold"

    def __post_init__(self) -> None:
        if not self.policy or not isinstance(self.policy, str):
            raise ValueError(f"policy must be an admission-plugin name, got {self.policy!r}")
        if self.queue_depth is not None and not (self.queue_depth >= 0.0):
            raise ValueError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.budget_frac is not None and not (0.0 <= self.budget_frac <= 1.0):
            raise ValueError(f"budget_frac must be in [0, 1], got {self.budget_frac}")
        if self.min_prob is not None and not (0.0 <= self.min_prob <= 1.0):
            raise ValueError(f"min_prob must be in [0, 1], got {self.min_prob}")
        if self.defer is not None and not (self.defer > 0.0):
            raise ValueError(f"defer must be positive, got {self.defer}")
        if self.max_defers < 0:
            raise ValueError(f"max_defers must be >= 0, got {self.max_defers}")

    @property
    def enabled(self) -> bool:
        """Whether any check is active."""
        return (
            self.queue_depth is not None
            or self.budget_frac is not None
            or self.min_prob is not None
        )


class AdmissionController:
    """Stateful load-shedder: decides admit / defer / shed per arrival.

    The pre-mapping checks (queue depth, budget level) run before any
    candidate scoring, so a shed arrival costs nothing; the
    ``min_prob`` floor is applied by the engine *after* selection, when
    the chosen assignment's on-time probability is known.  Deferral
    state is per task id and bounded by the number of in-flight
    deferrals, so memory stays O(deferred tasks).
    """

    __slots__ = ("config", "_defers")

    def __init__(self, config: SheddingConfig) -> None:
        self.config = config
        self._defers: dict[int, int] = {}

    def admit(
        self, task_id: int, queue_depth: float, budget_frac: float | None
    ) -> tuple[str, str]:
        """Pre-mapping decision: ``("admit"|"defer"|"shed", cause)``."""
        cfg = self.config
        cause = ""
        if cfg.queue_depth is not None and queue_depth > cfg.queue_depth:
            cause = SHED_QUEUE_DEPTH
        elif (
            cfg.budget_frac is not None
            and budget_frac is not None
            and budget_frac < cfg.budget_frac
        ):
            cause = SHED_BUDGET
        if not cause:
            self._defers.pop(task_id, None)
            return "admit", ""
        if cfg.defer is not None:
            seen = self._defers.get(task_id, 0)
            if seen < cfg.max_defers:
                self._defers[task_id] = seen + 1
                return "defer", cause
        self._defers.pop(task_id, None)
        return "shed", cause

    def below_prob_floor(self, prob: float) -> bool:
        """Post-selection check: chosen assignment under the rho floor."""
        return self.config.min_prob is not None and prob < self.config.min_prob

    def settle(self, task_id: int) -> None:
        """Forget deferral state after a terminal disposition."""
        self._defers.pop(task_id, None)


@register_admission(
    "threshold",
    summary="Queue-depth / budget-fraction / rho-floor thresholds with deferral",
)
def _make_threshold(config: SheddingConfig) -> AdmissionController:
    return AdmissionController(config)


def make_admission(config: SheddingConfig) -> AdmissionController:
    """Build the admission controller named by ``config.policy``.

    The engine calls this (instead of hard-wiring
    :class:`AdmissionController`) so a registered third-party policy —
    say a probabilistic-pruning variant — slots into the same shedding
    pipeline.  A plugin must satisfy
    :class:`repro.registry.AdmissionPlugin`: ``admit`` pre-mapping,
    ``below_prob_floor`` post-selection, ``settle`` on terminal
    disposition.
    """
    return ADMISSION_PLUGINS.create(config.policy, config)


@dataclass
class FaultStats:
    """Mutable counters over fault and shedding activity in one run.

    Kept *outside* :class:`~repro.sim.results.TrialResult` on purpose:
    manifest trial digests hash the result's scalars, and a zero-fault
    run must stay digest-identical to the pre-fault baseline.
    """

    outages: int = 0
    recoveries: int = 0
    slowdowns: int = 0
    orphaned: int = 0
    remapped: int = 0
    lost: int = 0
    shed: int = 0
    deferred: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def any_activity(self) -> bool:
        """Whether any counter is nonzero."""
        return any(getattr(self, f.name) for f in fields(self))
