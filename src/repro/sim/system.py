"""Building the Section VI simulation environment for one trial.

A :class:`TrialSystem` bundles everything that is *shared across the 16
(heuristic, filter) variants of a trial*: the sampled cluster, the CVB
ETC matrix, the execution-time pmf table, the task stream, and the energy
budget.  The experiment runner builds it once per trial seed and hands it
to one :class:`~repro.sim.engine.Engine` per variant, giving the paired
comparisons the paper's box plots rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import rng as rng_mod
from repro.cluster.cluster import ClusterSpec
from repro.cluster.generator import generate_cluster
from repro.config import SimulationConfig
from repro.perf.kernel_cache import PerfConfig
from repro.workload.cvb import cvb_etc_matrix
from repro.workload.etc_matrix import ETCMatrix
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.workload import Workload, build_workload

__all__ = ["TrialSystem", "build_trial_system"]


@dataclass(frozen=True)
class TrialSystem:
    """The generated environment of one simulation trial.

    Attributes
    ----------
    budget:
        The energy constraint ``zeta_max = budget_mult * t_avg * p_avg *
        num_tasks`` — "the energy required to execute an average task one
        thousand times" with the paper's defaults.
    exec_luck:
        One uniform draw per task.  A task's *actual* execution time is
        the ``exec_luck[z]`` quantile of whichever pmf its assignment
        selects, so a task keeps the same "luck" across heuristic
        variants even though its placement differs — maximizing the
        pairing of variant comparisons within a trial.
    """

    config: SimulationConfig
    cluster: ClusterSpec
    etc: ETCMatrix
    table: ExecutionTimeTable
    workload: Workload
    budget: float
    exec_luck: np.ndarray

    @property
    def num_tasks(self) -> int:
        """Tasks in the trial."""
        return self.workload.num_tasks

    @property
    def p_avg(self) -> float:
        """Eq. 8: mean per-core power over nodes and P-states."""
        return self.cluster.mean_power()

    @property
    def t_avg(self) -> float:
        """Mean execution time over types, nodes and P-states."""
        return self.workload.t_avg


def build_trial_system(
    config: SimulationConfig, *, perf: PerfConfig | None = None
) -> TrialSystem:
    """Generate the full environment from ``config.seed``.

    Sub-streams ("cluster", "etc", task types, arrivals, "exec-luck") are
    independent, so e.g. enlarging the cluster does not perturb the
    workload draw.

    ``perf`` selects how the execution-time table is constructed
    (``batch_table``, :mod:`repro.perf`); results-neutral, ``None``
    means the default fast path.
    """
    seed = config.seed
    cluster = generate_cluster(config.cluster, rng_mod.stream(seed, "cluster"))
    etc = ETCMatrix(
        cvb_etc_matrix(
            config.workload.num_task_types,
            cluster.num_nodes,
            config.workload.mu_task,
            config.workload.v_task,
            config.workload.v_mach,
            rng_mod.stream(seed, "etc"),
        )
    )
    batch = perf.batch_table if perf is not None else True
    table = ExecutionTimeTable(
        etc, cluster, config.grid, config.workload.exec_cv, batch=batch
    )
    workload = build_workload(config.workload, table, seed)
    budget = (
        config.energy.budget_mult * workload.t_avg * cluster.mean_power() * workload.num_tasks
    )
    exec_luck = rng_mod.stream(seed, "exec-luck").random(workload.num_tasks)
    exec_luck.setflags(write=False)
    return TrialSystem(
        config=config,
        cluster=cluster,
        etc=etc,
        table=table,
        workload=workload,
        budget=budget,
        exec_luck=exec_luck,
    )
