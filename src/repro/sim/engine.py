"""The discrete-event engine: one (heuristic, filter) run over one trial.

Event model
-----------
Two event kinds drive the simulation:

* **arrival** — pulled lazily from the arrival stream (the workload's
  materialized Poisson burst in batch mode, an unbounded traffic
  generator in service mode); only the next pending arrival ever sits
  in the heap, so memory is independent of stream length.  The
  mapper scores all candidates, the filter chain prunes, the heuristic
  decides immediately (immediate-mode, [MaA99]); a task whose feasible
  set is empty is discarded.  Assignments are final: no re-mapping, no
  P-state change after commitment (Section III-B).
* **completion** — the running task's sampled actual execution time
  elapsed.  The core pops its FIFO queue; if empty it parks idle (the
  ledger records the transition; P-states change only while idle).

Ties at identical timestamps process completions before arrivals so a
just-freed core is visible to the mapper; remaining ties follow insertion
order (a monotone sequence number), keeping runs bit-reproducible.

Energy semantics
----------------
The heuristic maintains the paper's running estimate ``zeta(t_l)``
(budget minus EEC of every assignment), which only the energy filter
consults.  Ground truth comes from the transition ledger: after the run,
the first instant cumulative consumed energy crosses the budget is
computed, and on-time completions after that instant do not count
(DESIGN.md §4.4).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol

from repro.cluster.energy import IDLE_PSTATE, EnergyLedger, StreamingEnergyMeter
from repro.filters.chain import FilterChain
from repro.heuristics.base import Heuristic, MappingContext
from repro.perf.kernel_cache import CacheStats, PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.metrics import TraceCollector
from repro.sim.results import TaskOutcome, TrialResult
from repro.sim.state import CoreState, QueuedTask, RollingEnergyBudget, RunningTask
from repro.sim.system import TrialSystem
from repro.stoch.ops import set_kernel_cache
from repro.workload.task import Task

__all__ = ["Engine", "EngineHooks", "Tracer", "run_trial"]

# Event kinds; completions sort before arrivals at equal times.
_COMPLETION = 0
_ARRIVAL = 1


class EngineHooks(Protocol):
    """Extension points invoked by the engine (all optional semantics).

    Implementations may mutate queues through the engine's public
    cancellation API; they must not touch running tasks (the model
    executes committed tasks to completion, Section III-B).
    """

    def on_mapped(self, engine: "Engine", task: Task, core_id: int, pstate: int) -> None:
        """Called after a successful mapping."""

    def on_discarded(self, engine: "Engine", task: Task) -> None:
        """Called when filtering leaves no feasible assignment."""

    def on_completion(self, engine: "Engine", core_id: int, task: Task, t_now: float) -> None:
        """Called after a task finishes and before the next one starts."""


class Tracer(Protocol):
    """Structural interface for span profiling (duck-typed, optional).

    Anything with a ``span(name)`` context manager fits — in practice
    the observability layer's span recorder, but the engine deliberately
    knows only this shape so that package stays un-imported here.  With
    ``tracer=None`` (the default) the event loop takes the bare branch
    and allocates nothing per event.
    """

    def span(self, name: str) -> object:
        """Return a context manager timing one named region."""


@dataclass
class _PendingOutcome:
    core_id: int
    pstate: int
    start: float
    completion: float


class Engine:
    """Simulate one trial under a heuristic and filter chain.

    Parameters
    ----------
    system:
        The generated trial environment (shareable across variants).
    heuristic, filter_chain:
        The policy under test.
    collector:
        Optional :class:`~repro.sim.metrics.TraceCollector`.
    hooks:
        Optional :class:`EngineHooks` for extensions.
    tracer:
        Optional :class:`Tracer` timing each event handler as a span.
    perf:
        Hot-path performance knobs (:class:`~repro.perf.PerfConfig`);
        defaults to everything on.  Strictly results-neutral — see
        :mod:`repro.perf`.  Deliberately *not* part of
        :class:`~repro.config.SimulationConfig`, so manifest/config
        digests are independent of how fast the run was computed.
    shared:
        Optional :class:`~repro.perf.TrialCache` carrying warm state
        from earlier specs of the same trial (kernel cache + builder
        type tables).  When given and its sharing knobs are on, the
        engine *reuses* that cache instead of building a private one;
        ``kernel_cache_stats`` still reports this run's own activity
        (counters are snapshotted at run start).  ``perf`` defaults to
        the handle's config when both are supplied by the runner.
    ledger:
        Energy accountant to record P-state transitions into; ``None``
        (the default) builds the full :class:`EnergyLedger`.  Service
        mode passes a bounded-memory
        :class:`~repro.cluster.energy.StreamingEnergyMeter` (which
        cannot be scored via :meth:`run` — use :meth:`serve`).
    rolling_budget:
        Optional :class:`~repro.sim.state.RollingEnergyBudget`.  When
        given, the heuristic's energy estimate ``zeta`` is the bucket's
        remaining allowance (advanced at each arrival, drawn down per
        mapping) instead of the batch ``budget - sum(EEC)`` estimate.
    tasks_left:
        Override for ``MappingContext.tasks_left``.  Batch mode derives
        it from the workload size; an unbounded stream has no size, so
        service mode pins it to a planning horizon (the energy filter's
        fair-share divisor).
    luck:
        Override for per-task execution luck: maps a task id to the
        uniform quantile of its sampled execution time.  ``None`` reads
        ``system.exec_luck`` (batch).
    track_outcomes:
        Keep the per-task outcome table needed by :meth:`run` scoring.
        Service mode turns it off so memory stays bounded; lateness is
        then classified at completion time by hooks.

    The five service parameters default to batch semantics; any engine
    constructed without them behaves bit-for-bit as before.
    """

    def __init__(
        self,
        system: TrialSystem,
        heuristic: Heuristic,
        filter_chain: FilterChain,
        *,
        collector: TraceCollector | None = None,
        hooks: EngineHooks | None = None,
        tracer: Tracer | None = None,
        perf: PerfConfig | None = None,
        shared: TrialCache | None = None,
        ledger: EnergyLedger | StreamingEnergyMeter | None = None,
        rolling_budget: RollingEnergyBudget | None = None,
        tasks_left: int | None = None,
        luck: Callable[[int], float] | None = None,
        track_outcomes: bool = True,
    ) -> None:
        self.system = system
        self.heuristic = heuristic
        self.filter_chain = filter_chain
        self.collector = collector
        self.hooks = hooks
        self.tracer = tracer
        if perf is None:
            perf = shared.perf if shared is not None else PerfConfig()
        self.perf = perf

        cluster = system.cluster
        dt = system.config.grid.dt
        self.cores: list[CoreState] = [
            CoreState(cid, int(cluster.core_node_index[cid]), dt)
            for cid in range(cluster.num_cores)
        ]
        shared_cache = shared.kernel if shared is not None else None
        if shared_cache is not None and self.perf.kernel_cache:
            self._kernel_cache = shared_cache
        else:
            self._kernel_cache = self.perf.make_cache()
        self._cache_base: CacheStats | None = None
        type_tables = shared.mapper_tables(system.table) if shared is not None else None
        self._builder = (
            CandidateBuilder(self.cores, system.table, type_tables=type_tables)
            if self.perf.batch_mapper
            else None
        )
        self.ledger = (
            EnergyLedger(cluster, system.config.energy.idle_power_mode)
            if ledger is None
            else ledger
        )
        self.rolling_budget = rolling_budget
        self.energy_estimate = (
            system.budget if rolling_budget is None else rolling_budget.remaining
        )
        self._tasks_left_override = tasks_left
        self._luck = luck
        self._track_outcomes = track_outcomes
        self._in_system = 0
        # Heap payloads: the arriving Task, or the completing core id.
        # ``seq`` is unique, so payloads are never compared.
        self._heap: list[tuple[float, int, int, Task | int]] = []
        self._seq = 0
        self._outcomes: dict[int, _PendingOutcome | None] = {}
        self._now = 0.0
        self._ran = False

    # ------------------------------------------------------------------
    # Introspection used by hooks / extensions
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def in_system(self) -> int:
        """Tasks queued or executing, cluster-wide."""
        return self._in_system

    @property
    def avg_queue_depth(self) -> float:
        """Tasks queued or executing per core, cluster-wide."""
        return self._in_system / len(self.cores)

    def kernel_cache_stats(self) -> CacheStats | None:
        """This run's kernel-cache activity (``None`` when disabled).

        With a private cache these are the cache's lifetime counters;
        with a shared :class:`~repro.perf.TrialCache` they are the
        deltas since this engine's ``run()`` started, so per-spec stats
        stay attributable (``entries`` is then the entries this run
        added).  The shared cache's trial-wide totals live on
        ``TrialCache.stats()``.
        """
        if self._kernel_cache is None:
            return None
        stats = self._kernel_cache.stats()
        if self._cache_base is not None:
            stats = stats.since(self._cache_base)
        return stats

    def cancel_queued(self, core_id: int, task_id: int) -> bool:
        """Cancellation extension: drop a *queued* (not running) task.

        The task becomes a discard (it will never complete).  Returns
        whether the task was found and removed.
        """
        entry = self.cores[core_id].remove_queued(task_id)
        if entry is None:
            return False
        self._in_system -= 1
        if self._track_outcomes:
            self._outcomes[task_id] = None  # rebranded as discarded
        return True

    def move_queued(
        self, from_core_id: int, task_id: int, to_core_id: int, pstate: int
    ) -> bool:
        """Rescheduling extension: relocate a *queued* task to another core.

        The baseline model forbids reassignment (Section III-B); this
        method exists for the Section VIII "reschedule tasks" extension
        and is only ever invoked by hooks that opt in.  The task keeps
        its identity; its pmf is re-resolved for the destination node and
        the heuristic's energy estimate is adjusted by the EEC delta.
        Starts immediately if the destination core is idle.  Returns
        whether the task was found and moved.
        """
        if from_core_id == to_core_id:
            return False
        entry = self.cores[from_core_id].remove_queued(task_id)
        if entry is None:
            return False
        task = entry.task
        to_core = self.cores[to_core_id]
        exec_pmf = self.system.table.pmf(task.type_id, to_core.node_index, pstate)
        new_entry = QueuedTask(task=task, pstate=pstate, exec_pmf=exec_pmf)
        eec = self.system.table.eec
        from_node = self.cores[from_core_id].node_index
        old_cost = float(eec[task.type_id, from_node, entry.pstate])
        new_cost = float(eec[task.type_id, to_core.node_index, pstate])
        self.energy_estimate -= new_cost - old_cost
        if self._track_outcomes:
            pending = self._outcomes[task_id]
            assert pending is not None
            pending.core_id = to_core_id
            pending.pstate = pstate
        if to_core.running is None:
            self._start_task(to_core, new_entry, self._now)
        else:
            to_core.enqueue(new_entry)
        return True

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------

    def _push(self, time: float, kind: int, payload: Task | int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, payload))

    def _start_task(self, core: CoreState, entry: QueuedTask, t_now: float) -> None:
        """Begin executing ``entry`` on ``core`` at ``t_now``."""
        task_id = entry.task.task_id
        if self._luck is not None:
            luck = self._luck(task_id)
        else:
            luck = float(self.system.exec_luck[task_id])
        actual = entry.exec_pmf.quantile(luck)
        completion = t_now + actual
        core.set_running(
            RunningTask(
                task=entry.task,
                pstate=entry.pstate,
                exec_pmf=entry.exec_pmf,
                start_time=t_now,
                completion_time=completion,
            )
        )
        self.ledger.record(core.core_id, t_now, entry.pstate)
        if self._track_outcomes:
            pending = self._outcomes[task_id]
            assert pending is not None
            pending.start = t_now
            pending.completion = completion
        self._push(completion, _COMPLETION, core.core_id)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _handle_arrival(self, task: Task, t_now: float) -> None:
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.advance(t_now)
        if self._tasks_left_override is None:
            tasks_left = self.system.num_tasks - task.task_id - 1
        else:
            tasks_left = self._tasks_left_override
        ctx = MappingContext(
            t_now=t_now,
            task=task,
            energy_estimate=self.energy_estimate,
            tasks_left=tasks_left,
            avg_queue_depth=self.avg_queue_depth,
        )
        if self._builder is not None:
            cands = self._builder.build(task, t_now)
        else:
            cands = build_candidate_set(task, self.cores, self.system.table, t_now)
        self.filter_chain.apply(cands, ctx)
        index = self.heuristic.select(cands, ctx)

        if index is None:
            if self._track_outcomes:
                self._outcomes[task.task_id] = None
            if self.collector is not None:
                self.collector.record_mapping(
                    t_now, ctx.avg_queue_depth, self.energy_estimate, -1, cands.num_feasible
                )
            if self.hooks is not None:
                self.hooks.on_discarded(self, task)
            return

        assignment = cands.assignment(index)
        eec = float(cands.eec[index])
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.draw(eec)
        else:
            self.energy_estimate -= eec
        core = self.cores[assignment.core_id]
        exec_pmf = self.system.table.pmf(task.type_id, core.node_index, assignment.pstate)
        entry = QueuedTask(task=task, pstate=assignment.pstate, exec_pmf=exec_pmf)
        if self._track_outcomes:
            self._outcomes[task.task_id] = _PendingOutcome(
                core_id=assignment.core_id,
                pstate=assignment.pstate,
                start=float("nan"),
                completion=float("nan"),
            )
        self._in_system += 1
        if core.running is None:
            self._start_task(core, entry, t_now)
        else:
            core.enqueue(entry)
        if self.collector is not None:
            self.collector.record_mapping(
                t_now,
                ctx.avg_queue_depth,
                self.energy_estimate,
                assignment.pstate,
                cands.num_feasible,
                chosen_prob=float(cands.prob_on_time[index]),
            )
        if self.hooks is not None:
            self.hooks.on_mapped(self, task, assignment.core_id, assignment.pstate)

    def _handle_completion(self, core_id: int, t_now: float) -> None:
        core = self.cores[core_id]
        running = core.running
        assert running is not None, "completion event for an idle core"
        core.clear_running()
        self._in_system -= 1
        if self.hooks is not None:
            self.hooks.on_completion(self, core_id, running.task, t_now)
        if core.running is not None:
            return  # a hook (e.g. work stealing) already started new work
        nxt = core.pop_next()
        if nxt is not None:
            self._start_task(core, nxt, t_now)
        else:
            self.ledger.record(core_id, t_now, IDLE_PSTATE)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> TrialResult:
        """Execute the trial to completion and score it.

        The engine's kernel cache (when enabled) is installed into
        :mod:`repro.stoch.ops` for exactly the duration of this call, so
        nothing is shared across trials and the module global is always
        restored — even on an exception.
        """
        if not self._track_outcomes:
            raise RuntimeError("run() needs outcome tracking; use serve()")
        if self._ran:
            raise RuntimeError("an Engine instance runs exactly once")
        self._ran = True

        if self._kernel_cache is not None:
            # Baseline for per-run stat attribution; all zeros for a
            # private cache, the previous specs' totals for a shared one.
            self._cache_base = self._kernel_cache.stats()
        previous_cache = set_kernel_cache(self._kernel_cache)
        try:
            end_time = self._event_loop(iter(self.system.workload.tasks))
            self.ledger.close(end_time)
            if self.tracer is None:
                return self._score(end_time)
            with self.tracer.span("engine.score"):
                return self._score(end_time)
        finally:
            set_kernel_cache(previous_cache)

    def serve(self, arrivals: Iterable[Task]) -> float:
        """Drive the engine from an arrival stream; return the end time.

        The continuous-service entrypoint: tasks are pulled lazily from
        ``arrivals`` (which may be unbounded — bound it with a horizon or
        task limit before passing it in), committed work drains after the
        stream ends, and no :class:`TrialResult` is scored — windowed
        accounting happens in hooks.  A finite stream replaying the
        workload's own tasks traverses exactly the event trajectory of
        :meth:`run`.
        """
        if self._ran:
            raise RuntimeError("an Engine instance runs exactly once")
        self._ran = True
        if self._kernel_cache is not None:
            self._cache_base = self._kernel_cache.stats()
        previous_cache = set_kernel_cache(self._kernel_cache)
        try:
            end_time = self._event_loop(iter(arrivals))
            self.ledger.close(end_time)
            return end_time
        finally:
            set_kernel_cache(previous_cache)

    def _event_loop(self, arrivals: Iterator[Task]) -> float:
        """Drain events, pulling arrivals lazily; returns the last event time.

        At most one pending arrival lives in the heap: the next one is
        pulled from the stream only when its predecessor pops.  Pushes
        stay in event-causal order, so same-``(time, kind)`` ties resolve
        exactly as the old materialized scheme did (arrivals in stream
        order, completions in schedule order) and finite streams replay
        the batch trajectory bit for bit — while unbounded streams hold
        O(1) future events.
        """
        end_time = 0.0
        tracer = self.tracer
        nxt = next(arrivals, None)
        if nxt is not None:
            self._push(nxt.arrival, _ARRIVAL, nxt)
        if tracer is None:
            # Bare loop: with no tracer, per-event cost is the handler alone.
            while self._heap:
                time, kind, _seq, payload = heapq.heappop(self._heap)
                self._now = time
                end_time = max(end_time, time)
                if kind == _COMPLETION:
                    self._handle_completion(payload, time)
                else:
                    nxt = next(arrivals, None)
                    if nxt is not None:
                        self._push(nxt.arrival, _ARRIVAL, nxt)
                    self._handle_arrival(payload, time)
            return end_time

        while self._heap:
            time, kind, _seq, payload = heapq.heappop(self._heap)
            self._now = time
            end_time = max(end_time, time)
            if kind == _COMPLETION:
                with tracer.span("engine.completion"):
                    self._handle_completion(payload, time)
            else:
                nxt = next(arrivals, None)
                if nxt is not None:
                    self._push(nxt.arrival, _ARRIVAL, nxt)
                with tracer.span("engine.arrival"):
                    self._handle_arrival(payload, time)
        return end_time

    def _score(self, end_time: float) -> TrialResult:
        system = self.system
        exhaustion = self.ledger.exhaustion_time(system.budget)
        outcomes: list[TaskOutcome] = []
        discarded = late = cutoff = within = 0
        for task in system.workload.tasks:
            pending = self._outcomes.get(task.task_id)
            if pending is None:
                discarded += 1
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        type_id=task.type_id,
                        arrival=task.arrival,
                        deadline=task.deadline,
                        core_id=-1,
                        pstate=-1,
                        start=float("nan"),
                        completion=float("nan"),
                        discarded=True,
                    )
                )
                continue
            outcome = TaskOutcome(
                task_id=task.task_id,
                type_id=task.type_id,
                arrival=task.arrival,
                deadline=task.deadline,
                core_id=pending.core_id,
                pstate=pending.pstate,
                start=pending.start,
                completion=pending.completion,
                discarded=False,
            )
            outcomes.append(outcome)
            if not outcome.on_time():
                late += 1
            elif outcome.completion > exhaustion:
                cutoff += 1
            else:
                within += 1
        missed = discarded + late + cutoff
        return TrialResult(
            heuristic=self.heuristic.name,
            variant=self.filter_chain.label,
            seed=system.config.seed,
            num_tasks=system.num_tasks,
            missed=missed,
            completed_within=within,
            discarded=discarded,
            late=late,
            energy_cutoff=cutoff,
            total_energy=self.ledger.total_energy(),
            budget=system.budget,
            exhaustion_time=exhaustion,
            makespan=end_time,
            outcomes=tuple(outcomes),
        )


def run_trial(
    system: TrialSystem,
    heuristic: Heuristic,
    filter_chain: FilterChain,
    *,
    collector: TraceCollector | None = None,
    hooks: EngineHooks | None = None,
    tracer: Tracer | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
) -> TrialResult:
    """Convenience wrapper: construct an :class:`Engine` and run it."""
    return Engine(
        system,
        heuristic,
        filter_chain,
        collector=collector,
        hooks=hooks,
        tracer=tracer,
        perf=perf,
        shared=shared,
    ).run()
