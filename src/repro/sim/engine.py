"""The discrete-event engine: one (heuristic, filter) run over one trial.

Event model
-----------
Two event kinds drive the simulation:

* **arrival** — pulled lazily from the arrival stream (the workload's
  materialized Poisson burst in batch mode, an unbounded traffic
  generator in service mode); only the next pending arrival ever sits
  in the heap, so memory is independent of stream length.  The
  mapper scores all candidates, the filter chain prunes, the heuristic
  decides immediately (immediate-mode, [MaA99]); a task whose feasible
  set is empty is discarded.  Assignments are final: no re-mapping, no
  P-state change after commitment (Section III-B).
* **completion** — the running task's sampled actual execution time
  elapsed.  The core pops its FIFO queue; if empty it parks idle (the
  ledger records the transition; P-states change only while idle).

Ties at identical timestamps process completions before arrivals so a
just-freed core is visible to the mapper; remaining ties follow insertion
order (a monotone sequence number), keeping runs bit-reproducible.

Energy semantics
----------------
The heuristic maintains the paper's running estimate ``zeta(t_l)``
(budget minus EEC of every assignment), which only the energy filter
consults.  Ground truth comes from the transition ledger: after the run,
the first instant cumulative consumed energy crosses the budget is
computed, and on-time completions after that instant do not count
(DESIGN.md §4.4).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol

import numpy as np

from repro.cluster.availability import AvailabilityState
from repro.cluster.energy import IDLE_PSTATE, EnergyLedger, StreamingEnergyMeter
from repro.faults import (
    SHED_MIN_PROB,
    FaultPolicy,
    FaultSchedule,
    FaultStats,
    FaultTransition,
    SheddingConfig,
    make_admission,
)
from repro.filters.chain import FilterChain
from repro.heuristics.base import Heuristic, MappingContext
from repro.perf.kernel_cache import CacheStats, PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.metrics import TraceCollector
from repro.sim.results import TaskOutcome, TrialResult
from repro.sim.state import CoreState, QueuedTask, RollingEnergyBudget, RunningTask
from repro.sim.system import TrialSystem
from repro.stoch.ops import set_kernel_backend, set_kernel_cache
from repro.workload.task import Task

__all__ = ["Engine", "EngineHooks", "Tracer", "run_trial"]

# Event kinds.  At one instant: completions first (a just-freed core is
# visible to the mapper), then fault transitions (an outage at t sees
# work that finished at t as done, and an arrival at t sees the degraded
# cluster), then stream arrivals, then deferred re-arrivals.  The
# relative order of completions and arrivals is unchanged from the
# pre-fault two-kind scheme, so zero-fault runs replay bit for bit.
_COMPLETION = 0
_FAULT = 1
_ARRIVAL = 2
_REARRIVAL = 3


class EngineHooks(Protocol):
    """Extension points invoked by the engine (all optional semantics).

    Implementations may mutate queues through the engine's public
    cancellation API; they must not touch running tasks (the model
    executes committed tasks to completion, Section III-B).
    """

    def on_mapped(self, engine: "Engine", task: Task, core_id: int, pstate: int) -> None:
        """Called after a successful mapping."""

    def on_discarded(self, engine: "Engine", task: Task) -> None:
        """Called when filtering leaves no feasible assignment."""

    def on_completion(self, engine: "Engine", core_id: int, task: Task, t_now: float) -> None:
        """Called after a task finishes and before the next one starts."""

    # Fault-layer callbacks are *optional*: the engine resolves them
    # with getattr at construction, so hook implementations written
    # before the fault model keep working unchanged.
    #
    #   on_fault(engine, transition: FaultTransition)
    #   on_orphaned(engine, task, core_id, disposition)
    #       disposition: "remapped" (displaced, re-placed), "lost"
    #       (displaced, no surviving placement), "killed" (running task
    #       terminated under the "lost" policy)
    #   on_shed(engine, task, cause, deferred: bool)


class Tracer(Protocol):
    """Structural interface for span profiling (duck-typed, optional).

    Anything with a ``span(name)`` context manager fits — in practice
    the observability layer's span recorder, but the engine deliberately
    knows only this shape so that package stays un-imported here.  With
    ``tracer=None`` (the default) the event loop takes the bare branch
    and allocates nothing per event.
    """

    def span(self, name: str) -> object:
        """Return a context manager timing one named region."""


@dataclass
class _PendingOutcome:
    core_id: int
    pstate: int
    start: float
    completion: float


class Engine:
    """Simulate one trial under a heuristic and filter chain.

    Parameters
    ----------
    system:
        The generated trial environment (shareable across variants).
    heuristic, filter_chain:
        The policy under test.
    collector:
        Optional :class:`~repro.sim.metrics.TraceCollector`.
    hooks:
        Optional :class:`EngineHooks` for extensions.
    tracer:
        Optional :class:`Tracer` timing each event handler as a span.
    perf:
        Hot-path performance knobs (:class:`~repro.perf.PerfConfig`);
        defaults to everything on.  Strictly results-neutral — see
        :mod:`repro.perf`.  Deliberately *not* part of
        :class:`~repro.config.SimulationConfig`, so manifest/config
        digests are independent of how fast the run was computed.
    shared:
        Optional :class:`~repro.perf.TrialCache` carrying warm state
        from earlier specs of the same trial (kernel cache + builder
        type tables).  When given and its sharing knobs are on, the
        engine *reuses* that cache instead of building a private one;
        ``kernel_cache_stats`` still reports this run's own activity
        (counters are snapshotted at run start).  ``perf`` defaults to
        the handle's config when both are supplied by the runner.
    ledger:
        Energy accountant to record P-state transitions into; ``None``
        (the default) builds the full :class:`EnergyLedger`.  Service
        mode passes a bounded-memory
        :class:`~repro.cluster.energy.StreamingEnergyMeter` (which
        cannot be scored via :meth:`run` — use :meth:`serve`).
    rolling_budget:
        Optional :class:`~repro.sim.state.RollingEnergyBudget`.  When
        given, the heuristic's energy estimate ``zeta`` is the bucket's
        remaining allowance (advanced at each arrival, drawn down per
        mapping) instead of the batch ``budget - sum(EEC)`` estimate.
    tasks_left:
        Override for ``MappingContext.tasks_left``.  Batch mode derives
        it from the workload size; an unbounded stream has no size, so
        service mode pins it to a planning horizon (the energy filter's
        fair-share divisor).
    luck:
        Override for per-task execution luck: maps a task id to the
        uniform quantile of its sampled execution time.  ``None`` reads
        ``system.exec_luck`` (batch).
    track_outcomes:
        Keep the per-task outcome table needed by :meth:`run` scoring.
        Service mode turns it off so memory stays bounded; lateness is
        then classified at completion time by hooks.

    faults:
        Optional :class:`~repro.faults.FaultSchedule` of in-simulation
        node/core outages and slowdowns.  Fault transitions become heap
        events: on an outage the affected cores stop serving, their
        running tasks are lost or orphaned per ``fault_policy``, queued
        tasks are orphaned and re-mapped through the normal
        heuristic/filter stack against the surviving cluster, and the
        mapper's candidate mask excludes down capacity until recovery.
    fault_policy:
        :class:`~repro.faults.FaultPolicy` for work caught by outages
        (default: running tasks lost, orphans re-mapped).
    shedding:
        Optional :class:`~repro.faults.SheddingConfig`; arrivals are
        deferred or shed when its thresholds trip (overload protection).

    The five service parameters default to batch semantics; any engine
    constructed without them behaves bit-for-bit as before.  The same
    holds for the fault layer: ``faults=None`` (or an empty schedule)
    and ``shedding=None`` (or one with every check disabled) leave the
    event trajectory bitwise identical to the pre-fault engine — the
    zero-fault parity suite pins this.
    """

    def __init__(
        self,
        system: TrialSystem,
        heuristic: Heuristic,
        filter_chain: FilterChain,
        *,
        collector: TraceCollector | None = None,
        hooks: EngineHooks | None = None,
        tracer: Tracer | None = None,
        perf: PerfConfig | None = None,
        shared: TrialCache | None = None,
        ledger: EnergyLedger | StreamingEnergyMeter | None = None,
        rolling_budget: RollingEnergyBudget | None = None,
        tasks_left: int | None = None,
        luck: Callable[[int], float] | None = None,
        track_outcomes: bool = True,
        faults: FaultSchedule | None = None,
        fault_policy: FaultPolicy | None = None,
        shedding: SheddingConfig | None = None,
    ) -> None:
        self.system = system
        self.heuristic = heuristic
        self.filter_chain = filter_chain
        self.collector = collector
        self.hooks = hooks
        self.tracer = tracer
        if perf is None:
            perf = shared.perf if shared is not None else PerfConfig()
        self.perf = perf

        cluster = system.cluster
        dt = system.config.grid.dt
        self.cores: list[CoreState] = [
            CoreState(cid, int(cluster.core_node_index[cid]), dt)
            for cid in range(cluster.num_cores)
        ]
        shared_cache = shared.kernel if shared is not None else None
        if shared_cache is not None and self.perf.kernel_cache:
            self._kernel_cache = shared_cache
        else:
            self._kernel_cache = self.perf.make_cache()
        self._cache_base: CacheStats | None = None
        # Resolved once per engine (cheap after the first: loaded
        # backends are cached per process); installed into stoch.ops for
        # exactly the duration of run()/serve(), like the kernel cache.
        self._kernel_backend = self.perf.make_backend()
        type_tables = shared.mapper_tables(system.table) if shared is not None else None
        self._builder = (
            CandidateBuilder(
                self.cores,
                system.table,
                type_tables=type_tables,
                backend=self._kernel_backend,
            )
            if self.perf.batch_mapper
            else None
        )
        self.ledger = (
            EnergyLedger(cluster, system.config.energy.idle_power_mode)
            if ledger is None
            else ledger
        )
        self.rolling_budget = rolling_budget
        self.energy_estimate = (
            system.budget if rolling_budget is None else rolling_budget.remaining
        )
        self._tasks_left_override = tasks_left
        self._luck = luck
        self._track_outcomes = track_outcomes
        self._in_system = 0

        self.fault_stats = FaultStats()
        self._fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        if faults is not None and faults.events:
            self._fault_transitions: tuple[FaultTransition, ...] = faults.transitions(
                cluster
            )
            self._availability: AvailabilityState | None = AvailabilityState(
                cluster.num_cores, cluster.num_pstates
            )
        else:
            self._fault_transitions = ()
            self._availability = None
        self._fault_next = 0
        self._shedder = (
            make_admission(shedding)
            if shedding is not None and shedding.enabled
            else None
        )
        # Optional fault-layer hooks, resolved once so pre-fault hook
        # implementations (which lack these methods) keep working.
        self._on_fault = getattr(hooks, "on_fault", None)
        self._on_orphaned = getattr(hooks, "on_orphaned", None)
        self._on_shed = getattr(hooks, "on_shed", None)

        # Heap payloads: the arriving Task, a completing (core id,
        # epoch) pair, or a FaultTransition.  ``seq`` is unique, so
        # payloads are never compared.
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._outcomes: dict[int, _PendingOutcome | None] = {}
        self._now = 0.0
        self._ran = False

    # ------------------------------------------------------------------
    # Introspection used by hooks / extensions
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def in_system(self) -> int:
        """Tasks queued or executing, cluster-wide."""
        return self._in_system

    @property
    def avg_queue_depth(self) -> float:
        """Tasks queued or executing per core, cluster-wide."""
        return self._in_system / len(self.cores)

    def kernel_cache_stats(self) -> CacheStats | None:
        """This run's kernel-cache activity (``None`` when disabled).

        With a private cache these are the cache's lifetime counters;
        with a shared :class:`~repro.perf.TrialCache` they are the
        deltas since this engine's ``run()`` started, so per-spec stats
        stay attributable (``entries`` is then the entries this run
        added).  The shared cache's trial-wide totals live on
        ``TrialCache.stats()``.
        """
        if self._kernel_cache is None:
            return None
        stats = self._kernel_cache.stats()
        if self._cache_base is not None:
            stats = stats.since(self._cache_base)
        return stats

    def cancel_queued(self, core_id: int, task_id: int) -> bool:
        """Cancellation extension: drop a *queued* (not running) task.

        The task becomes a discard (it will never complete).  Returns
        whether the task was found and removed.
        """
        entry = self.cores[core_id].remove_queued(task_id)
        if entry is None:
            return False
        self._in_system -= 1
        if self._track_outcomes:
            self._outcomes[task_id] = None  # rebranded as discarded
        return True

    def move_queued(
        self, from_core_id: int, task_id: int, to_core_id: int, pstate: int
    ) -> bool:
        """Rescheduling extension: relocate a *queued* task to another core.

        The baseline model forbids reassignment (Section III-B); this
        method exists for the Section VIII "reschedule tasks" extension
        and is only ever invoked by hooks that opt in.  The task keeps
        its identity; its pmf is re-resolved for the destination node and
        the heuristic's energy estimate is adjusted by the EEC delta.
        Starts immediately if the destination core is idle.  Returns
        whether the task was found and moved.
        """
        if from_core_id == to_core_id:
            return False
        entry = self.cores[from_core_id].remove_queued(task_id)
        if entry is None:
            return False
        task = entry.task
        to_core = self.cores[to_core_id]
        exec_pmf = self.system.table.pmf(task.type_id, to_core.node_index, pstate)
        new_entry = QueuedTask(task=task, pstate=pstate, exec_pmf=exec_pmf)
        eec = self.system.table.eec
        from_node = self.cores[from_core_id].node_index
        old_cost = float(eec[task.type_id, from_node, entry.pstate])
        new_cost = float(eec[task.type_id, to_core.node_index, pstate])
        self.energy_estimate -= new_cost - old_cost
        if self._track_outcomes:
            pending = self._outcomes[task_id]
            assert pending is not None
            pending.core_id = to_core_id
            pending.pstate = pstate
        if to_core.running is None:
            self._start_task(to_core, new_entry, self._now)
        else:
            to_core.enqueue(new_entry)
        return True

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------

    def _push(self, time: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, payload))

    def _start_task(self, core: CoreState, entry: QueuedTask, t_now: float) -> None:
        """Begin executing ``entry`` on ``core`` at ``t_now``."""
        task_id = entry.task.task_id
        if self._luck is not None:
            luck = self._luck(task_id)
        else:
            luck = float(self.system.exec_luck[task_id])
        actual = entry.exec_pmf.quantile(luck)
        completion = t_now + actual
        core.set_running(
            RunningTask(
                task=entry.task,
                pstate=entry.pstate,
                exec_pmf=entry.exec_pmf,
                start_time=t_now,
                completion_time=completion,
            )
        )
        self.ledger.record(core.core_id, t_now, entry.pstate)
        if self._track_outcomes:
            pending = self._outcomes[task_id]
            assert pending is not None
            pending.start = t_now
            pending.completion = completion
        # The epoch invalidates this completion if an outage interrupts
        # the task before it finishes (the stale event is then skipped).
        self._push(completion, _COMPLETION, (core.core_id, core.epoch))

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _budget_frac(self) -> float | None:
        """Remaining energy allowance as a fraction of its cap (or budget)."""
        if self.rolling_budget is not None:
            return self.rolling_budget.remaining / self.rolling_budget.cap
        budget = self.system.budget
        if budget <= 0.0:
            return None
        return max(0.0, self.energy_estimate / budget)

    def _shed(self, task: Task, t_now: float, cause: str) -> None:
        """Terminally drop an arrival under overload (not a discard)."""
        self._shedder.settle(task.task_id)
        self.fault_stats.shed += 1
        if self._track_outcomes:
            self._outcomes[task.task_id] = None
        if self._on_shed is not None:
            self._on_shed(self, task, cause, False)

    def _handle_arrival(self, task: Task, t_now: float) -> None:
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.advance(t_now)
        if self._shedder is not None:
            action, cause = self._shedder.admit(
                task.task_id, self.avg_queue_depth, self._budget_frac()
            )
            if action == "defer":
                self.fault_stats.deferred += 1
                self._push(t_now + self._shedder.config.defer, _REARRIVAL, task)
                if self._on_shed is not None:
                    self._on_shed(self, task, cause, True)
                return
            if action == "shed":
                self._shed(task, t_now, cause)
                return
        if self._tasks_left_override is None:
            tasks_left = self.system.num_tasks - task.task_id - 1
        else:
            tasks_left = self._tasks_left_override
        ctx = MappingContext(
            t_now=t_now,
            task=task,
            energy_estimate=self.energy_estimate,
            tasks_left=tasks_left,
            avg_queue_depth=self.avg_queue_depth,
        )
        if self._builder is not None:
            cands = self._builder.build(task, t_now)
        else:
            cands = build_candidate_set(task, self.cores, self.system.table, t_now)
        if self._availability is not None:
            np.logical_and(cands.mask, self._availability.mask, out=cands.mask)
        self.filter_chain.apply(cands, ctx)
        index = self.heuristic.select(cands, ctx)

        if (
            index is not None
            and self._shedder is not None
            and self._shedder.below_prob_floor(float(cands.prob_on_time[index]))
        ):
            # Probabilistic pruning: the best surviving assignment is
            # still too unlikely to finish on time to be worth its
            # energy.  Recorded as a shed, not a discard.
            if self.collector is not None:
                self.collector.record_mapping(
                    t_now, ctx.avg_queue_depth, self.energy_estimate, -1, cands.num_feasible
                )
            self._shed(task, t_now, SHED_MIN_PROB)
            return

        if index is None:
            if self._track_outcomes:
                self._outcomes[task.task_id] = None
            if self.collector is not None:
                self.collector.record_mapping(
                    t_now, ctx.avg_queue_depth, self.energy_estimate, -1, cands.num_feasible
                )
            if self.hooks is not None:
                self.hooks.on_discarded(self, task)
            return

        assignment = cands.assignment(index)
        eec = float(cands.eec[index])
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.draw(eec)
        else:
            self.energy_estimate -= eec
        core = self.cores[assignment.core_id]
        exec_pmf = self.system.table.pmf(task.type_id, core.node_index, assignment.pstate)
        entry = QueuedTask(task=task, pstate=assignment.pstate, exec_pmf=exec_pmf)
        if self._track_outcomes:
            self._outcomes[task.task_id] = _PendingOutcome(
                core_id=assignment.core_id,
                pstate=assignment.pstate,
                start=float("nan"),
                completion=float("nan"),
            )
        self._in_system += 1
        if core.running is None:
            self._start_task(core, entry, t_now)
        else:
            core.enqueue(entry)
        if self.collector is not None:
            self.collector.record_mapping(
                t_now,
                ctx.avg_queue_depth,
                self.energy_estimate,
                assignment.pstate,
                cands.num_feasible,
                chosen_prob=float(cands.prob_on_time[index]),
            )
        if self.hooks is not None:
            self.hooks.on_mapped(self, task, assignment.core_id, assignment.pstate)

    def _handle_completion(self, payload: tuple[int, int], t_now: float) -> bool:
        core_id, epoch = payload
        core = self.cores[core_id]
        if core.epoch != epoch:
            # Stale event: the task this completion was scheduled for
            # was interrupted by an outage before it could finish.
            return False
        running = core.running
        assert running is not None, "completion event for an idle core"
        core.clear_running()
        self._in_system -= 1
        if self.hooks is not None:
            self.hooks.on_completion(self, core_id, running.task, t_now)
        if core.running is not None:
            return True  # a hook (e.g. work stealing) already started new work
        nxt = core.pop_next()
        if nxt is not None:
            self._start_task(core, nxt, t_now)
        else:
            self.ledger.record(core_id, t_now, IDLE_PSTATE)
        return True

    def _handle_fault(self, transition: FaultTransition, t_now: float) -> None:
        """Fold one fail/recover edge into cluster state and recover work."""
        stats = self.fault_stats
        self._availability.apply(transition)
        if transition.action == "recover":
            # Capacity rejoins: the refreshed mask is all the mapper
            # needs; down cores were drained when they failed.
            if transition.is_outage:
                stats.recoveries += 1
            if self._on_fault is not None:
                self._on_fault(self, transition)
            return
        if not transition.is_outage:
            # Slowdown: committed work keeps its P-state (assignments
            # are final, Section III-B); only future mappings are capped.
            stats.slowdowns += 1
            if self._on_fault is not None:
                self._on_fault(self, transition)
            return

        stats.outages += 1
        policy = self._fault_policy
        orphans: list[tuple[Task, int]] = []
        for core_id in transition.core_ids:
            core = self.cores[core_id]
            if core.running is not None:
                running = core.interrupt()
                self._in_system -= 1
                self.ledger.record(core_id, t_now, IDLE_PSTATE)
                if policy.running == "resume":
                    orphans.append((running.task, core_id))
                else:
                    stats.lost += 1
                    if self._track_outcomes:
                        self._outcomes[running.task.task_id] = None
                    if self._on_orphaned is not None:
                        self._on_orphaned(self, running.task, core_id, "killed")
            for entry in core.drain_queue():
                self._in_system -= 1
                orphans.append((entry.task, core_id))
        if self._on_fault is not None:
            self._on_fault(self, transition)
        # Re-map displaced work in task order through the normal stack
        # against the surviving cluster; failures become losses.
        orphans.sort(key=lambda pair: pair[0].task_id)
        for task, core_id in orphans:
            stats.orphaned += 1
            if policy.remap and self._remap_orphan(task, t_now):
                stats.remapped += 1
                if self._on_orphaned is not None:
                    self._on_orphaned(self, task, core_id, "remapped")
            else:
                stats.lost += 1
                if self._track_outcomes:
                    self._outcomes[task.task_id] = None
                if self._on_orphaned is not None:
                    self._on_orphaned(self, task, core_id, "lost")

    def _remap_orphan(self, task: Task, t_now: float) -> bool:
        """Map a displaced task as if it arrived now; True on success.

        The orphan goes through the same candidate/filter/select path
        as a fresh arrival — ``prob_on_time`` is evaluated against its
        *original* deadline at the current time, and the re-map's EEC
        is charged to the energy estimate (re-execution costs real
        joules).  It keeps its original luck quantile, so the re-run is
        deterministic.
        """
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.advance(t_now)
        if self._tasks_left_override is None:
            tasks_left = self.system.num_tasks - task.task_id - 1
        else:
            tasks_left = self._tasks_left_override
        ctx = MappingContext(
            t_now=t_now,
            task=task,
            energy_estimate=self.energy_estimate,
            tasks_left=tasks_left,
            avg_queue_depth=self.avg_queue_depth,
        )
        if self._builder is not None:
            cands = self._builder.build(task, t_now)
        else:
            cands = build_candidate_set(task, self.cores, self.system.table, t_now)
        np.logical_and(cands.mask, self._availability.mask, out=cands.mask)
        self.filter_chain.apply(cands, ctx)
        index = self.heuristic.select(cands, ctx)
        if index is None:
            if self.collector is not None:
                self.collector.record_mapping(
                    t_now, ctx.avg_queue_depth, self.energy_estimate, -1, cands.num_feasible
                )
            return False
        assignment = cands.assignment(index)
        eec = float(cands.eec[index])
        if self.rolling_budget is not None:
            self.energy_estimate = self.rolling_budget.draw(eec)
        else:
            self.energy_estimate -= eec
        core = self.cores[assignment.core_id]
        exec_pmf = self.system.table.pmf(task.type_id, core.node_index, assignment.pstate)
        entry = QueuedTask(task=task, pstate=assignment.pstate, exec_pmf=exec_pmf)
        if self._track_outcomes:
            self._outcomes[task.task_id] = _PendingOutcome(
                core_id=assignment.core_id,
                pstate=assignment.pstate,
                start=float("nan"),
                completion=float("nan"),
            )
        self._in_system += 1
        if core.running is None:
            self._start_task(core, entry, t_now)
        else:
            core.enqueue(entry)
        if self.collector is not None:
            self.collector.record_mapping(
                t_now,
                ctx.avg_queue_depth,
                self.energy_estimate,
                assignment.pstate,
                cands.num_feasible,
                chosen_prob=float(cands.prob_on_time[index]),
            )
        return True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> TrialResult:
        """Execute the trial to completion and score it.

        The engine's kernel cache (when enabled) is installed into
        :mod:`repro.stoch.ops` for exactly the duration of this call, so
        nothing is shared across trials and the module global is always
        restored — even on an exception.
        """
        if not self._track_outcomes:
            raise RuntimeError("run() needs outcome tracking; use serve()")
        if self._ran:
            raise RuntimeError("an Engine instance runs exactly once")
        self._ran = True

        if self._kernel_cache is not None:
            # Baseline for per-run stat attribution; all zeros for a
            # private cache, the previous specs' totals for a shared one.
            self._cache_base = self._kernel_cache.stats()
        previous_cache = set_kernel_cache(self._kernel_cache)
        previous_backend = set_kernel_backend(self._kernel_backend)
        try:
            end_time = self._event_loop(iter(self.system.workload.tasks))
            self.ledger.close(end_time)
            if self.tracer is None:
                return self._score(end_time)
            with self.tracer.span("engine.score"):
                return self._score(end_time)
        finally:
            set_kernel_backend(previous_backend)
            set_kernel_cache(previous_cache)

    def serve(self, arrivals: Iterable[Task]) -> float:
        """Drive the engine from an arrival stream; return the end time.

        The continuous-service entrypoint: tasks are pulled lazily from
        ``arrivals`` (which may be unbounded — bound it with a horizon or
        task limit before passing it in), committed work drains after the
        stream ends, and no :class:`TrialResult` is scored — windowed
        accounting happens in hooks.  A finite stream replaying the
        workload's own tasks traverses exactly the event trajectory of
        :meth:`run`.
        """
        if self._ran:
            raise RuntimeError("an Engine instance runs exactly once")
        self._ran = True
        if self._kernel_cache is not None:
            self._cache_base = self._kernel_cache.stats()
        previous_cache = set_kernel_cache(self._kernel_cache)
        previous_backend = set_kernel_backend(self._kernel_backend)
        try:
            end_time = self._event_loop(iter(arrivals))
            self.ledger.close(end_time)
            return end_time
        finally:
            set_kernel_backend(previous_backend)
            set_kernel_cache(previous_cache)

    def _event_loop(self, arrivals: Iterator[Task]) -> float:
        """Drain events, pulling arrivals lazily; returns the last event time.

        At most one pending arrival lives in the heap: the next one is
        pulled from the stream only when its predecessor pops.  Pushes
        stay in event-causal order, so same-``(time, kind)`` ties resolve
        exactly as the old materialized scheme did (arrivals in stream
        order, completions in schedule order) and finite streams replay
        the batch trajectory bit for bit — while unbounded streams hold
        O(1) future events.
        """
        end_time = 0.0
        tracer = self.tracer
        nxt = next(arrivals, None)
        if nxt is not None:
            self._push(nxt.arrival, _ARRIVAL, nxt)
        # Fault transitions are pulled lazily like arrivals: one pending
        # edge in the heap at a time.  Fault events never advance
        # ``end_time`` (they do no work themselves), so a recovery
        # scheduled past the last completion cannot inflate makespan.
        transitions = self._fault_transitions
        self._fault_next = 0
        if transitions:
            self._fault_next = 1
            self._push(transitions[0].time, _FAULT, transitions[0])
        if tracer is None:
            # Bare loop: with no tracer, per-event cost is the handler alone.
            while self._heap:
                time, kind, _seq, payload = heapq.heappop(self._heap)
                self._now = time
                if kind == _COMPLETION:
                    if self._handle_completion(payload, time):
                        end_time = max(end_time, time)
                elif kind == _FAULT:
                    if self._fault_next < len(transitions):
                        nxt_tr = transitions[self._fault_next]
                        self._fault_next += 1
                        self._push(nxt_tr.time, _FAULT, nxt_tr)
                    self._handle_fault(payload, time)
                elif kind == _ARRIVAL:
                    end_time = max(end_time, time)
                    nxt = next(arrivals, None)
                    if nxt is not None:
                        self._push(nxt.arrival, _ARRIVAL, nxt)
                    self._handle_arrival(payload, time)
                else:  # _REARRIVAL: a deferred task retries, no stream pull
                    end_time = max(end_time, time)
                    self._handle_arrival(payload, time)
            return end_time

        while self._heap:
            time, kind, _seq, payload = heapq.heappop(self._heap)
            self._now = time
            if kind == _COMPLETION:
                with tracer.span("engine.completion"):
                    if self._handle_completion(payload, time):
                        end_time = max(end_time, time)
            elif kind == _FAULT:
                if self._fault_next < len(transitions):
                    nxt_tr = transitions[self._fault_next]
                    self._fault_next += 1
                    self._push(nxt_tr.time, _FAULT, nxt_tr)
                with tracer.span("engine.fault"):
                    self._handle_fault(payload, time)
            elif kind == _ARRIVAL:
                end_time = max(end_time, time)
                nxt = next(arrivals, None)
                if nxt is not None:
                    self._push(nxt.arrival, _ARRIVAL, nxt)
                with tracer.span("engine.arrival"):
                    self._handle_arrival(payload, time)
            else:  # _REARRIVAL
                end_time = max(end_time, time)
                with tracer.span("engine.arrival"):
                    self._handle_arrival(payload, time)
        return end_time

    def score(self, end_time: float) -> TrialResult:
        """Score a finished :meth:`serve` run of the full workload.

        Only valid after the engine drained a stream that offered every
        workload task (a complete, untruncated replay): scoring walks
        ``system.workload.tasks`` and treats anything unseen as missed.
        Such a replay traverses exactly the trajectory of :meth:`run`,
        so the result matches the batch score bit for bit.
        """
        if not self._track_outcomes:
            raise RuntimeError("score() needs outcome tracking")
        if not self._ran:
            raise RuntimeError("score() comes after serve()")
        return self._score(end_time)

    def _score(self, end_time: float) -> TrialResult:
        system = self.system
        exhaustion = self.ledger.exhaustion_time(system.budget)
        outcomes: list[TaskOutcome] = []
        discarded = late = cutoff = within = 0
        for task in system.workload.tasks:
            pending = self._outcomes.get(task.task_id)
            if pending is None:
                discarded += 1
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        type_id=task.type_id,
                        arrival=task.arrival,
                        deadline=task.deadline,
                        core_id=-1,
                        pstate=-1,
                        start=float("nan"),
                        completion=float("nan"),
                        discarded=True,
                    )
                )
                continue
            outcome = TaskOutcome(
                task_id=task.task_id,
                type_id=task.type_id,
                arrival=task.arrival,
                deadline=task.deadline,
                core_id=pending.core_id,
                pstate=pending.pstate,
                start=pending.start,
                completion=pending.completion,
                discarded=False,
            )
            outcomes.append(outcome)
            if not outcome.on_time():
                late += 1
            elif outcome.completion > exhaustion:
                cutoff += 1
            else:
                within += 1
        missed = discarded + late + cutoff
        return TrialResult(
            heuristic=self.heuristic.name,
            variant=self.filter_chain.label,
            seed=system.config.seed,
            num_tasks=system.num_tasks,
            missed=missed,
            completed_within=within,
            discarded=discarded,
            late=late,
            energy_cutoff=cutoff,
            total_energy=self.ledger.total_energy(),
            budget=system.budget,
            exhaustion_time=exhaustion,
            makespan=end_time,
            outcomes=tuple(outcomes),
        )


def run_trial(
    system: TrialSystem,
    heuristic: Heuristic,
    filter_chain: FilterChain,
    *,
    collector: TraceCollector | None = None,
    hooks: EngineHooks | None = None,
    tracer: Tracer | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    shedding: SheddingConfig | None = None,
) -> TrialResult:
    """Convenience wrapper: construct an :class:`Engine` and run it."""
    return Engine(
        system,
        heuristic,
        filter_chain,
        collector=collector,
        hooks=hooks,
        tracer=tracer,
        perf=perf,
        shared=shared,
        faults=faults,
        fault_policy=fault_policy,
        shedding=shedding,
    ).run()
