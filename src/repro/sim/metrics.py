"""Optional time-series traces and windowed metrics of a running trial.

The engine emits samples into a :class:`TraceCollector` when one is
supplied; the default (no collector) keeps the hot path allocation-free.
Traces feed the examples and the diagnostic analysis in
:mod:`repro.analysis`, not the headline results.

The collector stores *columnar* per-mapping samples for NumPy analysis.
For typed per-event records (JSONL traces, counters/histograms, run
manifests) use :mod:`repro.obs`, which attaches through the engine's
``EngineHooks`` protocol instead.

Continuous-service mode cannot keep per-task state, so it aggregates
into fixed-length time windows instead: :class:`WindowStats` is the
per-window summary — a monoid under :meth:`WindowStats.merge`, so
concatenating adjacent windows is exactly the summary of the combined
span — and :class:`WindowAccumulator` folds engine events into a
contiguous run of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "TraceCollector",
    "WindowStats",
    "WindowAccumulator",
    "derived_window_metrics",
]


@dataclass
class TraceCollector:
    """Accumulates per-event samples of system state.

    Attributes
    ----------
    arrival_times:
        Time of each mapping event.
    queue_depths:
        Cluster-average queue depth at each mapping event.
    energy_estimates:
        The heuristic's remaining-energy estimate ``zeta(t_l)`` after
        each mapping event.
    chosen_pstates:
        P-state chosen at each successful mapping (-1 for discards).
    chosen_probs:
        ``rho(i, j, k, pi, t_l, z)`` of the chosen assignment (0.0 for
        discards).  Their running sum is the allocation's *predicted*
        number of on-time completions — the robustness measure whose
        predictive validity the paper's contribution (a) claims.
    feasible_counts:
        Number of feasible assignments left after filtering.
    """

    arrival_times: list[float] = field(default_factory=list)
    queue_depths: list[float] = field(default_factory=list)
    energy_estimates: list[float] = field(default_factory=list)
    chosen_pstates: list[int] = field(default_factory=list)
    chosen_probs: list[float] = field(default_factory=list)
    feasible_counts: list[int] = field(default_factory=list)

    def record_mapping(
        self,
        t_now: float,
        queue_depth: float,
        energy_estimate: float,
        chosen_pstate: int,
        feasible: int,
        chosen_prob: float = 0.0,
    ) -> None:
        """Store one mapping event's snapshot."""
        self.arrival_times.append(t_now)
        self.queue_depths.append(queue_depth)
        self.energy_estimates.append(energy_estimate)
        self.chosen_pstates.append(chosen_pstate)
        self.chosen_probs.append(chosen_prob)
        self.feasible_counts.append(feasible)

    def predicted_on_time(self) -> float:
        """Expected on-time completions as predicted at mapping time.

        The sum over mapped tasks of their assignment's on-time
        probability — the scheduler-side robustness aggregate.  Compare
        with the trial's realized on-time count (before the energy
        cutoff) to validate the robustness model's predictions.
        """
        return float(sum(self.chosen_probs))

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Return all traces as NumPy arrays keyed by field name."""
        return {
            "arrival_times": np.array(self.arrival_times),
            "queue_depths": np.array(self.queue_depths),
            "energy_estimates": np.array(self.energy_estimates),
            "chosen_pstates": np.array(self.chosen_pstates, dtype=np.int64),
            "chosen_probs": np.array(self.chosen_probs),
            "feasible_counts": np.array(self.feasible_counts, dtype=np.int64),
        }

    def pstate_histogram(self, num_pstates: int) -> np.ndarray:
        """Counts of chosen P-states (discards excluded)."""
        chosen = np.array([p for p in self.chosen_pstates if p >= 0], dtype=np.int64)
        return np.bincount(chosen, minlength=num_pstates)


@dataclass(frozen=True)
class WindowStats:
    """Service metrics over one time window ``[start, end)``.

    Events are attributed to the window containing their event time
    (arrivals at arrival, completions at completion), making the type a
    monoid under :meth:`merge`: counts and window energy add, while the
    "state at window end" fields (``budget_remaining``, ``in_system_end``)
    take the later window's value.

    ``energy`` is the cluster energy consumed within the window;
    ``budget_remaining`` is the rolling allowance at the window's end
    (``nan`` when no rolling budget is configured).

    The fault-layer fields (``shed``, ``deferred``, ``orphaned``,
    ``remapped``, ``lost``) stay zero unless a fault schedule or
    shedding config is active: ``shed`` arrivals were dropped by the
    admission controller, ``deferred`` counts retry pushes (not
    terminal), ``orphaned`` tasks were displaced by an outage,
    ``remapped`` is the subset successfully re-placed, and ``lost``
    covers killed running tasks plus orphans no surviving core could
    take.
    """

    start: float
    end: float
    mapped: int = 0
    discarded: int = 0
    completed: int = 0
    on_time: int = 0
    late: int = 0
    energy: float = 0.0
    budget_remaining: float = float("nan")
    in_system_end: int = 0
    shed: int = 0
    deferred: int = 0
    orphaned: int = 0
    remapped: int = 0
    lost: int = 0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} precedes start {self.start}")
        for name in (
            "mapped",
            "discarded",
            "completed",
            "on_time",
            "late",
            "shed",
            "deferred",
            "orphaned",
            "remapped",
            "lost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.completed != self.on_time + self.late:
            raise ValueError("completed must equal on_time + late")

    @property
    def arrivals(self) -> int:
        """Tasks whose admission was settled in the window.

        Every arrival ends mapped, discarded, or shed; a *deferred*
        arrival is still pending (it settles, and counts, in the window
        of its final disposition).
        """
        return self.mapped + self.discarded + self.shed

    @property
    def on_time_frac(self) -> float:
        """On-time fraction of this window's completions (``nan`` if none)."""
        return self.on_time / self.completed if self.completed else math.nan

    def merge(self, other: "WindowStats") -> "WindowStats":
        """Combine with the adjacent later window (``other.start == self.end``)."""
        if other.start != self.end:
            raise ValueError(
                f"windows must be contiguous: {self.end} != {other.start}"
            )
        return WindowStats(
            start=self.start,
            end=other.end,
            mapped=self.mapped + other.mapped,
            discarded=self.discarded + other.discarded,
            completed=self.completed + other.completed,
            on_time=self.on_time + other.on_time,
            late=self.late + other.late,
            energy=self.energy + other.energy,
            budget_remaining=other.budget_remaining,
            in_system_end=other.in_system_end,
            shed=self.shed + other.shed,
            deferred=self.deferred + other.deferred,
            orphaned=self.orphaned + other.orphaned,
            remapped=self.remapped + other.remapped,
            lost=self.lost + other.lost,
        )

    @staticmethod
    def merge_all(windows: Iterable["WindowStats"]) -> "WindowStats":
        """Fold a contiguous window run into one covering window."""
        it = iter(windows)
        try:
            total = next(it)
        except StopIteration:
            raise ValueError("merge_all needs at least one window") from None
        for w in it:
            total = total.merge(w)
        return total

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (``budget_remaining`` null when unset)."""
        budget = None if math.isnan(self.budget_remaining) else self.budget_remaining
        return {
            "start": self.start,
            "end": self.end,
            "arrivals": self.arrivals,
            "mapped": self.mapped,
            "discarded": self.discarded,
            "completed": self.completed,
            "on_time": self.on_time,
            "late": self.late,
            "energy": self.energy,
            "budget_remaining": budget,
            "in_system_end": self.in_system_end,
            "shed": self.shed,
            "deferred": self.deferred,
            "orphaned": self.orphaned,
            "remapped": self.remapped,
            "lost": self.lost,
        }


def derived_window_metrics(
    row: Mapping[str, Any], *, budget_rate: float | None = None
) -> dict[str, float]:
    """Operational metrics derived from one window row.

    ``row`` is a :meth:`WindowStats.to_dict` mapping (or a parsed
    ``repro.window/...`` JSONL row — the two share a schema).  The result
    is the flat metric namespace the telemetry layer, the SLO rule
    engine, steady-state analysis and ``repro monitor`` all evaluate
    against: raw counts pass through as floats, plus

    * ``duration`` — window length in simulated seconds;
    * ``arrival_rate`` / ``throughput`` — arrivals and completions per
      second;
    * ``on_time_prob`` — on-time fraction of completions (``nan`` when
      the window completed nothing);
    * ``queue_depth`` — tasks in system at window end;
    * ``power`` — mean consumed watts over the window;
    * ``budget_remaining`` — rolling allowance at window end (``nan``
      when no rolling budget is configured);
    * ``burn_rate`` — consumed energy over accrued allowance for the
      window (needs ``budget_rate`` in joules/second; ``nan`` otherwise).
      1.0 burns exactly what accrues; sustained > 1.0 drains the pool.
    """
    start = float(row.get("start", 0.0))
    end = float(row.get("end", start))
    duration = end - start
    completed = float(row.get("completed", 0))
    on_time = float(row.get("on_time", 0))
    energy = float(row.get("energy", 0.0))
    budget = row.get("budget_remaining")
    metrics: dict[str, float] = {
        "start": start,
        "end": end,
        "duration": duration,
        "on_time_prob": on_time / completed if completed else math.nan,
        "queue_depth": float(row.get("in_system_end", 0)),
        "budget_remaining": math.nan if budget is None else float(budget),
    }
    for key in (
        "arrivals",
        "mapped",
        "discarded",
        "completed",
        "on_time",
        "late",
        "energy",
        "shed",
        "deferred",
        "orphaned",
        "remapped",
        "lost",
    ):
        metrics[key] = float(row.get(key, 0))
    if duration > 0.0:
        metrics["arrival_rate"] = metrics["arrivals"] / duration
        metrics["throughput"] = completed / duration
        metrics["power"] = energy / duration
    else:
        metrics["arrival_rate"] = metrics["throughput"] = metrics["power"] = math.nan
    if budget_rate is not None and budget_rate > 0.0 and duration > 0.0:
        metrics["burn_rate"] = energy / (budget_rate * duration)
    else:
        metrics["burn_rate"] = math.nan
    return metrics


class WindowAccumulator:
    """Folds engine events into contiguous :class:`WindowStats` windows.

    Windows are ``[k*window, (k+1)*window)`` from ``start``; a window
    closes when the first event at or past its end arrives (there is no
    wall clock — simulated time only advances with events), and
    :meth:`flush` closes the trailing partial window at the run's end
    time.  Memory is O(1) plus the closed-window list the caller drains.

    ``energy_at`` maps a simulation time to cumulative consumed energy
    (e.g. ``StreamingEnergyMeter.consumed_at``); window energies are
    consecutive differences, so they telescope — merging every window
    reproduces the whole run's consumption exactly.  ``budget`` is an
    optional :class:`~repro.sim.state.RollingEnergyBudget` sampled at
    each boundary.  ``on_close`` is called with each window as it
    closes (the service layer feeds live telemetry through it); it
    observes a finished value and must not mutate accumulator state.
    """

    def __init__(
        self,
        window: float,
        *,
        start: float = 0.0,
        energy_at: Callable[[float], float] | None = None,
        budget: Any | None = None,
        on_close: Callable[[WindowStats], None] | None = None,
    ) -> None:
        if not (window > 0.0):
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.closed: list[WindowStats] = []
        self._on_close = on_close
        self._start = float(start)
        self._end = self._start + self.window
        self._energy_at = energy_at
        self._budget = budget
        self._energy_base = energy_at(self._start) if energy_at is not None else 0.0
        self._mapped = 0
        self._discarded = 0
        self._completed = 0
        self._on_time = 0
        self._late = 0
        self._in_system = 0
        self._shed = 0
        self._deferred = 0
        self._orphaned = 0
        self._remapped = 0
        self._lost = 0

    # -- event callbacks (driven by the service hooks) -------------------

    def on_mapped(self, t: float, in_system: int) -> None:
        """A task was mapped at ``t`` with ``in_system`` tasks in flight."""
        self._roll(t)
        self._mapped += 1
        self._in_system = in_system

    def on_discarded(self, t: float, in_system: int) -> None:
        """A task was discarded at ``t``."""
        self._roll(t)
        self._discarded += 1
        self._in_system = in_system

    def on_completion(self, t: float, late: bool, in_system: int) -> None:
        """A task completed at ``t``; ``late`` if past its deadline."""
        self._roll(t)
        self._completed += 1
        if late:
            self._late += 1
        else:
            self._on_time += 1
        self._in_system = in_system

    def on_shed(self, t: float, in_system: int, *, deferred: bool) -> None:
        """An arrival was deferred (retry pending) or shed (dropped)."""
        self._roll(t)
        if deferred:
            self._deferred += 1
        else:
            self._shed += 1
        self._in_system = in_system

    def on_orphaned(self, t: float, in_system: int, *, disposition: str) -> None:
        """An outage hit a task: ``remapped``, ``lost``, or ``killed``.

        ``remapped``/``lost`` tasks were displaced (and count as
        orphaned); ``killed`` running tasks were terminated outright
        under the ``"lost"`` policy and count only as lost.
        """
        self._roll(t)
        if disposition == "remapped":
            self._orphaned += 1
            self._remapped += 1
        elif disposition == "lost":
            self._orphaned += 1
            self._lost += 1
        elif disposition == "killed":
            self._lost += 1
        else:
            raise ValueError(f"unknown orphan disposition {disposition!r}")
        self._in_system = in_system

    # -- window management ----------------------------------------------

    def _roll(self, t: float) -> None:
        while t >= self._end:
            self._close(self._end)

    def _close(self, end: float) -> None:
        energy = 0.0
        if self._energy_at is not None:
            level = self._energy_at(end)
            energy = level - self._energy_base
            self._energy_base = level
        remaining = (
            self._budget.peek(end) if self._budget is not None else float("nan")
        )
        stats = WindowStats(
            start=self._start,
            end=end,
            mapped=self._mapped,
            discarded=self._discarded,
            completed=self._completed,
            on_time=self._on_time,
            late=self._late,
            energy=energy,
            budget_remaining=remaining,
            in_system_end=self._in_system,
            shed=self._shed,
            deferred=self._deferred,
            orphaned=self._orphaned,
            remapped=self._remapped,
            lost=self._lost,
        )
        self.closed.append(stats)
        if self._on_close is not None:
            self._on_close(stats)
        self._mapped = self._discarded = 0
        self._completed = self._on_time = self._late = 0
        self._shed = self._deferred = 0
        self._orphaned = self._remapped = self._lost = 0
        self._start = end
        self._end = end + self.window

    def flush(self, end_time: float) -> list[WindowStats]:
        """Close the trailing partial window at ``end_time``; return all.

        The final window spans ``[start, end_time]`` (shorter than
        ``window`` unless the last event fell exactly on a boundary).
        """
        if end_time > self._start or not self.closed:
            self._close(max(end_time, self._start))
        return self.closed
