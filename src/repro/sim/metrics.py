"""Optional time-series traces of a running trial.

The engine emits samples into a :class:`TraceCollector` when one is
supplied; the default (no collector) keeps the hot path allocation-free.
Traces feed the examples and the diagnostic analysis in
:mod:`repro.analysis`, not the headline results.

The collector stores *columnar* per-mapping samples for NumPy analysis.
For typed per-event records (JSONL traces, counters/histograms, run
manifests) use :mod:`repro.obs`, which attaches through the engine's
``EngineHooks`` protocol instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceCollector"]


@dataclass
class TraceCollector:
    """Accumulates per-event samples of system state.

    Attributes
    ----------
    arrival_times:
        Time of each mapping event.
    queue_depths:
        Cluster-average queue depth at each mapping event.
    energy_estimates:
        The heuristic's remaining-energy estimate ``zeta(t_l)`` after
        each mapping event.
    chosen_pstates:
        P-state chosen at each successful mapping (-1 for discards).
    chosen_probs:
        ``rho(i, j, k, pi, t_l, z)`` of the chosen assignment (0.0 for
        discards).  Their running sum is the allocation's *predicted*
        number of on-time completions — the robustness measure whose
        predictive validity the paper's contribution (a) claims.
    feasible_counts:
        Number of feasible assignments left after filtering.
    """

    arrival_times: list[float] = field(default_factory=list)
    queue_depths: list[float] = field(default_factory=list)
    energy_estimates: list[float] = field(default_factory=list)
    chosen_pstates: list[int] = field(default_factory=list)
    chosen_probs: list[float] = field(default_factory=list)
    feasible_counts: list[int] = field(default_factory=list)

    def record_mapping(
        self,
        t_now: float,
        queue_depth: float,
        energy_estimate: float,
        chosen_pstate: int,
        feasible: int,
        chosen_prob: float = 0.0,
    ) -> None:
        """Store one mapping event's snapshot."""
        self.arrival_times.append(t_now)
        self.queue_depths.append(queue_depth)
        self.energy_estimates.append(energy_estimate)
        self.chosen_pstates.append(chosen_pstate)
        self.chosen_probs.append(chosen_prob)
        self.feasible_counts.append(feasible)

    def predicted_on_time(self) -> float:
        """Expected on-time completions as predicted at mapping time.

        The sum over mapped tasks of their assignment's on-time
        probability — the scheduler-side robustness aggregate.  Compare
        with the trial's realized on-time count (before the energy
        cutoff) to validate the robustness model's predictions.
        """
        return float(sum(self.chosen_probs))

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Return all traces as NumPy arrays keyed by field name."""
        return {
            "arrival_times": np.array(self.arrival_times),
            "queue_depths": np.array(self.queue_depths),
            "energy_estimates": np.array(self.energy_estimates),
            "chosen_pstates": np.array(self.chosen_pstates, dtype=np.int64),
            "chosen_probs": np.array(self.chosen_probs),
            "feasible_counts": np.array(self.feasible_counts, dtype=np.int64),
        }

    def pstate_histogram(self, num_pstates: int) -> np.ndarray:
        """Counts of chosen P-states (discards excluded)."""
        chosen = np.array([p for p in self.chosen_pstates if p >= 0], dtype=np.int64)
        return np.bincount(chosen, minlength=num_pstates)
