"""Building the vectorized candidate set for one arriving task.

For a task of type ``tau`` arriving at ``t_l``, every (core, P-state)
pair is a potential assignment.  This module assembles the aligned arrays
of Section V-A quantities over all candidates in candidate order
(core-major, then P-state):

* ``EET`` and ``EEC`` come straight from the precomputed tables;
* ``ECT`` is the core's expected ready time plus EET (linearity of
  expectation over the convolution, so no pmf product is formed);
* ``rho`` (on-time probability) is one padded-matrix pass per core
  against the core's ready-time CDF.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.heuristics.base import CandidateSet
from repro.robustness.completion import prob_on_time_all_pstates
from repro.sim.state import CoreState
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.task import Task

__all__ = ["build_candidates"]


def build_candidates(
    task: Task,
    cores: Sequence[CoreState],
    table: ExecutionTimeTable,
    t_now: float,
) -> CandidateSet:
    """Assemble the :class:`~repro.heuristics.base.CandidateSet` for ``task``."""
    cluster = table.cluster
    C = cluster.num_cores
    P = cluster.num_pstates
    core_node = cluster.core_node_index

    eet_np = table.eet[task.type_id]  # (N, P)
    eec_np = table.eec[task.type_id]  # (N, P)
    eet = eet_np[core_node]  # (C, P)
    eec = eec_np[core_node]

    ready_means = np.empty(C)
    prob = np.empty((C, P))
    queue_len = np.empty(C, dtype=np.int64)
    for c in range(C):
        core = cores[c]
        ready = core.ready_pmf(t_now)
        ready_means[c] = ready.mean()
        pad = table.padded(task.type_id, core.node_index)
        prob[c] = prob_on_time_all_pstates(ready, pad.times, pad.probs, task.deadline)
        queue_len[c] = core.assigned_count

    ect = ready_means[:, None] + eet

    core_ids = np.repeat(np.arange(C), P)
    pstates = np.tile(np.arange(P), C)
    return CandidateSet(
        core_ids=core_ids,
        pstates=pstates,
        queue_len=np.repeat(queue_len, P),
        eet=eet.ravel(),
        eec=eec.ravel(),
        ect=ect.ravel(),
        prob_on_time=prob.ravel(),
    )
