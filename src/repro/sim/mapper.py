"""Building the vectorized candidate set for one arriving task.

For a task of type ``tau`` arriving at ``t_l``, every (core, P-state)
pair is a potential assignment.  This module assembles the aligned arrays
of Section V-A quantities over all candidates in candidate order
(core-major, then P-state):

* ``EET`` and ``EEC`` come straight from the precomputed tables;
* ``ECT`` is the core's expected ready time plus EET (linearity of
  expectation over the convolution, so no pmf product is formed);
* ``rho`` (on-time probability) is one padded-matrix pass per core
  against the core's ready-time CDF.

Two implementations produce bitwise-identical candidate sets:

* :func:`build_candidate_set` — the reference per-core loop, kept as the
  ground truth for the perf-layer parity tests and as the fallback when
  the performance layer is disabled;
* :class:`CandidateBuilder` — the batch path the engine uses by default.
  It precomputes the per-candidate coordinate arrays once per trial,
  shares a single degenerate ready pmf across all idle cores, and
  deduplicates the per-core probability rows by ``(node, ready pmf)`` —
  every idle core of a node yields the same row, so a mostly-idle
  cluster computes a handful of rows instead of one per core.  The
  arithmetic expressions are identical to the reference loop's, so the
  results match bit for bit (``tests/perf/test_parity.py``).
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.heuristics.base import CandidateSet
from repro.robustness.completion import prob_on_time_all_pstates
from repro.sim.state import CoreState
from repro.stoch.pmf import PMF
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.task import Task

__all__ = ["CandidateBuilder", "build_candidate_set", "build_candidates"]


def build_candidate_set(
    task: Task,
    cores: Sequence[CoreState],
    table: ExecutionTimeTable,
    t_now: float,
) -> CandidateSet:
    """Assemble the :class:`~repro.heuristics.base.CandidateSet` for ``task``.

    Reference implementation: one pass over every core.  The engine's
    default is the equivalent (and faster) :class:`CandidateBuilder`.
    """
    cluster = table.cluster
    C = cluster.num_cores
    P = cluster.num_pstates
    core_node = cluster.core_node_index

    eet_np = table.eet[task.type_id]  # (N, P)
    eec_np = table.eec[task.type_id]  # (N, P)
    eet = eet_np[core_node]  # (C, P)
    eec = eec_np[core_node]

    ready_means = np.empty(C)
    prob = np.empty((C, P))
    queue_len = np.empty(C, dtype=np.int64)
    for c in range(C):
        core = cores[c]
        ready = core.ready_pmf(t_now)
        ready_means[c] = ready.mean()
        pad = table.padded(task.type_id, core.node_index)
        prob[c] = prob_on_time_all_pstates(ready, pad.times, pad.probs, task.deadline)
        queue_len[c] = core.assigned_count

    ect = ready_means[:, None] + eet

    core_ids = np.repeat(np.arange(C), P)
    pstates = np.tile(np.arange(P), C)
    return CandidateSet(
        core_ids=core_ids,
        pstates=pstates,
        queue_len=np.repeat(queue_len, P),
        eet=eet.ravel(),
        eec=eec.ravel(),
        ect=ect.ravel(),
        prob_on_time=prob.ravel(),
    )


class CandidateBuilder:
    """Per-trial candidate-set builder with batched array construction.

    Bound to one core list and one execution-time table (both live for a
    whole trial), so the candidate coordinate arrays — identical for
    every arrival — are built once.  Per arrival it shares one
    degenerate ready pmf across all idle cores and computes one
    probability row per *distinct* ``(node, ready pmf)`` pair instead of
    one per core.  Output is bitwise identical to
    :func:`build_candidate_set`.
    """

    __slots__ = (
        "_cores",
        "_table",
        "_num_cores",
        "_num_pstates",
        "_num_nodes",
        "_core_ids",
        "_pstates",
        "_dt",
        "_node_cores",
        "_by_type",
        "_backend",
    )

    def __init__(
        self,
        cores: Sequence[CoreState],
        table: ExecutionTimeTable,
        *,
        type_tables: dict | None = None,
        backend=None,
    ) -> None:
        self._cores = list(cores)
        self._table = table
        cluster = table.cluster
        if len(self._cores) != cluster.num_cores:
            raise ValueError("core list does not match the table's cluster")
        self._num_cores = cluster.num_cores
        self._num_pstates = cluster.num_pstates
        self._num_nodes = cluster.num_nodes
        core_ids = np.repeat(np.arange(self._num_cores), self._num_pstates)
        pstates = np.tile(np.arange(self._num_pstates), self._num_cores)
        core_ids.setflags(write=False)
        pstates.setflags(write=False)
        self._core_ids = core_ids
        self._pstates = pstates
        self._dt = table.grid.dt
        # Cores grouped by node: collecting distinct ready pmfs in node
        # order keeps each node's rows contiguous, so the per-node dot
        # can run on array slices without gather copies.
        grouped: dict[int, list[int]] = {}
        for c, core in enumerate(self._cores):
            grouped.setdefault(core.node_index, []).append(c)
        self._node_cores: list[tuple[int, list[int]]] = list(grouped.items())
        # Per-type gathers and node-stacked padded matrices, built on
        # first use; identical values to the per-arrival lookups of the
        # reference loop, shared read-only across arrivals.  A caller
        # holding several builders over the *same* table (the specs of
        # one trial) may pass a shared ``type_tables`` dict so the
        # tables are built once per trial instead of once per spec —
        # entries are pure functions of (table, type_id), so sharing is
        # exact.
        self._by_type: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = type_tables if type_tables is not None else {}
        # Optional compiled kernel set (repro.perf.KernelBackend): when
        # set, the probability rows come from one compiled score_rows
        # call instead of the batched numpy passes.  Same inputs, same
        # index arithmetic; only the row reductions accumulate
        # sequentially (the documented compiled-backend tolerance).
        self._backend = backend

    def _type_tables(
        self, type_id: int
    ) -> tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        tuple[int, ...],
        np.ndarray,
    ]:
        cached = self._by_type.get(type_id)
        if cached is None:
            cluster = self._table.cluster
            core_node = cluster.core_node_index
            eet = self._table.eet[type_id][core_node]  # (C, P)
            eec_flat = self._table.eec[type_id][core_node].ravel()
            eet_flat = eet.ravel()
            # Every node's padded (P, L) matrices stacked to a common
            # width so one batched pass covers all nodes.  The extra
            # columns extend the table's own padding scheme — zero
            # probability, times repeating the row's last impulse — so
            # the index/gather passes can run rectangularly; each node's
            # *native* width is kept so row reductions run over exactly
            # the reference's term count (an appended ``+0.0`` term is
            # value-neutral but can change the reduction's accumulator
            # blocking, which is a bitwise difference).
            pads = [self._table.padded(type_id, n) for n in range(self._num_nodes)]
            widths = tuple(pad.times.shape[1] for pad in pads)
            width = max(widths)
            times_stack = np.empty((self._num_nodes, self._num_pstates, width))
            probs_stack = np.zeros((self._num_nodes, self._num_pstates, width))
            for n, pad in enumerate(pads):
                length = widths[n]
                times_stack[n, :, :length] = pad.times
                times_stack[n, :, length:] = pad.times[:, -1:]
                probs_stack[n, :, :length] = pad.probs
            # int64 mirror of ``widths`` for compiled score_rows calls
            # (ctypes / numba take an array, not a Python tuple).
            widths_arr = np.array(widths, dtype=np.int64)
            for arr in (eet, eet_flat, eec_flat, times_stack, probs_stack, widths_arr):
                arr.setflags(write=False)
            cached = (eet, eet_flat, eec_flat, times_stack, probs_stack, widths, widths_arr)
            self._by_type[type_id] = cached
        return cached

    def build(self, task: Task, t_now: float) -> CandidateSet:
        """Assemble the candidate set for one arrival at ``t_now``."""
        table = self._table
        cores = self._cores
        C = self._num_cores
        P = self._num_pstates
        dt = self._dt
        deadline = task.deadline
        type_id = task.type_id

        eet, eet_flat, eec_flat, times_stack, probs_stack, widths, widths_arr = (
            self._type_tables(type_id)
        )
        be = self._backend

        if be is None:
            # ``deadline - time`` for every (node, P-state, impulse), once
            # per arrival — the same elementwise expression the reference
            # evaluates per node (elementwise ufuncs are exact per element
            # regardless of batching).  The compiled path evaluates it
            # inside score_rows instead, so skip the (N, P, width)
            # allocation there.
            a_stack = deadline - times_stack  # (N, P, width)

        # One pass over the cores, grouped by node, collects per
        # *distinct* (node, ready pmf) pair the quantities the batched
        # row computation needs; grouping keeps each node's rows
        # contiguous.  One degenerate pmf stands in for every idle
        # core's ready time: its values are exactly what
        # CoreState.ready_pmf would build, and sharing the object caches
        # the mean and collapses all idle cores of a node onto one
        # probability row (identity against it is the only way two
        # cores can share a ready pmf).
        idle_delta: PMF | None = None
        idle_mean = 0.0
        slots: list[int] = [0] * C  # per core: its distinct-row index
        means: list[float] = [0.0] * C
        qlens: list[int] = [0] * C
        starts_l: list[float] = []
        sizes_l: list[int] = []
        cdfs: list[np.ndarray] = []
        node_blocks: list[tuple[int, int, int]] = []  # (node, row lo, row hi)
        fallback: list[tuple[int, PMF, int]] = []
        for node, node_core_ids in self._node_cores:
            row_lo = len(starts_l)
            idle_slot = -1
            for c in node_core_ids:
                core = cores[c]
                if core.running is None:
                    if core.dt == dt:
                        if idle_delta is None:
                            idle_delta = PMF.delta(t_now, dt)
                            idle_mean = idle_delta.mean()
                        ready = idle_delta
                        means[c] = idle_mean
                        if idle_slot < 0:
                            idle_slot = len(starts_l)
                            starts_l.append(ready.start)
                            sizes_l.append(ready.probs.size)
                            cdfs.append(ready.cdf)
                        slots[c] = idle_slot
                    else:  # pragma: no cover - engines build homogeneous grids
                        ready = PMF.delta(t_now, core.dt)
                        means[c] = ready.mean()
                        fallback.append((c, ready, node))
                    qlens[c] = len(core.queue)
                else:
                    ready = core.ready_pmf(t_now)
                    # Inline of PMF.mean's cached branch (same
                    # expression, minus the method dispatch).
                    m1 = ready._m1
                    means[c] = (
                        float(ready.start + ready.dt * m1) if m1 is not None else ready.mean()
                    )
                    if ready.dt == dt:
                        slots[c] = len(starts_l)
                        starts_l.append(ready.start)
                        sizes_l.append(ready.probs.size)
                        cdfs.append(ready.cdf)
                    else:  # pragma: no cover - engines build homogeneous grids
                        fallback.append((c, ready, node))
                    qlens[c] = len(core.queue) + 1
            row_hi = len(starts_l)
            if row_hi > row_lo:
                node_blocks.append((node, row_lo, row_hi))
        ready_means = np.array(means)
        queue_len = np.array(qlens, dtype=np.int64)

        # Probability rows, one per distinct (node, ready pmf), over all
        # nodes in one batch: the offset/index grid is one elementwise
        # pass, then the CDF gather and the per-P-state dot run per
        # distinct pmf on its contiguous (P, width) slice — the same
        # expressions, on the same values, as prob_on_time_all_pstates
        # evaluates one core at a time.
        u = len(starts_l)
        if u and be is not None:
            starts = np.array(starts_l)
            sizes = np.array(sizes_l, dtype=np.int64)
            # Compiled pass: one score_rows call replaces the offset
            # grid, gather and einsum below.  The CDFs concatenate
            # without sentinels — the kernel's ``k >= 0`` branch covers
            # the query-before-start case directly — and each row
            # reduces over its node's native pad width, exactly like
            # the reference terms.
            offsets = np.empty(u, dtype=np.int64)
            acc = 0
            for i, size in enumerate(sizes_l):
                offsets[i] = acc
                acc += size
            cdf_flat = np.concatenate(cdfs) if u > 1 else cdfs[0]
            row_node = np.empty(u, dtype=np.int64)
            for node, row_lo, row_hi in node_blocks:
                row_node[row_lo:row_hi] = node
            rows = be.score_rows(
                times_stack,
                probs_stack,
                widths_arr,
                starts,
                sizes,
                offsets,
                row_node,
                cdf_flat,
                deadline,
                dt,
            )
            prob = np.take(rows, slots, axis=0)  # (C, P) scatter by slot
        elif u:
            starts = np.array(starts_l)
            sizes = np.array(sizes_l, dtype=np.int64)
            # floor((a - start) / dt + 1e-9) in-place on a writable
            # stack of each distinct pmf's node rows: the same
            # elementwise chain as the expression form, without the
            # intermediate temporaries.
            work = np.empty((u, a_stack.shape[1], a_stack.shape[2]))
            for node, row_lo, row_hi in node_blocks:
                work[row_lo:row_hi] = a_stack[node]
            np.subtract(work, starts[:, None, None], out=work)
            np.divide(work, dt, out=work)
            np.add(work, 1e-9, out=work)
            np.floor(work, out=work)
            ks_all = work.astype(np.int64)
            np.minimum(ks_all, (sizes - 1)[:, None, None], out=ks_all)
            np.maximum(ks_all, -1, out=ks_all)
            # One flat gather over all distinct CDFs, with an exact-0.0
            # sentinel ahead of each block: entry ``j`` of pmf ``i``
            # lives at ``offsets[i] + j`` and the clamped ``j == -1``
            # (query before the pmf's start) lands on the sentinel — the
            # same per-element values the reference's ``np.where`` form
            # produces, without materializing the mask.
            offsets_l: list[int] = []
            acc = 1
            for size in sizes_l:
                offsets_l.append(acc)
                acc += size + 1
            flat_cdf = np.zeros(acc - 1)
            for i, cdf in enumerate(cdfs):
                off = offsets_l[i]
                flat_cdf[off : off + cdf.size] = cdf
            np.add(ks_all, np.array(offsets_l, dtype=np.int64)[:, None, None], out=ks_all)
            fr_all = np.take(flat_cdf, ks_all)
            # One sum-of-products per node over its contiguous row
            # block: einsum's u axis is an outer loop over independent
            # (p, l) reductions, so each row is bitwise the per-slice
            # two-operand reduction, and broadcasting the node's shared
            # probability matrix avoids a gather copy.  Sliced to the
            # node's native pad width: the reduction must run over
            # exactly the reference's terms, because extra zero-probability
            # columns — while value-neutral term by term — change the
            # inner loop's accumulator blocking and therefore rounding.
            rows = np.empty((u, P))
            for node, row_lo, row_hi in node_blocks:
                w = widths[node]
                np.einsum(
                    "pl,upl->up",
                    probs_stack[node, :, :w],
                    fr_all[row_lo:row_hi, :, :w],
                    out=rows[row_lo:row_hi],
                )
            prob = np.take(rows, slots, axis=0)  # (C, P) scatter by slot
        else:  # pragma: no cover - engines build homogeneous grids
            prob = np.empty((C, P))
        for c, ready, node in fallback:  # pragma: no cover - hetero grids only
            pad = table.padded(type_id, node)
            prob[c] = prob_on_time_all_pstates(ready, pad.times, pad.probs, deadline)

        ect = ready_means[:, None] + eet

        return CandidateSet(
            core_ids=self._core_ids,
            pstates=self._pstates,
            queue_len=np.repeat(queue_len, P),
            eet=eet_flat,
            eec=eec_flat,
            ect=ect.ravel(),
            prob_on_time=prob.ravel(),
        )


def build_candidates(
    task: Task,
    cores: Sequence[CoreState],
    table: ExecutionTimeTable,
    t_now: float,
) -> CandidateSet:
    """Deprecated alias of :func:`build_candidate_set`.

    This was an internal entrypoint (see ``docs/architecture.md``); use
    :func:`build_candidate_set` or, for whole-trial runs, the
    :mod:`repro.api` facade.
    """
    warnings.warn(
        "repro.sim.mapper.build_candidates is deprecated; use "
        "build_candidate_set (or the repro.api facade for whole trials)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_candidate_set(task, cores, table, t_now)
