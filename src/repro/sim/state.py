"""Per-core runtime state with cached ready-time distributions.

The dominant cost of a mapping event is computing, for every core, the
*ready-time* pmf — the completion distribution of everything already on
the core (Section IV-B).  :class:`CoreState` caches both pieces:

* the convolution of queued tasks' execution pmfs, maintained
  *incrementally* on enqueue whenever that is exact (appending a pmf at
  least as long as every queued one convolves last in the sorted fold of
  :func:`~repro.stoch.ops.convolve_many`, so one incremental convolution
  reproduces the full recomputation bit for bit) and invalidated
  otherwise, and
* the running task's truncated completion pmf.  Truncation at a later
  time ``t`` changes nothing as long as the cached distribution has no
  impulse before ``t``, so the cache records its first-impulse time and
  stays valid across most events — typically only cores whose predicted
  completion is overdue recompute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.stoch.ops import convolve, convolve_many, shift, truncate_below
from repro.stoch.pmf import PMF
from repro.workload.task import Task

__all__ = ["RunningTask", "QueuedTask", "CoreState", "RollingEnergyBudget"]


@dataclass(frozen=True)
class RunningTask:
    """The task currently executing on a core.

    ``completion_time`` is the *actual* (sampled) completion instant; the
    scheduler's predictions never read it — they only see ``exec_pmf``
    and ``start_time``.
    """

    task: Task
    pstate: int
    exec_pmf: PMF
    start_time: float
    completion_time: float


@dataclass(frozen=True)
class QueuedTask:
    """A task waiting on a core, with its committed P-state and pmf."""

    task: Task
    pstate: int
    exec_pmf: PMF


class CoreState:
    """Mutable state of one core during a trial."""

    __slots__ = (
        "core_id",
        "node_index",
        "dt",
        "running",
        "queue",
        "epoch",
        "_version",
        "_queue_conv",
        "_queue_maxlen",
        "_ready_version",
        "_ready_pmf",
        "_ready_trunc_start",
    )

    def __init__(self, core_id: int, node_index: int, dt: float) -> None:
        self.core_id = core_id
        self.node_index = node_index
        self.dt = dt
        self.running: RunningTask | None = None
        self.queue: deque[QueuedTask] = deque()
        self.epoch = 0
        self._version = 0
        self._queue_conv: PMF | None = None
        self._queue_maxlen = 0
        self._ready_version = -1
        self._ready_pmf: PMF | None = None
        self._ready_trunc_start = 0.0

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------

    @property
    def assigned_count(self) -> int:
        """``|MQ(i, j, k, t_l)|``: tasks queued for or in execution."""
        return len(self.queue) + (1 if self.running is not None else 0)

    @property
    def is_idle(self) -> bool:
        """Whether the core has no work at all."""
        return self.running is None and not self.queue

    # ------------------------------------------------------------------
    # Mutations (each bumps the cache version)
    # ------------------------------------------------------------------

    def enqueue(self, entry: QueuedTask) -> None:
        """Append a task to the core's FIFO queue.

        The cached queue convolution is extended *incrementally* when
        that is provably exact: ``convolve_many`` folds smallest-first
        with a stable sort, so a new pmf no shorter than every queued
        one would convolve last anyway, and
        ``convolve(cached, new)`` reproduces the full recomputation
        bitwise.  Shorter pmfs fall back to invalidation (the kernel
        cache makes the eventual recomputation cheap).
        """
        if self.running is None:
            raise RuntimeError("enqueue on an idle core; start the task instead")
        n = len(entry.exec_pmf)
        if not self.queue:
            # convolve_many([x]) is x itself.
            self._queue_conv = entry.exec_pmf
            self._queue_maxlen = n
        elif self._queue_conv is not None and n >= self._queue_maxlen:
            self._queue_conv = convolve(self._queue_conv, entry.exec_pmf)
            self._queue_maxlen = n
        else:
            self._queue_conv = None
        self.queue.append(entry)
        self._version += 1

    def set_running(self, running: RunningTask) -> None:
        """Begin executing a task (the core must not be busy)."""
        if self.running is not None:
            raise RuntimeError("core already running a task")
        self.running = running
        self._version += 1

    def clear_running(self) -> None:
        """Mark the running task finished."""
        if self.running is None:
            raise RuntimeError("no running task to clear")
        self.running = None
        self._version += 1

    def interrupt(self) -> RunningTask:
        """Forcibly remove the running task (fault injection only).

        Bumps :attr:`epoch`, invalidating the completion event the
        engine scheduled for the interrupted task; the model's normal
        run-to-completion guarantee (Section III-B) is suspended only
        at fault transitions.  Returns the removed task.
        """
        running = self.running
        if running is None:
            raise RuntimeError("no running task to interrupt")
        self.running = None
        self.epoch += 1
        self._version += 1
        return running

    def drain_queue(self) -> list[QueuedTask]:
        """Remove and return every queued task (fault orphaning), FIFO order."""
        if not self.queue:
            return []
        entries = list(self.queue)
        self.queue.clear()
        self._version += 1
        self._queue_conv = None
        return entries

    def pop_next(self) -> QueuedTask | None:
        """Remove and return the next queued task (FIFO), if any."""
        if not self.queue:
            return None
        entry = self.queue.popleft()
        self._version += 1
        self._queue_conv = None
        return entry

    def remove_queued(self, task_id: int) -> QueuedTask | None:
        """Remove a specific queued task (cancellation extension)."""
        for entry in self.queue:
            if entry.task.task_id == task_id:
                self.queue.remove(entry)
                self._version += 1
                self._queue_conv = None
                return entry
        return None

    # ------------------------------------------------------------------
    # Ready-time distribution
    # ------------------------------------------------------------------

    def _queue_convolution(self) -> PMF | None:
        """Cached convolution of queued tasks' execution pmfs."""
        if not self.queue:
            return None
        if self._queue_conv is None:
            self._queue_conv = convolve_many([e.exec_pmf for e in self.queue])
            self._queue_maxlen = max(len(e.exec_pmf) for e in self.queue)
        return self._queue_conv

    def ready_pmf(self, t_now: float) -> PMF:
        """Distribution of when this core can start a newly-mapped task."""
        if self.running is None:
            return PMF.delta(t_now, self.dt)
        if (
            self._ready_version == self._version
            and self._ready_pmf is not None
            and self._ready_trunc_start >= t_now - 1e-9
        ):
            return self._ready_pmf
        running_c = truncate_below(
            shift(self.running.exec_pmf, self.running.start_time), t_now
        )
        qconv = self._queue_convolution()
        ready = running_c if qconv is None else convolve(running_c, qconv)
        self._ready_version = self._version
        self._ready_pmf = ready
        self._ready_trunc_start = running_c.start
        return ready


class RollingEnergyBudget:
    """Token-bucket energy allowance for continuous service.

    The batch model grants the whole trial its budget up front
    (``zeta_max = budget_mult * t_avg * p_avg * num_tasks``); an
    always-on service has no trial to amortize over, so the allowance
    *accrues*: joules arrive at a constant ``rate`` and pool up to
    ``cap``, and every mapping draws its estimated energy cost from the
    pool.  The heuristic's energy estimate ``zeta`` becomes the pool's
    current level.

    Draws clamp at zero — the energy filter then sees an empty allowance
    (and prunes everything but the cheapest assignments) rather than a
    meaningless negative estimate; the clamped shortfall accumulates in
    :attr:`deficit` for diagnostics.  Invariant: ``0 <= remaining <=
    cap`` at all times.
    """

    __slots__ = ("rate", "cap", "_tokens", "_t", "_deficit", "_drawn")

    def __init__(self, rate: float, cap: float, *, initial: float | None = None) -> None:
        if rate < 0.0:
            raise ValueError(f"accrual rate must be non-negative, got {rate}")
        if not (cap > 0.0):
            raise ValueError(f"cap must be positive, got {cap}")
        tokens = cap if initial is None else float(initial)
        if not (0.0 <= tokens <= cap):
            raise ValueError(f"initial level {tokens} outside [0, {cap}]")
        self.rate = float(rate)
        self.cap = float(cap)
        self._tokens = tokens
        self._t = 0.0
        self._deficit = 0.0
        self._drawn = 0.0

    @property
    def remaining(self) -> float:
        """Allowance pooled as of the last :meth:`advance`, in joules."""
        return self._tokens

    @property
    def deficit(self) -> float:
        """Total joules requested beyond the pooled allowance."""
        return self._deficit

    @property
    def drawn(self) -> float:
        """Total joules requested by mappings."""
        return self._drawn

    @property
    def time(self) -> float:
        """Simulation time of the last :meth:`advance`."""
        return self._t

    def advance(self, t: float) -> float:
        """Accrue allowance up to time ``t``; return the new level."""
        if t < self._t:
            raise ValueError(f"time moved backwards: {t} < {self._t}")
        self._tokens = min(self.cap, self._tokens + self.rate * (t - self._t))
        self._t = t
        return self._tokens

    def peek(self, t: float | None = None) -> float:
        """The level an :meth:`advance` to ``t`` would return, read-only.

        ``t=None`` (or a time at/before the last advance) reads the
        current level.
        """
        if t is None or t <= self._t:
            return self._tokens
        return min(self.cap, self._tokens + self.rate * (t - self._t))

    def draw(self, joules: float) -> float:
        """Consume ``joules`` (clamped at empty); return the new level."""
        if joules < 0.0:
            raise ValueError(f"draw must be non-negative, got {joules}")
        self._drawn += joules
        short = joules - self._tokens
        if short > 0.0:
            self._deficit += short
            self._tokens = 0.0
        else:
            self._tokens -= joules
        return self._tokens
