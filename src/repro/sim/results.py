"""Trial outcome records.

The paper's figure of merit is the number of tasks *not* completed by
their individual deadlines within the energy constraint, out of 1,000.
:class:`TrialResult` decomposes that number into its three causes:

* ``discarded`` — the filter chain eliminated every assignment, so the
  task was never mapped;
* ``late`` — the task completed after its deadline;
* ``energy_cutoff`` — the task completed on time, but after the instant
  cumulative consumed energy crossed the budget, so it does not count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TaskOutcome", "TrialResult"]


@dataclass(frozen=True, slots=True, eq=False)
class TaskOutcome:
    """Per-task record of what the simulation did with one task.

    ``core_id``/``pstate``/``start``/``completion`` are ``-1``/``nan``
    for discarded tasks.  Equality is NaN-aware (two discarded outcomes
    of the same task compare equal), so identical trials compare equal.
    """

    task_id: int
    type_id: int
    arrival: float
    deadline: float
    core_id: int
    pstate: int
    start: float
    completion: float
    discarded: bool

    def on_time(self) -> bool:
        """Whether the task completed by its deadline."""
        return not self.discarded and self.completion <= self.deadline + 1e-9

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskOutcome):
            return NotImplemented

        def feq(a: float, b: float) -> bool:
            return a == b or (math.isnan(a) and math.isnan(b))

        return (
            self.task_id == other.task_id
            and self.type_id == other.type_id
            and self.arrival == other.arrival
            and self.deadline == other.deadline
            and self.core_id == other.core_id
            and self.pstate == other.pstate
            and feq(self.start, other.start)
            and feq(self.completion, other.completion)
            and self.discarded == other.discarded
        )

    def __hash__(self) -> int:
        return hash((self.task_id, self.core_id, self.pstate, self.discarded))


@dataclass(frozen=True)
class TrialResult:
    """Aggregate result of one (heuristic, variant) run over one trial.

    Attributes
    ----------
    missed:
        The paper's metric — tasks not counted as completed
        (``discarded + late + energy_cutoff``).
    exhaustion_time:
        When cumulative consumed energy crossed the budget (``inf`` if it
        never did).
    makespan:
        Completion time of the last task (close of the ledger).
    """

    heuristic: str
    variant: str
    seed: int
    num_tasks: int
    missed: int
    completed_within: int
    discarded: int
    late: int
    energy_cutoff: int
    total_energy: float
    budget: float
    exhaustion_time: float
    makespan: float
    outcomes: tuple[TaskOutcome, ...]

    def __post_init__(self) -> None:
        if self.missed != self.discarded + self.late + self.energy_cutoff:
            raise ValueError("miss decomposition does not add up")
        if self.missed + self.completed_within != self.num_tasks:
            raise ValueError("missed + completed must cover all tasks")

    @property
    def miss_fraction(self) -> float:
        """Missed deadlines as a fraction of the workload."""
        return self.missed / self.num_tasks

    @property
    def label(self) -> str:
        """"HEURISTIC/variant" display label."""
        return f"{self.heuristic}/{self.variant}"

    def energy_utilization(self) -> float:
        """Consumed energy as a fraction of the budget."""
        return self.total_energy / self.budget if self.budget > 0 else float("nan")

    def completion_times(self) -> np.ndarray:
        """Completion times of non-discarded tasks (for analysis)."""
        return np.array(
            [o.completion for o in self.outcomes if not o.discarded], dtype=np.float64
        )
