"""Discrete-event simulation of the cluster resource manager.

The engine replays one trial: tasks arrive (pre-scheduled Poisson events),
the immediate-mode mapper builds a vectorized candidate set, the filter
chain prunes it, the heuristic picks an assignment (or the task is
discarded), cores execute tasks FIFO with actual execution times drawn
from the corresponding pmfs, and the energy ledger tracks every P-state
transition (cores park idle between tasks; P-states change only while a
core is idle, per Section III-A).

Entry points:

* :func:`~repro.sim.system.build_trial_system` — generate the Section VI
  environment (cluster, ETC matrix, pmf table, workload, budget).
* :class:`~repro.sim.engine.Engine` — run one (heuristic, filter) variant
  over a trial system; returns a :class:`~repro.sim.results.TrialResult`.
"""

from repro.sim.system import TrialSystem, build_trial_system
from repro.sim.state import CoreState, QueuedTask, RollingEnergyBudget, RunningTask
from repro.sim.mapper import CandidateBuilder, build_candidate_set, build_candidates
from repro.sim.results import TaskOutcome, TrialResult
from repro.sim.engine import Engine, EngineHooks, run_trial
from repro.sim.metrics import TraceCollector, WindowAccumulator, WindowStats

__all__ = [
    "TrialSystem",
    "build_trial_system",
    "CoreState",
    "QueuedTask",
    "RunningTask",
    "RollingEnergyBudget",
    "CandidateBuilder",
    "build_candidate_set",
    "build_candidates",
    "TaskOutcome",
    "TrialResult",
    "Engine",
    "EngineHooks",
    "run_trial",
    "TraceCollector",
    "WindowStats",
    "WindowAccumulator",
]
