"""Grid utilities: snapping and re-binning pmfs.

The global grid step ``dt`` trades accuracy for speed (every pmf array is
``O(support / dt)`` long).  :func:`regrid` lets the grid-sensitivity
ablation (``benchmarks/bench_ablation_grid.py``) re-express a pmf on a
coarser or finer grid while conserving mass and (approximately) the mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.stoch.pmf import PMF

__all__ = ["snap", "regrid"]


def snap(t: float, dt: float) -> float:
    """Round ``t`` to the nearest multiple of ``dt``."""
    return dt * round(t / dt)


def regrid(pmf: PMF, new_dt: float) -> PMF:
    """Re-express ``pmf`` on a grid of step ``new_dt``.

    Each impulse's mass is split linearly between the two nearest new grid
    points, which conserves total mass exactly and the mean up to
    floating-point error.
    """
    if new_dt <= 0.0:
        raise ValueError("new_dt must be positive")
    times = pmf.times
    lo_idx = math.floor(times[0] / new_dt)
    hi_idx = math.ceil(times[-1] / new_dt)
    out = np.zeros(hi_idx - lo_idx + 2)
    pos = times / new_dt - lo_idx
    left = np.floor(pos).astype(np.int64)
    frac = pos - left
    np.add.at(out, left, pmf.probs * (1.0 - frac))
    np.add.at(out, left + 1, pmf.probs * frac)
    return PMF(lo_idx * new_dt, new_dt, out).compact()
