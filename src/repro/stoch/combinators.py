"""Additional pmf combinators: mixtures and order statistics.

Beyond the sum-of-independent-variables algebra the scheduler needs,
analysis code wants two more constructions:

* :func:`mixture` — the law of "draw a component first, then sample it";
  e.g. the execution time of a *uniformly random* task type on a node.
* :func:`max_of` / :func:`min_of` — distributions of the extremes of
  independent variables; e.g. the finish time of a fork-join group of
  tasks (makespan analysis), or the first core to free up.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stoch.pmf import PMF

__all__ = ["mixture", "max_of", "min_of", "expected_extreme"]


def _common_grid(pmfs: Sequence[PMF]) -> tuple[float, float, int]:
    """(start, dt, length) of the smallest grid covering all operands.

    Operands must share ``dt``; offsets may differ by non-integer
    multiples of ``dt``, in which case each pmf snaps to the common grid
    anchored at the earliest start (snapping error < dt/2, consistent
    with the discretization the pmfs already carry).
    """
    if not pmfs:
        raise ValueError("need at least one pmf")
    dt = pmfs[0].dt
    for p in pmfs[1:]:
        if not p.same_grid(pmfs[0]):
            raise ValueError("grid mismatch across operands")
    start = min(p.start for p in pmfs)
    stop = max(p.stop for p in pmfs)
    length = int(round((stop - start) / dt)) + 1
    return start, dt, length


def _project(pmf: PMF, start: float, dt: float, length: int) -> np.ndarray:
    """Dense weights of ``pmf`` on the common grid (mass-preserving)."""
    out = np.zeros(length)
    offsets = (pmf.start - start) / dt + np.arange(len(pmf))
    idx = np.rint(offsets).astype(np.int64)
    np.clip(idx, 0, length - 1, out=idx)
    np.add.at(out, idx, pmf.probs)
    return out


def mixture(pmfs: Sequence[PMF], weights: Sequence[float] | None = None) -> PMF:
    """Mixture distribution ``sum_i w_i * pmf_i`` (weights normalized)."""
    start, dt, length = _common_grid(pmfs)
    if weights is None:
        w = np.full(len(pmfs), 1.0 / len(pmfs))
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (len(pmfs),) or np.any(w < 0.0):
            raise ValueError("weights must be non-negative and align with pmfs")
        total = w.sum()
        if total <= 0.0:
            raise ValueError("weights must have positive total")
        w = w / total
    acc = np.zeros(length)
    for weight, pmf in zip(w, pmfs):
        if weight > 0.0:
            acc += weight * _project(pmf, start, dt, length)
    return PMF(start, dt, acc).compact()


def max_of(pmfs: Sequence[PMF]) -> PMF:
    """Distribution of ``max_i X_i`` for independent ``X_i ~ pmfs[i]``.

    Uses the product-of-CDFs identity on the common grid:
    ``F_max(t) = prod_i F_i(t)``.
    """
    start, dt, length = _common_grid(pmfs)
    cdf = np.ones(length)
    for pmf in pmfs:
        cdf *= np.cumsum(_project(pmf, start, dt, length))
    probs = np.diff(np.concatenate([[0.0], cdf]))
    probs = np.clip(probs, 0.0, None)
    return PMF(start, dt, probs).compact()


def min_of(pmfs: Sequence[PMF]) -> PMF:
    """Distribution of ``min_i X_i`` for independent ``X_i ~ pmfs[i]``.

    Survival-function identity: ``S_min(t) = prod_i S_i(t)``.
    """
    start, dt, length = _common_grid(pmfs)
    survival = np.ones(length)
    for pmf in pmfs:
        survival *= 1.0 - np.cumsum(_project(pmf, start, dt, length))
    cdf = 1.0 - survival
    probs = np.diff(np.concatenate([[0.0], cdf]))
    probs = np.clip(probs, 0.0, None)
    # The last grid point carries any residual mass lost to fp round-off.
    deficit = 1.0 - probs.sum()
    if deficit > 0.0:
        probs[-1] += deficit
    return PMF(start, dt, probs).compact()


def expected_extreme(pmfs: Sequence[PMF], kind: str = "max") -> float:
    """Convenience: ``E[max]`` or ``E[min]`` of independent variables."""
    if kind == "max":
        return max_of(pmfs).mean()
    if kind == "min":
        return min_of(pmfs).mean()
    raise ValueError(f"kind must be 'max' or 'min', got {kind!r}")
