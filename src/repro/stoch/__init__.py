"""Discretized probability-mass-function algebra.

The paper models every task execution time as a random variable described
by a probability mass function (pmf).  Predicting completion times requires
convolving pmfs (sums of independent random variables), shifting them by
start times, truncating "past" impulses and renormalizing (Section IV-B),
and evaluating tail probabilities against deadlines.

This subpackage implements those operations on pmfs whose impulses live on
a *global regular grid* (fixed bin width ``dt``), which makes every
operation a dense-vector NumPy primitive:

* convolution  -> :func:`numpy.convolve`
* expectation  -> one dot product
* CDF queries  -> a cached cumulative sum + :func:`numpy.searchsorted`

Public API
----------
:class:`~repro.stoch.pmf.PMF`
    The pmf value type (immutable once built).
:mod:`~repro.stoch.ops`
    Free functions (``convolve``, ``shift``, ``truncate_below``, ...).
:mod:`~repro.stoch.distributions`
    Discretizers for gamma / normal / uniform / exponential laws.
:mod:`~repro.stoch.samplers`
    Drawing actual realizations from pmfs.
"""

from repro.stoch.pmf import PMF
from repro.stoch.ops import (
    convolve,
    convolve_many,
    prob_sum_at_most,
    shift,
    truncate_below,
)
from repro.stoch.distributions import (
    discretized_exponential,
    discretized_gamma,
    discretized_normal,
    discretized_uniform,
)
from repro.stoch.samplers import sample_pmf

__all__ = [
    "PMF",
    "convolve",
    "convolve_many",
    "prob_sum_at_most",
    "shift",
    "truncate_below",
    "discretized_exponential",
    "discretized_gamma",
    "discretized_normal",
    "discretized_uniform",
    "sample_pmf",
]
