"""Free functions over :class:`~repro.stoch.pmf.PMF` values.

These are the exact operations Section IV-B of the paper performs when
predicting stochastic completion times:

``convolve``
    Distribution of the sum of two independent random variables.
``shift``
    Completion-time distribution of a task that *started* at a known time
    (execution-time pmf shifted by the start time).
``truncate_below``
    Drop impulses in the past and renormalize — the paper's treatment of a
    currently-executing task whose predicted completion mass partially
    lies before the current time-step.
``prob_sum_at_most``
    ``P[R + X <= d]`` *without* materializing the convolution; used on the
    hot path when scoring hundreds of candidate assignments per arrival.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.stoch.pmf import PMF

__all__ = [
    "convolve",
    "convolve_many",
    "shift",
    "truncate_below",
    "prob_sum_at_most",
    "expectation_of_sum",
    "set_op_observer",
]

#: Optional instrumentation callback ``(op: str, grid_size: int)``.
#: The observability layer installs one to count pmf operations and
#: their grid sizes (``repro.obs.hooks``); this module never imports
#: observability code, and the ``is not None`` guard is the only cost
#: on the unobserved hot path.
_op_observer: Callable[[str, int], None] | None = None


def set_op_observer(
    observer: Callable[[str, int], None] | None,
) -> Callable[[str, int], None] | None:
    """Install (or clear, with ``None``) the module-wide op observer.

    Returns the previously-installed observer so callers can restore it
    — observation scopes nest like the hooks they serve.
    """
    global _op_observer
    previous = _op_observer
    _op_observer = observer
    return previous


def _check_same_grid(a: PMF, b: PMF) -> None:
    if not a.same_grid(b):
        raise ValueError(f"grid mismatch: dt={a.dt} vs dt={b.dt}")


def convolve(a: PMF, b: PMF) -> PMF:
    """Distribution of ``A + B`` for independent ``A ~ a`` and ``B ~ b``.

    Both pmfs must share the grid step; the result starts at the sum of
    the starts (offsets add under convolution) and is compacted.
    """
    _check_same_grid(a, b)
    if len(a) == 1:
        return shift(b, a.start)
    if len(b) == 1:
        return shift(a, b.start)
    probs = np.convolve(a.probs, b.probs)
    if _op_observer is not None:
        # Count only materialized convolutions (delta shortcuts above are
        # free); the grid size is the produced support length.
        _op_observer("convolve", probs.size)
    return PMF(a.start + b.start, a.dt, probs).compact()


def convolve_many(pmfs: Sequence[PMF]) -> PMF:
    """Fold :func:`convolve` over a non-empty sequence, smallest first.

    Convolving in increasing order of support size keeps intermediate
    arrays short, which matters when a core's queue is deep.
    """
    if not pmfs:
        raise ValueError("convolve_many requires at least one pmf")
    ordered = sorted(pmfs, key=len)
    acc = ordered[0]
    for nxt in ordered[1:]:
        acc = convolve(acc, nxt)
    return acc


def shift(pmf: PMF, offset: float) -> PMF:
    """Translate a pmf along the time axis by ``offset``."""
    if offset == 0.0:
        return pmf
    return PMF(pmf.start + offset, pmf.dt, pmf.probs, normalize=False)


def truncate_below(pmf: PMF, t: float, *, dt_for_degenerate: float | None = None) -> PMF:
    """Remove impulses strictly before ``t`` and renormalize.

    This implements the paper's update for a running task observed at the
    current time-step ``t``: impulses at times ``< t`` are in the past and
    impossible, so they are deleted and the remaining mass rescaled.

    If *all* mass lies in the past (the task is overdue relative to its
    own distribution), the best available prediction is "it completes
    now", so a degenerate pmf at ``t`` is returned.
    """
    if t <= pmf.start:
        return pmf
    # First index with time >= t (times equal to t survive).
    k = int(np.ceil((t - pmf.start) / pmf.dt - 1e-9))
    if k <= 0:
        return pmf
    if _op_observer is not None:
        _op_observer("truncate_below", pmf.probs.size)
    if k >= pmf.probs.size:
        return PMF.delta(t, dt_for_degenerate if dt_for_degenerate is not None else pmf.dt)
    tail = pmf.probs[k:]
    total = float(tail.sum())
    if total <= 0.0:
        return PMF.delta(t, dt_for_degenerate if dt_for_degenerate is not None else pmf.dt)
    return PMF(pmf.start + k * pmf.dt, pmf.dt, tail)


def prob_sum_at_most(ready: PMF, exec_pmf: PMF, deadline: float) -> float:
    """``P[R + X <= deadline]`` for independent ``R ~ ready``, ``X ~ exec_pmf``.

    Equals ``sum_x P[X = x] * F_R(deadline - x)``, one vectorized pass:
    no convolution array is ever built.  This is the quantity the paper
    calls ``rho(i, j, k, pi, t_l, z)`` — the probability that task ``z``
    completes by its deadline under a candidate assignment.
    """
    _check_same_grid(ready, exec_pmf)
    if _op_observer is not None:
        _op_observer("prob_sum_at_most", exec_pmf.probs.size)
    # F_R evaluated at (deadline - x_i) for every exec impulse time x_i.
    # x_i = exec.start + i*dt  =>  query_i = deadline - exec.start - i*dt.
    # Index into ready's grid: floor((query_i - ready.start)/dt).
    n = exec_pmf.probs.size
    base = (deadline - exec_pmf.start - ready.start) / ready.dt
    ks = np.floor(base + 1e-9 - np.arange(n)).astype(np.int64)
    np.clip(ks, -1, ready.probs.size - 1, out=ks)
    cdf = ready.cdf
    # F_R for index -1 (query before ready.start) is 0.
    fr = np.where(ks >= 0, cdf[np.maximum(ks, 0)], 0.0)
    return float(np.dot(exec_pmf.probs, fr))


def expectation_of_sum(pmfs: Iterable[PMF]) -> float:
    """``E[sum_i X_i]`` — linearity of expectation, no convolution needed."""
    return float(sum(p.mean() for p in pmfs))
