"""Free functions over :class:`~repro.stoch.pmf.PMF` values.

These are the exact operations Section IV-B of the paper performs when
predicting stochastic completion times:

``convolve``
    Distribution of the sum of two independent random variables.
``shift``
    Completion-time distribution of a task that *started* at a known time
    (execution-time pmf shifted by the start time).
``truncate_below``
    Drop impulses in the past and renormalize — the paper's treatment of a
    currently-executing task whose predicted completion mass partially
    lies before the current time-step.
``prob_sum_at_most``
    ``P[R + X <= d]`` *without* materializing the convolution; used on the
    hot path when scoring hundreds of candidate assignments per arrival.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.stoch.pmf import _RTOL, _TRIM_EPS, PMF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.kernel_cache import KernelCache
    from repro.perf.kernels import KernelBackend

__all__ = [
    "convolve",
    "convolve_many",
    "shift",
    "truncate_below",
    "prob_sum_at_most",
    "expectation_of_sum",
    "set_op_observer",
    "set_kernel_cache",
    "set_kernel_backend",
]

#: Optional instrumentation callback ``(op: str, grid_size: int)``.
#: The observability layer installs one to count pmf operations and
#: their grid sizes (``repro.obs.hooks``); this module never imports
#: observability code, and the ``is not None`` guard is the only cost
#: on the unobserved hot path.
_op_observer: Callable[[str, int], None] | None = None


def set_op_observer(
    observer: Callable[[str, int], None] | None,
) -> Callable[[str, int], None] | None:
    """Install (or clear, with ``None``) the module-wide op observer.

    Returns the previously-installed observer so callers can restore it
    — observation scopes nest like the hooks they serve.
    """
    global _op_observer
    previous = _op_observer
    _op_observer = observer
    return previous


#: Optional kernel intern table (:class:`repro.perf.KernelCache`).
#: The engine installs one for the duration of a run; this module never
#: imports :mod:`repro.perf` at runtime, mirroring the op-observer
#: decoupling above.  Results are bitwise identical with or without it.
_kernel_cache: "KernelCache | None" = None


def set_kernel_cache(cache: "KernelCache | None") -> "KernelCache | None":
    """Install (or clear, with ``None``) the module-wide kernel cache.

    Returns the previously-installed cache so callers can restore it —
    engine runs nest the same way observation scopes do.
    """
    global _kernel_cache
    previous = _kernel_cache
    _kernel_cache = cache
    return previous


#: Optional compiled kernel set (:class:`repro.perf.KernelBackend`).
#: Installed by the engine for the duration of one run, exactly like the
#: kernel cache above; ``None`` (the default) runs the reference numpy
#: expressions.  Compiled results agree with the reference to the
#: tolerance documented in :mod:`repro.perf.kernels` — digests and
#: manifests are always defined by the numpy path.
_kernel_backend: "KernelBackend | None" = None


def set_kernel_backend(backend: "KernelBackend | None") -> "KernelBackend | None":
    """Install (or clear, with ``None``) the module-wide kernel backend.

    Returns the previously-installed backend so callers can restore it —
    the same nesting protocol as :func:`set_kernel_cache`.
    """
    global _kernel_backend
    previous = _kernel_backend
    _kernel_backend = backend
    return previous


def _check_same_grid(a: PMF, b: PMF) -> None:
    if not a.same_grid(b):
        raise ValueError(f"grid mismatch: dt={a.dt} vs dt={b.dt}")


def convolve(a: PMF, b: PMF) -> PMF:
    """Distribution of ``A + B`` for independent ``A ~ a`` and ``B ~ b``.

    Both pmfs must share the grid step; the result starts at the sum of
    the starts (offsets add under convolution) and is compacted.
    """
    # Inlined same_grid check: this runs once per materialized
    # convolution plus once per delta shortcut, and the extra method
    # call + bound-method allocation showed up in the hot-path profile.
    if abs(a.dt - b.dt) > _RTOL * a.dt:
        raise ValueError(f"grid mismatch: dt={a.dt} vs dt={b.dt}")
    if len(a) == 1:
        return shift(b, a.start)
    if len(b) == 1:
        return shift(a, b.start)
    be = _kernel_backend
    if be is not None:
        probs, lo = be.conv_full(a.probs, b.probs)
        if _op_observer is not None:
            _op_observer("convolve", a.probs.size + b.probs.size - 1)
        return PMF._intern(a.start + b.start + lo * a.dt, a.dt, probs)
    if _kernel_cache is not None:
        # Convolution results repeat far too rarely to be worth interning
        # (queue convolutions incorporate an ever-changing accumulator),
        # but the validation-free finalizer still applies: the raw
        # product of two valid probability arrays needs no re-checking.
        probs = np.convolve(a.probs, b.probs)
        if _op_observer is not None:
            _op_observer("convolve", probs.size)
        return _finalize_conv(a.start + b.start, a.dt, probs)
    probs = np.convolve(a.probs, b.probs)
    if _op_observer is not None:
        # Count only materialized convolutions (delta shortcuts above are
        # free); the grid size is the produced support length.
        _op_observer("convolve", probs.size)
    return PMF(a.start + b.start, a.dt, probs).compact()


def convolve_many(pmfs: Sequence[PMF]) -> PMF:
    """Fold :func:`convolve` over a non-empty sequence, smallest first.

    Convolving in increasing order of support size keeps intermediate
    arrays short, which matters when a core's queue is deep.
    """
    if not pmfs:
        raise ValueError("convolve_many requires at least one pmf")
    ordered = sorted(pmfs, key=len)
    if _kernel_backend is not None and len(ordered) > 2:
        # Pairwise tree: combine similar-sized neighbours level by
        # level.  Total work drops from O(sum_i n_i * N) for the
        # sequential fold (the accumulator keeps its full width) to
        # roughly O(N log k), and intermediates stay short.  The
        # contraction order differs from the fold, which is exactly the
        # documented compiled-backend tolerance (≤1e-12); the numpy
        # reference path below is untouched.
        level = ordered
        while len(level) > 1:
            nxt_level = [
                convolve(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt_level.append(level[-1])
            level = sorted(nxt_level, key=len)
        return level[0]
    acc = ordered[0]
    for nxt in ordered[1:]:
        acc = convolve(acc, nxt)
    return acc


def shift(pmf: PMF, offset: float) -> PMF:
    """Translate a pmf along the time axis by ``offset``."""
    if offset == 0.0:
        return pmf
    # The result reuses the operand's (already validated, read-only)
    # probability array, so rerunning the constructor's O(n) finiteness
    # and mass scans — and its defensive copy of a mutable input —
    # would be pure overhead.  The content digest, first moment and
    # cumulative sum are functions of ``probs`` alone and carry over;
    # the digest is *forced* only when a kernel cache is installed, so
    # the truncation that always follows on the cached hot path keys
    # itself without rehashing (uncached runs keep hashing lazy).
    if _kernel_cache is not None:
        key = pmf.content_key()
    else:
        key = object.__getattribute__(pmf, "_key")
    return PMF._intern(
        pmf.start + offset,
        pmf.dt,
        pmf.probs,
        key=key,
        m1=object.__getattribute__(pmf, "_m1"),
        cdf=object.__getattribute__(pmf, "_cdf"),
    )


def truncate_below(pmf: PMF, t: float, *, dt_for_degenerate: float | None = None) -> PMF:
    """Remove impulses strictly before ``t`` and renormalize.

    This implements the paper's update for a running task observed at the
    current time-step ``t``: impulses at times ``< t`` are in the past and
    impossible, so they are deleted and the remaining mass rescaled.

    If *all* mass lies in the past (the task is overdue relative to its
    own distribution), the best available prediction is "it completes
    now", so a degenerate pmf at ``t`` is returned.
    """
    if t <= pmf.start:
        return pmf
    # First index with time >= t (times equal to t survive).
    # math.ceil on a float equals int(np.ceil(...)) exactly, without
    # the numpy scalar round-trip.
    k = math.ceil((t - pmf.start) / pmf.dt - 1e-9)
    if k <= 0:
        return pmf
    if _op_observer is not None:
        _op_observer("truncate_below", pmf.probs.size)
    if k >= pmf.probs.size:
        return PMF.delta(t, dt_for_degenerate if dt_for_degenerate is not None else pmf.dt)
    cache = _kernel_cache
    if cache is not None:
        # The renormalized tail depends only on (contents, k); the cut
        # time enters solely through ``k`` and the result offset.
        from repro.perf.kernel_cache import OP_TRUNCATE, InternedKernel

        key = (OP_TRUNCATE, pmf.content_key(), k, pmf.dt)
        kernel = cache.get(key)
        if kernel is not None:
            if _op_observer is not None:
                _op_observer("cache_hit", kernel.probs.size)
            return kernel.rebuild(pmf.start, pmf.dt)
        out = _truncate_tail(pmf, t, k, dt_for_degenerate)
        if out is not None:
            evicted = cache.put(key, InternedKernel.from_result(out, pmf.start))
            if _op_observer is not None:
                _op_observer("cache_miss", out.probs.size)
                if evicted:
                    _op_observer("cache_evict", evicted)
            return out
        # All-zero tail: degenerate results are cheap, skip interning.
        return PMF.delta(t, dt_for_degenerate if dt_for_degenerate is not None else pmf.dt)
    out = _truncate_tail(pmf, t, k, dt_for_degenerate)
    if out is None:
        return PMF.delta(t, dt_for_degenerate if dt_for_degenerate is not None else pmf.dt)
    return out


def _truncate_tail(
    pmf: PMF, t: float, k: int, dt_for_degenerate: float | None
) -> PMF | None:
    """The materializing branch of :func:`truncate_below` (``0 < k < n``).

    Returns ``None`` when the surviving tail carries no mass (the caller
    substitutes the degenerate "completes now" pmf).
    """
    be = _kernel_backend
    if be is not None:
        arr = be.trunc_tail(pmf.probs, k)
        if arr is None:
            return None
        return PMF._intern(pmf.start + k * pmf.dt, pmf.dt, arr)
    tail = pmf.probs[k:]
    total = float(tail.sum())
    if total <= 0.0:
        return None
    if _kernel_cache is not None:
        # Replicate PMF.__init__'s normalization branch on a slice of
        # an already-valid pmf, skipping only its re-validation: the
        # tail is finite, non-negative, and its sum was checked above.
        if abs(total - 1.0) > _RTOL:
            arr = tail / total
        else:
            arr = tail.copy()
        arr.setflags(write=False)
        return PMF._intern(pmf.start + k * pmf.dt, pmf.dt, arr)
    return PMF(pmf.start + k * pmf.dt, pmf.dt, tail)


def _finalize_conv(base: float, dt: float, raw: np.ndarray) -> PMF:
    """``PMF(base, dt, raw).compact()`` minus the redundant validation.

    ``raw`` is the product of two valid probability arrays, so it is
    finite and non-negative with positive total by construction; the
    normalization and trimming below follow PMF.__init__ and
    PMF.compact branch for branch, producing bitwise-identical arrays.
    """
    total = float(raw.sum())
    arr = raw / total if abs(total - 1.0) > _RTOL else raw
    thresh = float(arr.max()) * _TRIM_EPS
    # First/last index above threshold without materializing the index
    # array flatnonzero builds.  When both end bins survive (checked on
    # scalars first) nothing trims; otherwise the mask is never empty
    # because the max itself always exceeds ``max * _TRIM_EPS``.
    if arr[0] > thresh and arr[-1] > thresh:
        lo = 0
        hi = arr.size - 1
    else:
        keep = arr > thresh
        lo = int(keep.argmax())
        hi = arr.size - 1 - int(keep[::-1].argmax())
    if lo == 0 and hi == arr.size - 1:
        start = base
        out = arr
    else:
        sl = arr[lo : hi + 1]
        t2 = float(sl.sum())
        out = sl / t2 if abs(t2 - 1.0) > _RTOL else sl.copy()
        start = base + lo * dt
    out.setflags(write=False)
    return PMF._intern(start, dt, out)


def prob_sum_at_most(ready: PMF, exec_pmf: PMF, deadline: float) -> float:
    """``P[R + X <= deadline]`` for independent ``R ~ ready``, ``X ~ exec_pmf``.

    Equals ``sum_x P[X = x] * F_R(deadline - x)``, one vectorized pass:
    no convolution array is ever built.  This is the quantity the paper
    calls ``rho(i, j, k, pi, t_l, z)`` — the probability that task ``z``
    completes by its deadline under a candidate assignment.
    """
    # Inlined same_grid check (see convolve).
    if abs(ready.dt - exec_pmf.dt) > _RTOL * ready.dt:
        raise ValueError(f"grid mismatch: dt={ready.dt} vs dt={exec_pmf.dt}")
    if _op_observer is not None:
        _op_observer("prob_sum_at_most", exec_pmf.probs.size)
    # F_R evaluated at (deadline - x_i) for every exec impulse time x_i.
    # x_i = exec.start + i*dt  =>  query_i = deadline - exec.start - i*dt.
    # Index into ready's grid: floor((query_i - ready.start)/dt).
    n = exec_pmf.probs.size
    base = (deadline - exec_pmf.start - ready.start) / ready.dt
    be = _kernel_backend
    if be is not None:
        return float(be.prob_sum(exec_pmf.probs, base, ready.cdf))
    ks = np.floor(base + 1e-9 - np.arange(n)).astype(np.int64)
    # minimum+maximum instead of np.clip: exact on integers, cheaper.
    np.minimum(ks, ready.probs.size - 1, out=ks)
    np.maximum(ks, -1, out=ks)
    cdf = ready.cdf
    # F_R for index -1 (query before ready.start) is 0.
    fr = np.where(ks >= 0, cdf[np.maximum(ks, 0)], 0.0)
    return float(np.dot(exec_pmf.probs, fr))


def expectation_of_sum(pmfs: Iterable[PMF]) -> float:
    """``E[sum_i X_i]`` — linearity of expectation, no convolution needed."""
    be = _kernel_backend
    if be is None:
        return float(sum(p.mean() for p in pmfs))
    total = 0.0
    for p in pmfs:
        m1 = object.__getattribute__(p, "_m1")
        if m1 is None:
            # Deliberately NOT cached onto the pmf: the compiled
            # sequential sum can differ from numpy's pairwise dot in the
            # last ulp, and these pmfs (table rows, shared fixtures)
            # outlive the backend's installation scope.  A later numpy
            # run must still see its own bitwise moments.
            m1 = be.moment1(p.probs)
        total += p.start + p.dt * float(m1)
    return float(total)
