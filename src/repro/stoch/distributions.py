"""Discretizers: continuous laws -> grid pmfs.

Execution-time distributions in the paper are "provided" pmfs; following
the companion papers of the same group we realize them as discretized
gamma laws (strictly positive support, right-skewed — the natural model
for execution times).  Each discretizer integrates the continuous density
over grid-aligned bins so the pmf mass matches the law's probability of
falling in each bin, then renormalizes the truncated tails away.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.stoch.pmf import PMF

__all__ = [
    "discretized_gamma",
    "discretized_gamma_batch",
    "discretized_normal",
    "discretized_uniform",
    "discretized_exponential",
]


def _bin_edges(lo: float, hi: float, dt: float) -> np.ndarray:
    """Grid-aligned bin edges covering ``[lo, hi]`` (edges at multiples of dt)."""
    first = math.floor(lo / dt)
    last = math.ceil(hi / dt)
    if last <= first:
        last = first + 1
    return dt * np.arange(first, last + 1)


def _from_masses(masses: np.ndarray, first_edge: float, dt: float) -> PMF:
    """Build a pmf from clipped bin masses; mass of bin i sits at its center."""
    if masses.sum() <= 0.0:
        # Degenerate law narrower than one bin: all mass in the bin
        # containing the midpoint of the range.
        fallback = np.zeros(masses.size)
        fallback[fallback.size // 2] = 1.0
        masses = fallback
    centers_start = first_edge + 0.5 * dt
    pmf = PMF(centers_start, dt, masses)
    return pmf.compact()


def _from_cdf(cdf_vals: np.ndarray, edges: np.ndarray, dt: float) -> PMF:
    """Build a pmf from CDF values at bin edges; mass of bin i sits at its center."""
    masses = np.diff(cdf_vals)
    masses = np.clip(masses, 0.0, None)
    return _from_masses(masses, float(edges[0]), dt)


def discretized_gamma(mean: float, cv: float, dt: float, *, tail_sigmas: float = 4.0) -> PMF:
    """Gamma law with the given mean and coefficient of variation.

    Shape ``k = 1/cv**2`` and scale ``theta = mean * cv**2`` give
    ``E = mean`` and ``std = cv * mean``.  The support is truncated to
    ``[max(0, mean - tail_sigmas*std), mean + tail_sigmas*std]`` before
    discretization onto the grid of step ``dt``.
    """
    if mean <= 0.0 or cv <= 0.0:
        raise ValueError("mean and cv must be positive")
    shape = 1.0 / (cv * cv)
    scale = mean * cv * cv
    std = cv * mean
    lo = max(0.0, mean - tail_sigmas * std)
    hi = mean + tail_sigmas * std
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = stats.gamma.cdf(edges, a=shape, scale=scale)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_gamma_batch(
    means: np.ndarray, cv: float, dt: float, *, tail_sigmas: float = 4.0
) -> list[PMF]:
    """Batch form of :func:`discretized_gamma`: one pmf per entry of ``means``.

    All laws share ``cv`` (hence the gamma shape) and the grid, which is
    exactly the situation of the execution-time table — so the gamma CDF
    is evaluated over the concatenation of every law's bin edges in a
    *single* vectorized call instead of one scipy round trip per law.
    Every arithmetic step (support bounds, edge indices, CDF, bin-mass
    differences, clipping, normalization) is the same elementwise
    expression the scalar path evaluates, so each returned pmf is
    bitwise identical to ``discretized_gamma(means[i], ...)``; enforced
    by ``tests/stoch/test_distributions.py``.
    """
    means = np.asarray(means, dtype=np.float64).ravel()
    if means.size == 0:
        return []
    if cv <= 0.0 or not np.all(means > 0.0):
        raise ValueError("mean and cv must be positive")
    shape = 1.0 / (cv * cv)
    scales = means * cv * cv
    stds = cv * means
    los = np.maximum(0.0, means - tail_sigmas * stds)
    his = means + tail_sigmas * stds
    firsts = np.floor(los / dt).astype(np.int64)
    lasts = np.ceil(his / dt).astype(np.int64)
    np.maximum(lasts, firsts + 1, out=lasts)
    counts = lasts - firsts + 1  # bin edges per law
    offsets = np.zeros(means.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Concatenated per-law edge indices: law i occupies
    # ``[offsets[i], offsets[i+1])`` and edge j of law i is
    # ``dt * (firsts[i] + j)`` — the scalar path's ``dt * arange`` term
    # by term.
    idx = np.arange(int(offsets[-1]), dtype=np.int64)
    idx -= np.repeat(offsets[:-1] - firsts, counts)
    edges = dt * idx
    cdf_vals = stats.gamma.cdf(edges, a=shape, scale=np.repeat(scales, counts))
    # Bin masses batched: within law i the first ``counts[i] - 1``
    # entries after its offset are exactly ``np.diff`` of its CDF slice
    # (the entry straddling two laws is never read).
    masses = np.clip(cdf_vals[1:] - cdf_vals[:-1], 0.0, None)
    out: list[PMF] = []
    for i in range(means.size):
        o = int(offsets[i])
        n = int(counts[i])
        out.append(_from_masses(masses[o : o + n - 1], float(edges[o]), dt))
    return out


def discretized_normal(mean: float, std: float, dt: float, *, tail_sigmas: float = 4.0) -> PMF:
    """Normal law truncated at ``mean ± tail_sigmas * std`` (and at zero)."""
    if std <= 0.0:
        raise ValueError("std must be positive")
    lo = max(0.0, mean - tail_sigmas * std)
    hi = mean + tail_sigmas * std
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = stats.norm.cdf(edges, loc=mean, scale=std)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_uniform(lo: float, hi: float, dt: float) -> PMF:
    """Uniform law on ``[lo, hi]``."""
    if hi <= lo:
        raise ValueError("need lo < hi")
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = np.clip((edges - lo) / (hi - lo), 0.0, 1.0)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_exponential(mean: float, dt: float, *, tail_mass: float = 1e-4) -> PMF:
    """Exponential law with the given mean, truncated at the ``1 - tail_mass`` quantile."""
    if mean <= 0.0:
        raise ValueError("mean must be positive")
    hi = -mean * math.log(tail_mass)
    edges = _bin_edges(0.0, hi, dt)
    cdf_vals = 1.0 - np.exp(-edges / mean)
    return _from_cdf(cdf_vals, edges, dt)
