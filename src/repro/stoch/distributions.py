"""Discretizers: continuous laws -> grid pmfs.

Execution-time distributions in the paper are "provided" pmfs; following
the companion papers of the same group we realize them as discretized
gamma laws (strictly positive support, right-skewed — the natural model
for execution times).  Each discretizer integrates the continuous density
over grid-aligned bins so the pmf mass matches the law's probability of
falling in each bin, then renormalizes the truncated tails away.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.stoch.pmf import PMF

__all__ = [
    "discretized_gamma",
    "discretized_normal",
    "discretized_uniform",
    "discretized_exponential",
]


def _bin_edges(lo: float, hi: float, dt: float) -> np.ndarray:
    """Grid-aligned bin edges covering ``[lo, hi]`` (edges at multiples of dt)."""
    first = math.floor(lo / dt)
    last = math.ceil(hi / dt)
    if last <= first:
        last = first + 1
    return dt * np.arange(first, last + 1)


def _from_cdf(cdf_vals: np.ndarray, edges: np.ndarray, dt: float) -> PMF:
    """Build a pmf from CDF values at bin edges; mass of bin i sits at its center."""
    masses = np.diff(cdf_vals)
    masses = np.clip(masses, 0.0, None)
    if masses.sum() <= 0.0:
        # Degenerate law narrower than one bin: all mass in the bin
        # containing the midpoint of the range.
        masses = np.zeros(edges.size - 1)
        masses[masses.size // 2] = 1.0
    centers_start = float(edges[0]) + 0.5 * dt
    pmf = PMF(centers_start, dt, masses)
    return pmf.compact()


def discretized_gamma(mean: float, cv: float, dt: float, *, tail_sigmas: float = 4.0) -> PMF:
    """Gamma law with the given mean and coefficient of variation.

    Shape ``k = 1/cv**2`` and scale ``theta = mean * cv**2`` give
    ``E = mean`` and ``std = cv * mean``.  The support is truncated to
    ``[max(0, mean - tail_sigmas*std), mean + tail_sigmas*std]`` before
    discretization onto the grid of step ``dt``.
    """
    if mean <= 0.0 or cv <= 0.0:
        raise ValueError("mean and cv must be positive")
    shape = 1.0 / (cv * cv)
    scale = mean * cv * cv
    std = cv * mean
    lo = max(0.0, mean - tail_sigmas * std)
    hi = mean + tail_sigmas * std
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = stats.gamma.cdf(edges, a=shape, scale=scale)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_normal(mean: float, std: float, dt: float, *, tail_sigmas: float = 4.0) -> PMF:
    """Normal law truncated at ``mean ± tail_sigmas * std`` (and at zero)."""
    if std <= 0.0:
        raise ValueError("std must be positive")
    lo = max(0.0, mean - tail_sigmas * std)
    hi = mean + tail_sigmas * std
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = stats.norm.cdf(edges, loc=mean, scale=std)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_uniform(lo: float, hi: float, dt: float) -> PMF:
    """Uniform law on ``[lo, hi]``."""
    if hi <= lo:
        raise ValueError("need lo < hi")
    edges = _bin_edges(lo, hi, dt)
    cdf_vals = np.clip((edges - lo) / (hi - lo), 0.0, 1.0)
    return _from_cdf(cdf_vals, edges, dt)


def discretized_exponential(mean: float, dt: float, *, tail_mass: float = 1e-4) -> PMF:
    """Exponential law with the given mean, truncated at the ``1 - tail_mass`` quantile."""
    if mean <= 0.0:
        raise ValueError("mean must be positive")
    hi = -mean * math.log(tail_mass)
    edges = _bin_edges(0.0, hi, dt)
    cdf_vals = 1.0 - np.exp(-edges / mean)
    return _from_cdf(cdf_vals, edges, dt)
