"""The :class:`PMF` value type: a pmf on a regular time grid.

A pmf is stored as ``(start, dt, probs)``: impulse ``i`` carries
probability ``probs[i]`` at time ``start + i * dt``.  The representation is
dense and contiguous, so all algebra reduces to NumPy vector primitives.
``start`` may be any float (pmfs get shifted by continuous arrival/start
times); only ``dt`` must agree between operands of a convolution, because
offsets add while the grid step is preserved.

Instances are *logically immutable*: no public method mutates ``probs``.
The cumulative sum used by CDF queries is computed lazily and cached.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

import numpy as np

__all__ = ["PMF"]

#: Relative tolerance used when checking normalization and grid agreement.
_RTOL = 1e-9
#: Probabilities smaller than this (relative to the max) may be trimmed
#: from pmf tails by :meth:`PMF.compact`.
_TRIM_EPS = 1e-12


class PMF:
    """A probability mass function with impulses on a regular grid.

    Parameters
    ----------
    start:
        Time of the first impulse.
    dt:
        Grid step between consecutive impulses (must be positive).
    probs:
        Non-negative impulse weights.  They are normalized to sum to one
        unless ``normalize=False`` *and* they already sum to one.
    normalize:
        When true (default) the weights are rescaled to sum to exactly one.

    Notes
    -----
    Zero-probability leading/trailing bins are kept as given; call
    :meth:`compact` to trim them (operations that can create long zero
    tails do this internally).
    """

    __slots__ = ("start", "dt", "probs", "_cdf", "_m1", "_key")

    start: float
    dt: float
    probs: np.ndarray

    def __init__(
        self,
        start: float,
        dt: float,
        probs: Iterable[float] | np.ndarray,
        *,
        normalize: bool = True,
    ) -> None:
        arr = np.asarray(probs, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("probs must be a non-empty 1-D array")
        if dt <= 0.0 or not np.isfinite(dt):
            raise ValueError(f"dt must be a positive finite float, got {dt}")
        if not np.isfinite(start):
            raise ValueError(f"start must be finite, got {start}")
        if (arr < 0.0).any() or not np.isfinite(arr).all():
            raise ValueError("probs must be finite and non-negative")
        total = float(arr.sum())
        if total <= 0.0:
            raise ValueError("probs must have positive total mass")
        if normalize:
            if abs(total - 1.0) > _RTOL:
                arr = arr / total
            elif arr is probs:
                arr = arr.copy()
        elif abs(total - 1.0) > 1e-6:
            raise ValueError(f"probs sum to {total}, not 1, and normalize=False")
        arr.setflags(write=False)
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "dt", float(dt))
        object.__setattr__(self, "probs", arr)
        object.__setattr__(self, "_cdf", None)
        object.__setattr__(self, "_m1", None)
        object.__setattr__(self, "_key", None)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("PMF instances are immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def delta(time: float, dt: float) -> "PMF":
        """A degenerate pmf: all mass at ``time``."""
        return PMF(time, dt, np.ones(1), normalize=False)

    @classmethod
    def _intern(
        cls,
        start: float,
        dt: float,
        probs: np.ndarray,
        *,
        key: bytes | None = None,
        m1: "np.floating | None" = None,
        cdf: "np.ndarray | None" = None,
    ) -> "PMF":
        """Wrap an *already-validated, read-only* probability array.

        Fast path for the kernel cache (:mod:`repro.perf`): the array
        came out of a regular :class:`PMF` earlier, so re-running the
        constructor's validation and normalization would only burn time
        (and a renormalization could perturb the stored bits).  ``key``,
        ``m1`` and ``cdf`` optionally pre-seed the content digest, the
        first moment and the cumulative sum so interned siblings share
        them — all three are functions of ``probs`` alone, so carrying
        them over is exact.  Not part of the public surface.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "dt", float(dt))
        object.__setattr__(self, "probs", probs)
        object.__setattr__(self, "_cdf", cdf)
        object.__setattr__(self, "_m1", m1)
        object.__setattr__(self, "_key", key)
        return self

    @staticmethod
    def from_mapping(mapping: Mapping[float, float], dt: float) -> "PMF":
        """Build a pmf from ``{time: probability}`` pairs.

        Times are snapped to the grid anchored at the smallest time; a
        ``ValueError`` is raised if any time is farther than ``dt * 1e-6``
        from its grid point, to catch accidental off-grid input.
        """
        if not mapping:
            raise ValueError("mapping must be non-empty")
        times = np.array(sorted(mapping), dtype=np.float64)
        start = float(times[0])
        idx_f = (times - start) / dt
        idx = np.rint(idx_f).astype(np.int64)
        if np.any(np.abs(idx_f - idx) > 1e-6):
            raise ValueError("mapping times are not grid-aligned")
        probs = np.zeros(int(idx[-1]) + 1)
        for t, i in zip(times, idx):
            probs[int(i)] += mapping[float(t)]
        return PMF(start, dt, probs)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.probs.size)

    @property
    def times(self) -> np.ndarray:
        """Impulse times (freshly computed; not cached)."""
        return self.start + self.dt * np.arange(self.probs.size)

    @property
    def stop(self) -> float:
        """Time of the last impulse."""
        return self.start + self.dt * (self.probs.size - 1)

    @property
    def cdf(self) -> np.ndarray:
        """Cached cumulative sum of ``probs`` (read-only view)."""
        cached = object.__getattribute__(self, "_cdf")
        if cached is None:
            cached = self.probs.cumsum()
            cached.setflags(write=False)
            object.__setattr__(self, "_cdf", cached)
        return cached

    def mean(self) -> float:
        """Expectation ``E[X]`` (the start-independent moment is cached)."""
        m1 = object.__getattribute__(self, "_m1")
        if m1 is None:
            m1 = np.dot(np.arange(self.probs.size), self.probs)
            object.__setattr__(self, "_m1", m1)
        return float(self.start + self.dt * m1)

    def content_key(self) -> bytes:
        """Digest of the probability contents (grid offsets excluded).

        Two pmfs share a key iff their ``probs`` arrays are bitwise
        equal, which is exactly the invariance the kernel cache needs:
        convolution/truncation results depend on operand *contents*,
        with starts entering only as additive offsets.  Cached per
        instance (arrays are immutable).
        """
        key = object.__getattribute__(self, "_key")
        if key is None:
            key = hashlib.blake2b(self.probs.tobytes(), digest_size=16).digest()
            object.__setattr__(self, "_key", key)
        return key

    def var(self) -> float:
        """Variance ``Var[X]`` (non-negative by clipping tiny round-off)."""
        idx = np.arange(self.probs.size, dtype=np.float64)
        m1 = float(np.dot(idx, self.probs))
        m2 = float(np.dot(idx * idx, self.probs))
        return max(0.0, (m2 - m1 * m1)) * self.dt * self.dt

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.var()))

    def prob_at_most(self, t: float) -> float:
        """``P[X <= t]`` — the CDF evaluated at an arbitrary time.

        Times within ``1e-9 * dt`` of a grid point count as that grid
        point, the same tolerance every CDF-indexing operation in
        :mod:`repro.stoch.ops` uses.
        """
        # Index of the last impulse with time <= t: floor((t - start)/dt),
        # nudged so times equal to an impulse (up to fp error) include it.
        k = int(np.floor((t - self.start) / self.dt + 1e-9))
        if k < 0:
            return 0.0
        k = min(k, self.probs.size - 1)
        return float(self.cdf[k])

    def prob_greater(self, t: float) -> float:
        """``P[X > t]``."""
        return 1.0 - self.prob_at_most(t)

    def quantile(self, q: float) -> float:
        """Smallest grid time ``t`` with ``P[X <= t] >= q``."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be a probability")
        k = int(np.searchsorted(self.cdf, q - 1e-15, side="left"))
        k = min(k, self.probs.size - 1)
        return self.start + self.dt * k

    def total_mass(self) -> float:
        """Sum of all impulse weights (1.0 up to round-off)."""
        return float(self.probs.sum())

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def compact(self) -> "PMF":
        """Trim negligible leading/trailing mass and renormalize.

        Bins lighter than ``max(probs) * 1e-12`` at either end are
        dropped; interior bins are never removed (grid alignment must be
        preserved).
        """
        p = self.probs
        thresh = float(p.max()) * _TRIM_EPS
        nz = np.flatnonzero(p > thresh)
        if nz.size == 0:  # pragma: no cover - guarded by constructor
            return self
        lo, hi = int(nz[0]), int(nz[-1])
        if lo == 0 and hi == p.size - 1:
            return self
        return PMF(self.start + lo * self.dt, self.dt, p[lo : hi + 1])

    def same_grid(self, other: "PMF") -> bool:
        """Whether two pmfs share a grid step (offsets may differ)."""
        return abs(self.dt - other.dt) <= _RTOL * self.dt

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PMF(start={self.start:.6g}, dt={self.dt:.6g}, "
            f"n={self.probs.size}, mean={self.mean():.6g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PMF):
            return NotImplemented
        return (
            abs(self.start - other.start) <= _RTOL * max(1.0, abs(self.start))
            and self.same_grid(other)
            and self.probs.size == other.probs.size
            and bool(np.allclose(self.probs, other.probs, rtol=_RTOL, atol=1e-15))
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)
