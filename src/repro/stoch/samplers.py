"""Drawing actual realizations from pmfs.

The simulator samples each task's *actual* execution time from its
execution-time pmf the moment the task starts running (paper Section VI:
"the simulated actual task execution times are randomly sampled from the
execution time distributions during each trial").
"""

from __future__ import annotations

import numpy as np

from repro.stoch.pmf import PMF

__all__ = ["sample_pmf", "sample_pmf_many"]


def sample_pmf(pmf: PMF, rng: np.random.Generator) -> float:
    """Draw one realization from ``pmf`` using inverse-CDF sampling."""
    u = rng.random()
    k = int(np.searchsorted(pmf.cdf, u, side="left"))
    k = min(k, pmf.probs.size - 1)
    return pmf.start + pmf.dt * k


def sample_pmf_many(pmf: PMF, rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw ``size`` i.i.d. realizations from ``pmf`` (vectorized)."""
    u = rng.random(size)
    ks = np.searchsorted(pmf.cdf, u, side="left")
    np.clip(ks, 0, pmf.probs.size - 1, out=ks)
    return pmf.start + pmf.dt * ks
