"""Subscription calibration diagnostics (paper Section VI).

The paper defines the equilibrium rate as the arrival rate at which the
system is "perfectly subscribed" — all tasks complete by their deadlines
with no energy to spare.  These helpers sanity-check a configuration the
same way: what fraction of capacity do the configured rates demand, and
how does the budget compare against plausible spending envelopes?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.sim.system import TrialSystem, build_trial_system

__all__ = ["SubscriptionReport", "subscription_report", "calibration_summary"]


@dataclass(frozen=True)
class SubscriptionReport:
    """How a trial system's rates and budget relate to its capacity.

    Attributes
    ----------
    service_rate:
        Aggregate task-retirement rate of the cluster at the average
        P-state mix: ``num_cores / t_avg``.
    fast_utilization / slow_utilization:
        Offered load over capacity during bursts / the lull; above 1.0
        means oversubscribed.
    budget_per_task:
        ``zeta_max / num_tasks``.
    min_energy_per_task / max_energy_per_task:
        Expected per-task energy of the cheapest / most expensive
        (node, P-state) pair averaged over task types — the spending
        envelope heuristics choose within.
    """

    num_cores: int
    t_avg: float
    service_rate: float
    fast_rate: float
    slow_rate: float
    fast_utilization: float
    slow_utilization: float
    budget_per_task: float
    min_energy_per_task: float
    max_energy_per_task: float

    def is_oversubscribed_in_bursts(self) -> bool:
        """Whether the fast rate exceeds capacity (the paper's premise)."""
        return self.fast_utilization > 1.0

    def is_undersubscribed_in_lull(self) -> bool:
        """Whether the slow rate is below capacity (the paper's premise)."""
        return self.slow_utilization < 1.0

    def budget_forces_tradeoff(self) -> bool:
        """Whether the budget lies inside the spending envelope.

        If the budget per task exceeded the most expensive assignment's
        energy, the constraint would never bind; below the cheapest, no
        policy could finish the workload.  The paper sets it in between.
        """
        return self.min_energy_per_task < self.budget_per_task < self.max_energy_per_task


def subscription_report(system: TrialSystem) -> SubscriptionReport:
    """Compute the calibration diagnostics for a built trial system."""
    num_cores = system.cluster.num_cores
    t_avg = system.t_avg
    service = num_cores / t_avg
    rates = system.workload.rates
    # Mean over task types of the cheapest / dearest (node, P-state) EEC.
    eec = system.table.eec  # (T, N, P)
    flat = eec.reshape(eec.shape[0], -1)
    min_e = float(flat.min(axis=1).mean())
    max_e = float(flat.max(axis=1).mean())
    return SubscriptionReport(
        num_cores=num_cores,
        t_avg=t_avg,
        service_rate=service,
        fast_rate=rates.fast,
        slow_rate=rates.slow,
        fast_utilization=rates.fast / service,
        slow_utilization=rates.slow / service,
        budget_per_task=system.budget / system.num_tasks,
        min_energy_per_task=min_e,
        max_energy_per_task=max_e,
    )


def calibration_summary(config: SimulationConfig) -> str:
    """Human-readable calibration report for a configuration."""
    system = build_trial_system(config)
    rep = subscription_report(system)
    return "\n".join(
        [
            f"cores={rep.num_cores}  t_avg={rep.t_avg:.1f}  "
            f"service rate={rep.service_rate:.5f}",
            f"fast rate={rep.fast_rate:.5f} (utilization {rep.fast_utilization:.2f})  "
            f"slow rate={rep.slow_rate:.5f} (utilization {rep.slow_utilization:.2f})",
            f"budget/task={rep.budget_per_task:.0f} J  "
            f"cheapest/task={rep.min_energy_per_task:.0f} J  "
            f"dearest/task={rep.max_energy_per_task:.0f} J",
            f"oversubscribed in bursts: {rep.is_oversubscribed_in_bursts()}  "
            f"undersubscribed in lull: {rep.is_undersubscribed_in_lull()}  "
            f"budget forces trade-off: {rep.budget_forces_tradeoff()}",
        ]
    )
