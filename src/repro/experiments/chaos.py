"""Deterministic fault injection for the supervised ensemble executor.

A :class:`FaultPlan` names exactly which ``(trial, attempt)`` pairs
misbehave and how, so chaos runs are as reproducible as clean runs: the
same plan against the same seed always exercises the same recovery
paths.  The integration tests (and the CI chaos job) use this to assert
the executor's core promise — a run that survives injected crashes,
hangs, and corrupt results is **bitwise identical** to a fault-free run.

Fault kinds
-----------

``crash``
    The worker process calls ``os._exit`` before touching the trial; the
    supervisor sees the pipe close, forfeits only the in-flight trial,
    and respawns the worker.
``hang``
    The worker sleeps past any plausible trial duration; the supervisor
    kills it when the per-trial wall-clock timeout expires (a plan with
    hangs therefore requires ``trial_timeout``).
``corrupt``
    The worker computes the trial honestly, checksums the pickled
    payload, then flips a byte *after* checksumming — simulating
    transport corruption.  The supervisor detects the checksum mismatch
    and retries.
``error``
    The worker raises inside the job and reports the exception; the
    cheapest fault to inject (no process is killed), used by tests that
    only care about retry/quarantine bookkeeping.

Faults fire once: a plan entry applies to one attempt of one trial, so
retries of that attempt run clean unless the plan names them too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_CORRUPT",
    "FAULT_ERROR",
    "FAULT_KINDS",
    "FaultPlan",
    "parse_fault_plan",
]

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_CORRUPT = "corrupt"
FAULT_ERROR = "error"

#: Every fault kind a plan may inject.
FAULT_KINDS = (FAULT_CRASH, FAULT_HANG, FAULT_CORRUPT, FAULT_ERROR)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of injected faults.

    ``faults`` is a tuple of ``(trial, attempt, kind)`` triples;
    ``attempt`` is 1-based (attempt 1 is the first try).  Plans are
    plain data so they pickle cleanly into worker processes.
    """

    faults: tuple[tuple[int, int, str], ...]

    def __post_init__(self) -> None:
        seen: set[tuple[int, int]] = set()
        for entry in self.faults:
            trial, attempt, kind = entry
            if trial < 0:
                raise ValueError(f"trial must be >= 0, got {trial}")
            if attempt < 1:
                raise ValueError(f"attempt is 1-based, got {attempt}")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            if (trial, attempt) in seen:
                raise ValueError(
                    f"duplicate fault for trial {trial} attempt {attempt}"
                )
            seen.add((trial, attempt))

    @staticmethod
    def of(*faults: tuple[int, int, str]) -> "FaultPlan":
        """Build a plan from ``(trial, attempt, kind)`` triples."""
        return FaultPlan(faults=tuple(faults))

    def fault_for(self, trial: int, attempt: int) -> str | None:
        """The fault scheduled for this attempt, or ``None`` (run clean)."""
        for t, a, kind in self.faults:
            if t == trial and a == attempt:
                return kind
        return None

    def needs_timeout(self) -> bool:
        """Whether the plan contains a hang (recovery needs a timeout)."""
        return any(kind == FAULT_HANG for _, _, kind in self.faults)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``"trial:attempt:kind,..."`` (e.g. ``"0:1:crash,2:1:hang"``).

    The textual form is what ``scripts/chaos_check.py`` and ad-hoc shell
    runs use; validation is :class:`FaultPlan`'s.
    """
    faults: list[tuple[int, int, str]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3:
            raise ValueError(
                f"fault must look like 'trial:attempt:kind', got {part!r}"
            )
        faults.append((int(pieces[0]), int(pieces[1]), pieces[2]))
    return FaultPlan.of(*faults)
