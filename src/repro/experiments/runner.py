"""Running ensembles of paired trials.

Pairing discipline: trial ``i`` of an ensemble derives its seed from
``(base_seed, "trial", i)`` and builds **one**
:class:`~repro.sim.system.TrialSystem`; every requested (heuristic,
variant) spec then runs against that same system.  Task arrival times,
types, deadlines, the cluster, and each task's execution-time "luck" are
therefore identical across variants within a trial — differences in
missed deadlines are attributable to the policies alone, matching the
paper's methodology ("task arrival times, task deadlines, and task types
vary across simulation trials; all other parameters are held constant").

Trials are independent, so the runner can fan them out over processes
(``n_jobs``); results are deterministic regardless of ``n_jobs``.

Observability rides along without perturbing that determinism: pass a
:class:`~repro.obs.sinks.MetricsRegistry` and each worker process fills
its own registry (counters, discard causes, decision-latency and
queue-depth histograms), which the parent merges after the fan-in.
Metrics describe the run; they never steer it.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.config import SimulationConfig
from repro.filters.chain import make_filter_chain
from repro.heuristics.registry import make_heuristic
from repro.obs.hooks import run_observed_trial
from repro.obs.sinks import EventSink, MetricsRegistry
from repro.sim.engine import run_trial
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem, build_trial_system

__all__ = ["VariantSpec", "EnsembleResult", "run_trial_variant", "run_ensemble"]


@dataclass(frozen=True)
class VariantSpec:
    """One cell of the evaluation grid: a heuristic plus a filter variant."""

    heuristic: str
    variant: str

    @property
    def label(self) -> str:
        """Display label, e.g. ``"LL/en+rob"``."""
        return f"{self.heuristic}/{self.variant}"


def run_trial_variant(
    system: TrialSystem,
    spec: VariantSpec,
    *,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
) -> TrialResult:
    """Run one spec against a prebuilt trial system.

    The Random heuristic's generator derives from the trial seed and the
    spec label, so it is reproducible and independent across variants.
    When ``metrics`` or ``sinks`` are given the trial runs observed
    (structured events, counters, decision timing); the simulated
    decisions — and therefore the result — are bitwise identical either
    way.
    """
    rng = rng_mod.stream(system.config.seed, "heuristic", spec.label)
    heuristic = make_heuristic(spec.heuristic, rng)
    chain = make_filter_chain(spec.variant, system.config.filters)
    if metrics is not None or sinks:
        result = run_observed_trial(system, heuristic, chain, sinks=sinks, metrics=metrics)
    else:
        result = run_trial(system, heuristic, chain)
    if not keep_outcomes:
        result = replace(result, outcomes=())
    return result


def _run_one_trial(
    args: tuple[SimulationConfig, int, int, tuple[VariantSpec, ...], bool, bool],
) -> tuple[list[TrialResult], dict[str, Any] | None]:
    """Worker: build trial ``i``'s system and run every spec against it.

    Returns the per-spec results plus, when requested, the worker's
    metrics serialized for the trip back to the parent process.
    """
    config, base_seed, trial_index, specs, keep_outcomes, collect_metrics = args
    seed = rng_mod.spawn_trial_seed(base_seed, trial_index)
    system = build_trial_system(config.with_seed(seed))
    registry = MetricsRegistry() if collect_metrics else None
    results = [
        run_trial_variant(system, spec, keep_outcomes=keep_outcomes, metrics=registry)
        for spec in specs
    ]
    return results, (registry.to_dict() if registry is not None else None)


@dataclass(frozen=True)
class EnsembleResult:
    """All trial results of an ensemble, organized by spec.

    ``results[spec]`` lists one :class:`~repro.sim.results.TrialResult`
    per trial, in trial order.
    """

    specs: tuple[VariantSpec, ...]
    num_trials: int
    base_seed: int
    results: dict[VariantSpec, tuple[TrialResult, ...]]

    def misses(self, spec: VariantSpec) -> np.ndarray:
        """Missed-deadline counts across trials for one spec."""
        return np.array([r.missed for r in self.results[spec]], dtype=np.int64)

    def median_misses(self, spec: VariantSpec) -> float:
        """Median missed deadlines for one spec."""
        return float(np.median(self.misses(spec)))

    def by_heuristic(self, heuristic: str) -> dict[str, np.ndarray]:
        """variant -> misses array, for one heuristic (a figure's columns)."""
        return {
            spec.variant: self.misses(spec)
            for spec in self.specs
            if spec.heuristic == heuristic
        }

    def best_variant(self, heuristic: str) -> VariantSpec:
        """The heuristic's variant with the lowest median misses."""
        candidates = [s for s in self.specs if s.heuristic == heuristic]
        if not candidates:
            raise KeyError(f"no specs for heuristic {heuristic!r}")
        return min(candidates, key=lambda s: (self.median_misses(s), s.variant))


def run_ensemble(
    specs: list[VariantSpec] | tuple[VariantSpec, ...],
    config: SimulationConfig,
    num_trials: int,
    base_seed: int = 0,
    *,
    n_jobs: int = 1,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
) -> EnsembleResult:
    """Run ``num_trials`` paired trials of every spec.

    Parameters
    ----------
    n_jobs:
        Worker processes; 1 (default) runs in-process.  Results are
        identical for any value.
    keep_outcomes:
        Retain per-task outcome tuples (larger results; off by default).
    metrics:
        Optional registry to aggregate observability metrics into.  Each
        worker fills its own registry; after the fan-in they are merged
        into this one (order-independent, so ``n_jobs`` does not change
        the totals).
    """
    specs = tuple(specs)
    if not specs:
        raise ValueError("need at least one variant spec")
    if num_trials < 1:
        raise ValueError("need at least one trial")
    collect = metrics is not None
    jobs = [
        (config, base_seed, i, specs, keep_outcomes, collect) for i in range(num_trials)
    ]
    if n_jobs <= 1:
        per_trial = [_run_one_trial(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            per_trial = list(pool.map(_run_one_trial, jobs))
    if metrics is not None:
        for _, metrics_dict in per_trial:
            if metrics_dict is not None:
                metrics.merge(MetricsRegistry.from_dict(metrics_dict))
    results: dict[VariantSpec, tuple[TrialResult, ...]] = {}
    for s_idx, spec in enumerate(specs):
        results[spec] = tuple(trial[s_idx] for trial, _ in per_trial)
    return EnsembleResult(
        specs=specs, num_trials=num_trials, base_seed=base_seed, results=results
    )
