"""Running ensembles of paired trials.

Pairing discipline: trial ``i`` of an ensemble derives its seed from
``(base_seed, "trial", i)`` and builds **one**
:class:`~repro.sim.system.TrialSystem`; every requested (heuristic,
variant) spec then runs against that same system.  Task arrival times,
types, deadlines, the cluster, and each task's execution-time "luck" are
therefore identical across variants within a trial — differences in
missed deadlines are attributable to the policies alone, matching the
paper's methodology ("task arrival times, task deadlines, and task types
vary across simulation trials; all other parameters are held constant").

Trials are independent, so the runner can fan them out over processes
(``n_jobs``); results are deterministic regardless of ``n_jobs``.  The
fan-out is *supervised* (:mod:`repro.experiments.executor`): a crashing
worker forfeits only its in-flight trial, hung trials are killed at
``trial_timeout``, failed trials retry with deterministic backoff, and
poison trials are quarantined after ``max_retries`` — the ensemble then
comes back as a :class:`PartialEnsembleResult` naming what is missing
instead of aborting.  With ``checkpoint=`` every completed trial streams
to a JSONL shard and ``resume=True`` skips verified checkpointed trials,
so long sweeps survive interruption.

Observability rides along without perturbing that determinism: pass a
:class:`~repro.obs.sinks.MetricsRegistry` and each worker process fills
its own registry (counters, discard causes, decision-latency and
queue-depth histograms), which the parent merges after the fan-in;
recovery actions emit ``TrialRetried`` / ``TrialQuarantined`` /
``CheckpointWritten`` events to ``sinks`` and ``executor.*`` counters.
Metrics describe the run; they never steer it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.config import SimulationConfig
from repro.experiments.chaos import FaultPlan
from repro.experiments.executor import (
    CheckpointWriter,
    RetryPolicy,
    TrialFailure,
    load_checkpoint,
    run_supervised,
)
from repro.faults import FaultPolicy, FaultSchedule, SheddingConfig
from repro.filters.chain import build_filter_chain
from repro.heuristics.registry import build_heuristic
from repro.obs.events import CheckpointWritten, Event
from repro.obs.hooks import observe_trial
from repro.obs.manifest import config_digest
from repro.obs.sinks import EventSink, MetricsRegistry
from repro.obs.spans import SpanProfile, SpanRecorder
from repro.obs.timeline import TimelineRecorder, TimelineSet
from repro.perf.kernel_cache import PerfConfig
from repro.perf.trial_cache import TrialCache
from repro.sim.engine import run_trial
from repro.sim.results import TrialResult
from repro.sim.system import TrialSystem, build_trial_system

__all__ = [
    "VariantSpec",
    "TrialPlan",
    "EnsembleResult",
    "PartialEnsembleResult",
    "policy_for",
    "run_trial_variant",
    "run_ensemble",
]


@dataclass(frozen=True)
class VariantSpec:
    """One cell of the evaluation grid: a heuristic plus a filter variant."""

    heuristic: str
    variant: str

    @property
    def label(self) -> str:
        """Display label, e.g. ``"LL/en+rob"``."""
        return f"{self.heuristic}/{self.variant}"


def policy_for(system: TrialSystem, spec: VariantSpec):
    """The seeded (heuristic, filter chain) pair of one spec.

    The Random heuristic's generator derives from the trial seed and the
    spec label, so it is reproducible and independent across variants.
    Single source of the policy construction, shared by the batch path
    below and by :mod:`repro.service` — a replayed service run therefore
    starts from the identical policy state as its batch counterpart.
    """
    rng = rng_mod.stream(system.config.seed, "heuristic", spec.label)
    heuristic = build_heuristic(spec.heuristic, rng)
    chain = build_filter_chain(spec.variant, system.config.filters)
    return heuristic, chain


@dataclass
class TrialPlan:
    """One fully-specified trial run: system, policy spec, and ride-alongs.

    ``TrialPlan`` is the single entry point behind what used to be three
    near-duplicate call shapes (``run_trial`` on a bare engine,
    ``observe_trial`` for the observed path, ``run_trial_variant``
    choosing between them): build a plan, then :meth:`run` it.  The plan
    picks the observed path exactly when an observability collector
    (``metrics`` / ``sinks`` / ``profile`` / ``timeline``) is attached;
    the simulated decisions — and therefore the result — are bitwise
    identical either way.

    ``perf`` selects the hot-path performance knobs (:mod:`repro.perf`),
    results-neutral; ``None`` means everything on.  ``shared`` carries
    the warm cross-spec caches of the trial
    (:class:`~repro.perf.TrialCache`); reuse one handle for every spec
    run against the same ``system``.  ``faults`` / ``fault_policy`` /
    ``shedding`` thread the in-simulation fault layer
    (:mod:`repro.faults`) into the engine; all three default to ``None``
    (fault-free, bitwise identical to earlier releases).
    """

    system: TrialSystem
    spec: VariantSpec
    keep_outcomes: bool = False
    metrics: MetricsRegistry | None = None
    sinks: Sequence[EventSink] = ()
    profile: SpanRecorder | None = None
    timeline: TimelineRecorder | None = None
    perf: PerfConfig | None = None
    shared: TrialCache | None = None
    faults: FaultSchedule | None = None
    fault_policy: FaultPolicy | None = None
    shedding: SheddingConfig | None = None

    @classmethod
    def from_scenario(cls, scenario: Any, *, system: TrialSystem | None = None, **options: Any) -> "TrialPlan":
        """Build a plan from a scenario-shaped object.

        ``scenario`` is duck-typed: anything with a ``spec`` attribute
        (a :class:`VariantSpec`) and, when ``system`` is not given, a
        ``build_system()`` method.  Keyword ``options`` are the plan's
        remaining fields (``keep_outcomes``, ``metrics``, ``faults``,
        ...).  Fault/shedding settings carried by the scenario itself
        are resolved by the caller (:func:`repro.api.run_scenario`), not
        here — the runner stays ignorant of the scenario schema.
        """
        if system is None:
            system = scenario.build_system()
        return cls(system=system, spec=scenario.spec, **options)

    @property
    def observed(self) -> bool:
        """Whether :meth:`run` takes the observed (instrumented) path."""
        return (
            self.metrics is not None
            or bool(self.sinks)
            or self.profile is not None
            or self.timeline is not None
        )

    def run(self) -> TrialResult:
        """Execute the plan and return its trial result."""
        heuristic, chain = policy_for(self.system, self.spec)
        if self.observed:
            result = observe_trial(
                self.system,
                heuristic,
                chain,
                sinks=self.sinks,
                metrics=self.metrics,
                profile=self.profile,
                timeline=self.timeline,
                perf=self.perf,
                shared=self.shared,
                faults=self.faults,
                fault_policy=self.fault_policy,
                shedding=self.shedding,
            )
        else:
            result = run_trial(
                self.system,
                heuristic,
                chain,
                perf=self.perf,
                shared=self.shared,
                faults=self.faults,
                fault_policy=self.fault_policy,
                shedding=self.shedding,
            )
        if not self.keep_outcomes:
            result = replace(result, outcomes=())
        return result


def run_trial_variant(
    system: TrialSystem,
    spec: VariantSpec,
    *,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanRecorder | None = None,
    timeline: TimelineRecorder | None = None,
    perf: PerfConfig | None = None,
    shared: TrialCache | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    shedding: SheddingConfig | None = None,
) -> TrialResult:
    """Deprecated shim for :class:`TrialPlan`.

    .. deprecated::
        Build a :class:`TrialPlan` and call :meth:`TrialPlan.run`
        instead.  This wrapper forwards verbatim and stays bitwise
        identical; it only adds a :class:`DeprecationWarning`.
    """
    warnings.warn(
        "repro.experiments.runner.run_trial_variant is deprecated; "
        "build a TrialPlan and call .run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return TrialPlan(
        system=system,
        spec=spec,
        keep_outcomes=keep_outcomes,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
        shared=shared,
        faults=faults,
        fault_policy=fault_policy,
        shedding=shedding,
    ).run()


#: What one trial sends back to the parent: per-spec results, then the
#: serialized metrics registry, span stream and timeline streams (each
#: ``None``/empty when its collection was off or the trial was restored
#: from a checkpoint, which stores only the first two).
_TrialValue = tuple[
    list[TrialResult], dict[str, Any] | None, dict[str, Any] | None, list[dict[str, Any]] | None
]


def _run_one_trial(
    args: tuple[
        SimulationConfig,
        int,
        int,
        tuple[VariantSpec, ...],
        bool,
        bool,
        bool,
        float | None,
        PerfConfig | None,
    ],
) -> _TrialValue:
    """Worker: build trial ``i``'s system and run every spec against it.

    Returns the per-spec results plus, when requested, the worker's
    metrics / span stream / timelines serialized for the trip back to
    the parent process.  Span *and* timeline streams share the id
    ``trial_index + 1`` (stream 0 is the parent supervisor), so streams
    merge deterministically regardless of which pool slot ran the trial
    and a trial's spans correlate with its timelines by stream id.

    One :class:`~repro.perf.TrialCache` spans all specs: they run
    against the same system, so the kernel cache and the builder's type
    tables warmed by the first spec serve the rest (results-neutral;
    see :mod:`repro.perf.trial_cache`).
    """
    (
        config,
        base_seed,
        trial_index,
        specs,
        keep_outcomes,
        collect_metrics,
        collect_spans,
        timeline_dt,
        perf,
    ) = args
    seed = rng_mod.spawn_trial_seed(base_seed, trial_index)
    recorder = (
        SpanRecorder(stream=trial_index + 1, label=f"trial-{trial_index}")
        if collect_spans
        else None
    )
    if recorder is not None:
        with recorder.span("trial.build_system"):
            system = build_trial_system(config.with_seed(seed), perf=perf)
    else:
        system = build_trial_system(config.with_seed(seed), perf=perf)
    registry = MetricsRegistry() if collect_metrics else None
    timelines: list[dict[str, Any]] | None = [] if timeline_dt is not None else None
    shared = TrialCache(perf)
    results = []
    for spec in specs:
        tl = (
            TimelineRecorder(
                timeline_dt,
                stream=trial_index + 1,
                label=f"trial{trial_index}:{spec.label}",
            )
            if timeline_dt is not None
            else None
        )
        results.append(
            TrialPlan(
                system=system,
                spec=spec,
                keep_outcomes=keep_outcomes,
                metrics=registry,
                profile=recorder,
                timeline=tl,
                perf=perf,
                shared=shared,
            ).run()
        )
        if tl is not None and timelines is not None:
            timelines.append(tl.to_dict())
    return (
        results,
        registry.to_dict() if registry is not None else None,
        recorder.to_dict() if recorder is not None else None,
        timelines,
    )


@dataclass(frozen=True)
class EnsembleResult:
    """All trial results of an ensemble, organized by spec.

    ``results[spec]`` lists one :class:`~repro.sim.results.TrialResult`
    per trial, in trial order.
    """

    specs: tuple[VariantSpec, ...]
    num_trials: int
    base_seed: int
    results: dict[VariantSpec, tuple[TrialResult, ...]]

    def misses(self, spec: VariantSpec) -> np.ndarray:
        """Missed-deadline counts across trials for one spec."""
        return np.array([r.missed for r in self.results[spec]], dtype=np.int64)

    def median_misses(self, spec: VariantSpec) -> float:
        """Median missed deadlines for one spec."""
        return float(np.median(self.misses(spec)))

    def by_heuristic(self, heuristic: str) -> dict[str, np.ndarray]:
        """variant -> misses array, for one heuristic (a figure's columns)."""
        return {
            spec.variant: self.misses(spec)
            for spec in self.specs
            if spec.heuristic == heuristic
        }

    def best_variant(self, heuristic: str) -> VariantSpec:
        """The heuristic's variant with the lowest median misses."""
        candidates = [s for s in self.specs if s.heuristic == heuristic]
        if not candidates:
            raise KeyError(f"no specs for heuristic {heuristic!r}")
        return min(candidates, key=lambda s: (self.median_misses(s), s.variant))


@dataclass(frozen=True)
class PartialEnsembleResult(EnsembleResult):
    """An ensemble that lost trials to quarantine (graceful, not silent).

    ``num_trials`` stays the *requested* count; ``results[spec]`` holds
    only the completed trials (in trial order), so medians are computed
    over ``len(completed_trials)`` values.  ``failures`` carries the
    post-mortem of every quarantined trial.
    """

    completed_trials: tuple[int, ...]
    failures: tuple[TrialFailure, ...]

    @property
    def missing_trials(self) -> tuple[int, ...]:
        """Requested trial indices with no result."""
        have = set(self.completed_trials)
        return tuple(i for i in range(self.num_trials) if i not in have)

    @property
    def quarantined_trials(self) -> tuple[int, ...]:
        """Trial indices that exhausted their retry budget."""
        return tuple(sorted({f.trial for f in self.failures}))

    def is_complete(self) -> bool:
        """Whether every requested trial actually completed."""
        return len(self.completed_trials) == self.num_trials


def run_ensemble(
    specs: list[VariantSpec] | tuple[VariantSpec, ...],
    config: SimulationConfig,
    num_trials: int,
    base_seed: int = 0,
    *,
    n_jobs: int = 1,
    keep_outcomes: bool = False,
    metrics: MetricsRegistry | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    backoff_base: float = 0.5,
    backoff_cap: float = 30.0,
    chunk_size: int | None = None,
    fault_plan: FaultPlan | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanProfile | None = None,
    timeline: TimelineSet | None = None,
    perf: PerfConfig | None = None,
) -> EnsembleResult:
    """Run ``num_trials`` paired trials of every spec.

    Parameters
    ----------
    n_jobs:
        Worker processes; 1 (default) runs in-process.  Results are
        identical for any value.  Non-positive values are rejected.
    keep_outcomes:
        Retain per-task outcome tuples (larger results; off by default).
    metrics:
        Optional registry to aggregate observability metrics into.  Each
        worker fills its own registry; after the fan-in they are merged
        into this one (order-independent, so ``n_jobs`` does not change
        the totals).  Recovery actions land in ``executor.*`` counters.
    checkpoint:
        Stream each completed trial to this JSONL shard (keyed by the
        config digest and ``base_seed``).  Without ``resume`` the shard
        is started fresh.
    resume:
        Skip trials already present in ``checkpoint`` whose stored
        digests re-verify; new completions append to the same shard.
    trial_timeout:
        Per-trial wall-clock limit (seconds).  A trial that overruns is
        killed and retried.  Setting it (or ``fault_plan``) forces the
        supervised worker pool even at ``n_jobs=1``.
    max_retries / backoff_base / backoff_cap:
        Retry budget per trial and its exponential-backoff shape; jitter
        is deterministic (see
        :class:`~repro.experiments.executor.RetryPolicy`).  A trial
        failing ``max_retries + 1`` attempts is quarantined and the
        ensemble returns a :class:`PartialEnsembleResult`.
    chunk_size:
        Trials dispatched to a worker per IPC round on the supervised
        path (``None`` = auto from the trial count and ``n_jobs``; see
        :func:`~repro.experiments.executor.run_supervised`).  Purely a
        transport knob: results, checkpoint granularity and quarantine
        stay per-trial.
    fault_plan:
        Deterministic chaos injection (tests/CI only); see
        :mod:`repro.experiments.chaos`.
    sinks:
        Event sinks receiving executor-level events (``TrialRetried``,
        ``TrialQuarantined``, ``CheckpointWritten``).
    profile:
        Optional :class:`~repro.obs.spans.SpanProfile` to merge span
        streams into: one stream per trial (id ``trial + 1``) plus the
        parent supervisor's ``executor.trial`` spans on stream 0.
        Stream ids are keyed by trial, not pool slot, so the merged
        profile's span names/counts are identical for any ``n_jobs``.
        Trials restored from a checkpoint carry no spans.
    timeline:
        Optional :class:`~repro.obs.timeline.TimelineSet`; each trial
        contributes one sampled state timeline per spec at the set's
        ``dt``, on the same stream id as the trial's spans
        (``trial + 1``).  Fully deterministic for a fixed seed.
    perf:
        Hot-path performance knobs (:class:`~repro.perf.PerfConfig`)
        forwarded to every trial; results-neutral, so checkpoints and
        manifests written with different ``perf`` settings interoperate.
    """
    specs = tuple(specs)
    if not specs:
        raise ValueError("need at least one variant spec")
    if num_trials < 1:
        raise ValueError("need at least one trial")
    if n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive worker count, got {n_jobs} "
            "(use n_jobs=1 for the in-process serial path)"
        )
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    if fault_plan is not None and fault_plan.needs_timeout() and trial_timeout is None:
        raise ValueError("a fault plan with 'hang' faults requires trial_timeout")

    # Checkpoint shards always carry worker metrics so a resumed run can
    # restore them; collection stays off on the plain fast path.
    collect = metrics is not None or checkpoint is not None
    collect_spans = profile is not None
    timeline_dt = timeline.dt if timeline is not None else None
    parent_recorder = (
        SpanRecorder(stream=0, label="supervisor") if profile is not None else None
    )
    labels = [spec.label for spec in specs]

    def emit(event: Event) -> None:
        for sink in sinks:
            sink.emit(event)

    done: dict[int, _TrialValue] = {}
    failures: tuple[TrialFailure, ...] = ()
    writer: CheckpointWriter | None = None
    if checkpoint is not None:
        digest = config_digest(config)
        if resume:
            restored, _ = load_checkpoint(
                checkpoint,
                config_digest=digest,
                base_seed=base_seed,
                spec_labels=labels,
                num_trials=num_trials,
            )
            # Checkpoints store (results, metrics) only; restored trials
            # contribute no spans or timelines.
            done.update(
                {t: (res, mets, None, None) for t, (res, mets) in restored.items()}
            )
            if metrics is not None and restored:
                metrics.inc("executor.trials_resumed", len(restored))
        writer = CheckpointWriter(
            checkpoint,
            config_digest=digest,
            base_seed=base_seed,
            spec_labels=labels,
            keep_outcomes=keep_outcomes,
            append=resume,
        )

    def record(trial: int, value: _TrialValue) -> None:
        done[trial] = value
        if writer is not None:
            writer.write(trial, value[0], value[1])
            if metrics is not None:
                metrics.inc("executor.checkpoints_written")
            emit(CheckpointWritten(trial=trial, path=str(writer.path), records=writer.records))

    pending = [i for i in range(num_trials) if i not in done]
    try:
        if pending:
            payloads = {
                i: (
                    config, base_seed, i, specs, keep_outcomes,
                    collect, collect_spans, timeline_dt, perf,
                )
                for i in pending
            }
            supervised = n_jobs > 1 or trial_timeout is not None or fault_plan is not None
            if supervised:
                _, failed = run_supervised(
                    _run_one_trial,
                    payloads,
                    base_seed=base_seed,
                    n_jobs=n_jobs,
                    trial_timeout=trial_timeout,
                    retry=RetryPolicy(
                        max_retries=max_retries,
                        backoff_base=backoff_base,
                        backoff_cap=backoff_cap,
                    ),
                    chunk_size=chunk_size,
                    fault_plan=fault_plan,
                    on_result=record,
                    on_event=emit,
                    metrics=metrics,
                    profile=parent_recorder,
                )
                failures = tuple(failed)
            else:
                for i in pending:
                    if parent_recorder is not None:
                        with parent_recorder.span("executor.trial"):
                            record(i, _run_one_trial(payloads[i]))
                    else:
                        record(i, _run_one_trial(payloads[i]))
    finally:
        if writer is not None:
            writer.close()

    if metrics is not None:
        for trial in sorted(done):
            metrics_dict = done[trial][1]
            if metrics_dict is not None:
                metrics.merge(MetricsRegistry.from_dict(metrics_dict))
    if profile is not None:
        if parent_recorder is not None and parent_recorder.records:
            profile.add_stream(parent_recorder)
        for trial in sorted(done):
            span_stream = done[trial][2]
            if span_stream is not None:
                profile.add_stream(span_stream)
    if timeline is not None:
        for trial in sorted(done):
            timeline_streams = done[trial][3]
            for stream in timeline_streams or ():
                timeline.add(stream)

    completed = tuple(sorted(done))
    results: dict[VariantSpec, tuple[TrialResult, ...]] = {
        spec: tuple(done[i][0][s_idx] for i in completed)
        for s_idx, spec in enumerate(specs)
    }
    if len(completed) == num_trials:
        return EnsembleResult(
            specs=specs, num_trials=num_trials, base_seed=base_seed, results=results
        )
    return PartialEnsembleResult(
        specs=specs,
        num_trials=num_trials,
        base_seed=base_seed,
        results=results,
        completed_trials=completed,
        failures=failures,
    )
