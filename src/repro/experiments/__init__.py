"""Experiment harness: ensembles, figures, statistics, reports.

The paper's evaluation is 50 simulation trials of every (heuristic,
filter-variant) pair, summarized as box-and-whisker plots of missed
deadlines (Figures 2-6) plus in-text median improvements.  This package
reruns that grid:

* :mod:`~repro.experiments.runner` executes ensembles with paired trial
  seeds (every variant sees the same cluster/workload within a trial),
  optionally across processes;
* :mod:`~repro.experiments.executor` supervises that fan-out: per-trial
  timeouts, deterministic retries, poison-trial quarantine, and JSONL
  trial checkpoints with digest-verified resume;
* :mod:`~repro.experiments.chaos` injects deterministic faults
  (crash/hang/corrupt/error) so the recovery paths are testable;
* :mod:`~repro.experiments.figures` names the paper's figures and maps
  them to variant grids;
* :mod:`~repro.experiments.stats` computes box-plot statistics;
* :mod:`~repro.experiments.report` renders the tables recorded in
  ``EXPERIMENTS.md``, side by side with the paper's published medians.
"""

from repro.experiments.chaos import FaultPlan, parse_fault_plan
from repro.experiments.executor import (
    CheckpointWriter,
    RetryPolicy,
    TrialFailure,
    load_checkpoint,
    run_supervised,
)
from repro.experiments.runner import (
    EnsembleResult,
    PartialEnsembleResult,
    VariantSpec,
    run_ensemble,
    run_trial_variant,
)
from repro.experiments.figures import (
    FIGURES,
    PAPER_MEDIANS,
    figure_specs,
    run_figure,
)
from repro.experiments.stats import (
    BoxStats,
    box_stats,
    completeness_note,
    median_improvement,
)
from repro.experiments.compare import PairedComparison, compare_variants
from repro.experiments.sweep import SweepResult, budget_sweep, run_sweep
from repro.experiments.report import figure_table, summary_table

__all__ = [
    "EnsembleResult",
    "PartialEnsembleResult",
    "VariantSpec",
    "run_ensemble",
    "run_trial_variant",
    "FaultPlan",
    "parse_fault_plan",
    "CheckpointWriter",
    "RetryPolicy",
    "TrialFailure",
    "load_checkpoint",
    "run_supervised",
    "completeness_note",
    "FIGURES",
    "PAPER_MEDIANS",
    "figure_specs",
    "run_figure",
    "BoxStats",
    "box_stats",
    "median_improvement",
    "PairedComparison",
    "compare_variants",
    "SweepResult",
    "budget_sweep",
    "run_sweep",
    "figure_table",
    "summary_table",
]
