"""Experiment harness: ensembles, figures, statistics, reports.

The paper's evaluation is 50 simulation trials of every (heuristic,
filter-variant) pair, summarized as box-and-whisker plots of missed
deadlines (Figures 2-6) plus in-text median improvements.  This package
reruns that grid:

* :mod:`~repro.experiments.runner` executes ensembles with paired trial
  seeds (every variant sees the same cluster/workload within a trial),
  optionally across processes;
* :mod:`~repro.experiments.figures` names the paper's figures and maps
  them to variant grids;
* :mod:`~repro.experiments.stats` computes box-plot statistics;
* :mod:`~repro.experiments.report` renders the tables recorded in
  ``EXPERIMENTS.md``, side by side with the paper's published medians.
"""

from repro.experiments.runner import (
    EnsembleResult,
    VariantSpec,
    run_ensemble,
    run_trial_variant,
)
from repro.experiments.figures import (
    FIGURES,
    PAPER_MEDIANS,
    figure_specs,
    run_figure,
)
from repro.experiments.stats import BoxStats, box_stats, median_improvement
from repro.experiments.compare import PairedComparison, compare_variants
from repro.experiments.sweep import SweepResult, budget_sweep, run_sweep
from repro.experiments.report import figure_table, summary_table

__all__ = [
    "EnsembleResult",
    "VariantSpec",
    "run_ensemble",
    "run_trial_variant",
    "FIGURES",
    "PAPER_MEDIANS",
    "figure_specs",
    "run_figure",
    "BoxStats",
    "box_stats",
    "median_improvement",
    "PairedComparison",
    "compare_variants",
    "SweepResult",
    "budget_sweep",
    "run_sweep",
    "figure_table",
    "summary_table",
]
