"""The paper's figures as named experiment definitions.

Figures 2-5 each show one heuristic across the four filter variants;
Figure 6 shows the best variant of each heuristic.  ``PAPER_MEDIANS``
records the medians the paper states in Section VII, for side-by-side
reporting (shape comparison, not absolute-number matching — our substrate
re-samples its own cluster).
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.runner import EnsembleResult, VariantSpec, run_ensemble
from repro.filters.chain import VARIANTS
from repro.heuristics.registry import HEURISTICS

__all__ = ["FIGURES", "PAPER_MEDIANS", "figure_specs", "run_figure", "full_grid_specs"]

#: Figure id -> heuristic shown (fig6 covers all four).
FIGURES: dict[str, tuple[str, ...]] = {
    "fig2": ("SQ",),
    "fig3": ("MECT",),
    "fig4": ("LL",),
    "fig5": ("Random",),
    "fig6": HEURISTICS,
}

#: Median missed deadlines (out of 1,000) reported in Section VII.
#: ``None`` marks values the paper does not state explicitly.
PAPER_MEDIANS: dict[tuple[str, str], float | None] = {
    ("SQ", "none"): 375.5,
    ("SQ", "en"): None,
    ("SQ", "rob"): None,
    ("SQ", "en+rob"): 234.5,
    ("MECT", "none"): 370.0,
    ("MECT", "en"): None,
    ("MECT", "rob"): None,
    ("MECT", "en+rob"): 239.5,
    ("LL", "none"): 381.0,
    ("LL", "en"): None,
    ("LL", "rob"): None,
    ("LL", "en+rob"): 226.0,
    ("Random", "none"): 561.5,
    ("Random", "en"): 580.9,  # "worsens the median performance by 3.45%"
    ("Random", "rob"): 335.5,
    ("Random", "en+rob"): 266.0,
}


def figure_specs(figure: str) -> tuple[VariantSpec, ...]:
    """The variant grid a figure requires.

    Figures 2-5: one heuristic x all four variants.  Figure 6 needs the
    *best* variant of each heuristic, which is only known after running
    the full grid, so it returns all sixteen specs.
    """
    try:
        heuristics = FIGURES[figure]
    except KeyError:
        raise KeyError(f"unknown figure {figure!r}; known: {sorted(FIGURES)}") from None
    return tuple(
        VariantSpec(heuristic=h, variant=v) for h in heuristics for v in VARIANTS
    )


def full_grid_specs() -> tuple[VariantSpec, ...]:
    """All sixteen (heuristic, variant) cells of the evaluation."""
    return tuple(
        VariantSpec(heuristic=h, variant=v) for h in HEURISTICS for v in VARIANTS
    )


def run_figure(
    figure: str,
    config: SimulationConfig,
    num_trials: int,
    base_seed: int = 0,
    *,
    n_jobs: int = 1,
    **resilience,
) -> EnsembleResult:
    """Run the trials behind one of the paper's figures.

    Extra keyword arguments (``checkpoint``, ``resume``,
    ``trial_timeout``, ``max_retries``, ...) forward to
    :func:`~repro.experiments.runner.run_ensemble`.
    """
    return run_ensemble(
        figure_specs(figure), config, num_trials, base_seed, n_jobs=n_jobs,
        **resilience,
    )
