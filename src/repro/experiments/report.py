"""Rendering result tables (the rows behind each figure).

Output is plain fixed-width text so benches can print it directly and
``EXPERIMENTS.md`` can embed it verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import PAPER_MEDIANS
from repro.experiments.runner import EnsembleResult, PartialEnsembleResult, VariantSpec
from repro.experiments.stats import box_stats, completeness_note, median_improvement
from repro.filters.chain import VARIANTS
from repro.heuristics.registry import HEURISTICS

__all__ = ["figure_table", "summary_table", "best_variant_table"]


def _partial_note(ensemble: EnsembleResult) -> str | None:
    """Incomplete-trial-set annotation, or ``None`` for full ensembles."""
    if not isinstance(ensemble, PartialEnsembleResult):
        return None
    return completeness_note(
        len(ensemble.completed_trials), ensemble.num_trials, ensemble.missing_trials
    )


def figure_table(ensemble: EnsembleResult, heuristic: str, num_tasks: int) -> str:
    """Rows of a Figure 2-5 style box plot for one heuristic."""
    lines = [
        f"{heuristic}: missed deadlines out of {num_tasks} "
        f"({ensemble.num_trials} trials)",
        f"{'variant':>8} {'min':>7} {'q1':>7} {'median':>7} {'q3':>7} {'max':>7} "
        f"{'med %':>7} {'paper med':>9}",
    ]
    for variant in VARIANTS:
        spec = VariantSpec(heuristic, variant)
        if spec not in ensemble.results:
            continue
        misses = ensemble.misses(spec)
        if misses.size == 0:
            lines.append(f"{variant:>8} (no completed trials)")
            continue
        stats = box_stats(misses)
        paper = PAPER_MEDIANS.get((heuristic, variant))
        paper_s = f"{paper:9.1f}" if paper is not None else f"{'-':>9}"
        lines.append(
            f"{variant:>8} {stats.minimum:7.1f} {stats.q1:7.1f} {stats.median:7.1f} "
            f"{stats.q3:7.1f} {stats.maximum:7.1f} "
            f"{100.0 * stats.median / num_tasks:6.2f}% {paper_s}"
        )
    note = _partial_note(ensemble)
    if note is not None:
        lines.append(note)
    return "\n".join(lines)


def best_variant_table(ensemble: EnsembleResult, num_tasks: int) -> str:
    """Figure 6 style rows: the best variant of each heuristic."""
    lines = [
        f"Best variant per heuristic ({ensemble.num_trials} trials)",
        f"{'heuristic':>9} {'best':>7} {'median':>7} {'med %':>7} "
        f"{'vs none':>8} {'paper best med':>14}",
    ]
    for heuristic in HEURISTICS:
        if not any(s.heuristic == heuristic for s in ensemble.specs):
            continue
        best = ensemble.best_variant(heuristic)
        med = ensemble.median_misses(best)
        none_spec = VariantSpec(heuristic, "none")
        if none_spec in ensemble.results:
            gain = median_improvement(ensemble.misses(none_spec), ensemble.misses(best))
            gain_s = f"{100.0 * gain:7.2f}%"
        else:
            gain_s = f"{'-':>8}"
        paper = PAPER_MEDIANS.get((heuristic, "en+rob"))
        paper_s = f"{paper:14.1f}" if paper is not None else f"{'-':>14}"
        lines.append(
            f"{heuristic:>9} {best.variant:>7} {med:7.1f} "
            f"{100.0 * med / num_tasks:6.2f}% {gain_s} {paper_s}"
        )
    note = _partial_note(ensemble)
    if note is not None:
        lines.append(note)
    return "\n".join(lines)


def summary_table(ensemble: EnsembleResult, num_tasks: int) -> str:
    """The Section VII in-text numbers: per-heuristic filtering gains.

    For every heuristic present in the ensemble, reports the median of
    each variant and the improvement of "en+rob" over "none" (the paper:
    25%, 13.65%, 13.05% and 15.5% for Random, SQ, MECT and LL), plus the
    gap between filtered Random and the best filtered heuristic
    (paper: within 4%).
    """
    lines = [
        f"Filtering summary ({ensemble.num_trials} trials, {num_tasks} tasks)",
        f"{'heuristic':>9} " + " ".join(f"{v:>9}" for v in VARIANTS) + f" {'en+rob gain':>12}",
    ]
    medians: dict[tuple[str, str], float] = {}
    for heuristic in HEURISTICS:
        specs = [s for s in ensemble.specs if s.heuristic == heuristic]
        if not specs:
            continue
        row = [f"{heuristic:>9}"]
        for variant in VARIANTS:
            spec = VariantSpec(heuristic, variant)
            if spec in ensemble.results:
                med = ensemble.median_misses(spec)
                medians[(heuristic, variant)] = med
                row.append(f"{med:9.1f}")
            else:
                row.append(f"{'-':>9}")
        if (heuristic, "none") in medians and (heuristic, "en+rob") in medians:
            gain = median_improvement(
                np.array([medians[(heuristic, "none")]]),
                np.array([medians[(heuristic, "en+rob")]]),
            )
            row.append(f"{100.0 * gain:11.2f}%")
        else:
            row.append(f"{'-':>12}")
        lines.append(" ".join(row))

    filtered = {
        h: medians.get((h, "en+rob"))
        for h in HEURISTICS
        if medians.get((h, "en+rob")) is not None
    }
    if "Random" in filtered and len(filtered) > 1:
        best_h = min((h for h in filtered if h != "Random"), key=lambda h: filtered[h])
        best = filtered[best_h]
        rand = filtered["Random"]
        if best is not None and rand is not None:
            # The paper quotes this gap in percentage points of the
            # workload ("only 4% from the 'en+rob' LL heuristic").
            gap_pp = 100.0 * (rand - best) / num_tasks
            lines.append(
                f"filtered Random vs best filtered heuristic ({best_h}): "
                f"{gap_pp:+.2f} pp of the workload (paper: within 4 pp)"
            )
    note = _partial_note(ensemble)
    if note is not None:
        lines.append(note)
    return "\n".join(lines)
