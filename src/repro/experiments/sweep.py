"""Parameter sweeps with paired trials.

A sweep reruns one or more (heuristic, variant) specs while varying a
single configuration knob, holding trial seeds fixed, so each sweep point
is directly comparable (same workload/cluster draws per trial index).
Used by the ablation benches and the budget/heterogeneity examples.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.experiments.runner import EnsembleResult, VariantSpec, run_ensemble
from repro.obs.sinks import EventSink, MetricsRegistry
from repro.obs.spans import SpanProfile
from repro.obs.timeline import TimelineSet
from repro.perf.kernel_cache import PerfConfig

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "budget_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep value's ensemble."""

    value: Any
    ensemble: EnsembleResult

    def median_misses(self, spec: VariantSpec) -> float:
        """Median missed deadlines of one spec at this point."""
        return self.ensemble.median_misses(spec)


@dataclass(frozen=True)
class SweepResult:
    """All points of a sweep, in sweep order."""

    parameter: str
    specs: tuple[VariantSpec, ...]
    points: tuple[SweepPoint, ...]

    def medians(self, spec: VariantSpec) -> np.ndarray:
        """Median misses per sweep point for one spec."""
        return np.array([p.median_misses(spec) for p in self.points])

    def values(self) -> list[Any]:
        """The swept parameter values."""
        return [p.value for p in self.points]

    def table(self, num_tasks: int | None = None) -> str:
        """Fixed-width text table: one row per value, one column per spec."""
        header = f"{self.parameter:>12} " + " ".join(
            f"{s.label:>14}" for s in self.specs
        )
        lines = [header]
        for point in self.points:
            row = [f"{point.value!s:>12}"]
            for spec in self.specs:
                row.append(f"{point.median_misses(spec):14.1f}")
            lines.append(" ".join(row))
        if num_tasks is not None:
            lines.append(f"(median missed deadlines out of {num_tasks})")
        return "\n".join(lines)


def _point_checkpoint(
    checkpoint: str | pathlib.Path | None, index: int
) -> pathlib.Path | None:
    """Per-point shard path: sweep points have different config digests,
    so each point gets its own JSONL shard next to the requested one."""
    if checkpoint is None:
        return None
    path = pathlib.Path(checkpoint)
    suffix = path.suffix or ".jsonl"
    return path.with_name(f"{path.stem}.point{index}{suffix}")


def run_sweep(
    parameter: str,
    values: Sequence[Any],
    patch: Callable[[SimulationConfig, Any], SimulationConfig],
    specs: Sequence[VariantSpec],
    base_config: SimulationConfig,
    num_trials: int,
    base_seed: int = 0,
    *,
    n_jobs: int = 1,
    checkpoint: str | pathlib.Path | None = None,
    resume: bool = False,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanProfile | None = None,
    timeline: TimelineSet | None = None,
    perf: PerfConfig | None = None,
) -> SweepResult:
    """Run ``specs`` at every parameter value.

    Parameters
    ----------
    patch:
        ``(config, value) -> config`` applying the sweep value; it must
        not change the seed (the sweep re-derives trial seeds from
        ``base_seed`` so points stay paired).
    checkpoint / resume / trial_timeout / max_retries:
        Resilience options forwarded to
        :func:`~repro.experiments.runner.run_ensemble`; ``checkpoint``
        fans out to one shard per sweep point
        (``name.pointN.jsonl``), so an interrupted sweep resumes
        point by point.
    metrics / sinks / profile / timeline:
        Observability collectors forwarded to every point's ensemble;
        one registry / span profile / timeline set accumulates across
        the whole sweep (points are distinguishable by span stream
        labels and timeline labels).
    perf:
        Hot-path performance knobs forwarded to every trial
        (results-neutral; see :mod:`repro.perf`).
    """
    if not values:
        raise ValueError("need at least one sweep value")
    specs = tuple(specs)
    points: list[SweepPoint] = []
    for index, value in enumerate(values):
        config = patch(base_config, value)
        if config.seed != base_config.seed:
            raise ValueError("patch must not change the seed")
        ensemble = run_ensemble(
            specs,
            config,
            num_trials,
            base_seed,
            n_jobs=n_jobs,
            checkpoint=_point_checkpoint(checkpoint, index),
            resume=resume,
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            metrics=metrics,
            sinks=sinks,
            profile=profile,
            timeline=timeline,
            perf=perf,
        )
        points.append(SweepPoint(value=value, ensemble=ensemble))
    return SweepResult(parameter=parameter, specs=specs, points=tuple(points))


def budget_sweep(
    multipliers: Sequence[float],
    specs: Sequence[VariantSpec],
    base_config: SimulationConfig,
    num_trials: int,
    base_seed: int = 0,
    *,
    n_jobs: int = 1,
    checkpoint: str | pathlib.Path | None = None,
    resume: bool = False,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    metrics: MetricsRegistry | None = None,
    sinks: Sequence[EventSink] = (),
    profile: SpanProfile | None = None,
    timeline: TimelineSet | None = None,
    perf: PerfConfig | None = None,
) -> SweepResult:
    """Sweep the energy-budget multiplier (the constraint's tightness)."""

    def patch(config: SimulationConfig, mult: float) -> SimulationConfig:
        return config.with_updates(energy={"budget_mult": mult})

    return run_sweep(
        "budget_mult",
        list(multipliers),
        patch,
        specs,
        base_config,
        num_trials,
        base_seed,
        n_jobs=n_jobs,
        checkpoint=checkpoint,
        resume=resume,
        trial_timeout=trial_timeout,
        max_retries=max_retries,
        metrics=metrics,
        sinks=sinks,
        profile=profile,
        timeline=timeline,
        perf=perf,
    )
