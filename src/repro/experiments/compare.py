"""Paired statistical comparison of variants.

The ensemble design is *paired*: every variant sees the same workload and
cluster within a trial, so differences should be tested per-trial, not by
comparing marginal distributions.  :func:`compare_variants` runs the
Wilcoxon signed-rank test (with a sign-test fallback for tiny or
degenerate samples) on per-trial miss differences — the statistically
sound version of the paper's "X improves on Y by Z%" statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.experiments.runner import EnsembleResult, VariantSpec

__all__ = ["PairedComparison", "compare_variants"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired comparison between two specs.

    ``diffs`` holds per-trial ``misses(a) - misses(b)``; positive means
    ``b`` missed fewer (is better).  ``p_value`` is two-sided.
    """

    a: VariantSpec
    b: VariantSpec
    n: int
    median_a: float
    median_b: float
    mean_diff: float
    wins_b: int
    losses_b: int
    ties: int
    p_value: float
    method: str

    @property
    def b_is_better(self) -> bool:
        """Whether ``b`` has the lower median miss count."""
        return self.median_b < self.median_a

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the paired difference is significant at ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"{self.b.label} vs {self.a.label}: med {self.median_b:g} vs "
            f"{self.median_a:g}, wins {self.wins_b}/{self.n}, "
            f"p={self.p_value:.4f} ({self.method})"
        )


def compare_variants(
    ensemble: EnsembleResult, a: VariantSpec, b: VariantSpec
) -> PairedComparison:
    """Paired test of ``b`` against ``a`` over an ensemble's trials."""
    misses_a = ensemble.misses(a).astype(np.float64)
    misses_b = ensemble.misses(b).astype(np.float64)
    if misses_a.shape != misses_b.shape:
        raise ValueError("specs were not run over the same trials")
    diffs = misses_a - misses_b
    nonzero = diffs[diffs != 0.0]
    wins_b = int(np.sum(diffs > 0))
    losses_b = int(np.sum(diffs < 0))
    ties = int(np.sum(diffs == 0))

    if nonzero.size == 0:
        p_value, method = 1.0, "all-ties"
    elif nonzero.size < 5 or np.all(nonzero == nonzero[0]):
        # Wilcoxon is unreliable (or degenerate) here; use the sign test.
        p_value = float(
            stats.binomtest(wins_b, wins_b + losses_b, p=0.5).pvalue
        )
        method = "sign-test"
    else:
        res = stats.wilcoxon(nonzero)
        p_value, method = float(res.pvalue), "wilcoxon"

    return PairedComparison(
        a=a,
        b=b,
        n=int(diffs.size),
        median_a=float(np.median(misses_a)),
        median_b=float(np.median(misses_b)),
        mean_diff=float(diffs.mean()),
        wins_b=wins_b,
        losses_b=losses_b,
        ties=ties,
        p_value=p_value,
        method=method,
    )
