"""Supervised ensemble execution: timeouts, retries, quarantine, checkpoints.

The naive fan-out (``ProcessPoolExecutor.map``) fails closed: one worker
crash, hang, or corrupted result aborts the whole ensemble and discards
every completed trial.  This module fails *open* instead, applying the
robustness discipline of the paper's scheduler to the harness itself:

* :func:`run_supervised` owns a pool of worker processes connected by
  pipes.  Trials are dispatched in *chunks* of ``chunk_size`` jobs per
  IPC round (auto-sized from the trial count and ``n_jobs`` by
  default), but fault granularity stays per-trial: a dying worker
  forfeits only the trial it was running — the rest of its chunk is
  requeued at the same attempt, uncharged — a hung worker is killed at
  the per-trial wall-clock timeout (the deadline re-arms as each trial
  of a chunk starts), and result payloads are checksummed so transport
  corruption is detected rather than silently recorded.  Results travel
  as single-copy binary frames: the worker pickles the value once,
  directly into the frame buffer behind a fixed header carrying the
  trial index and the payload's SHA-256, instead of pickling the value
  and then pickling the (blob, digest) tuple again for the pipe.
* Failed trials retry with exponential backoff and **deterministic**
  jitter derived from ``(base_seed, "retry", trial, attempt)`` via
  :mod:`repro.rng` — chaos runs replay exactly.  A trial that exhausts
  its retry budget is quarantined as poison; the ensemble completes
  without it and reports it missing.
* :class:`CheckpointWriter` / :func:`load_checkpoint` stream completed
  trials to a JSONL shard keyed by the run's config digest and base
  seed.  Resume skips every checkpointed trial whose stored per-spec
  digests re-verify (via :func:`repro.obs.manifest.trial_digest`);
  undecodable records — e.g. a final line truncated by a kill mid-write
  — are dropped with a warning and the trial re-runs.

Every recovery action is observable: ``TrialRetried`` /
``TrialQuarantined`` / ``CheckpointWritten`` events flow to the caller's
sinks and the ``executor.*`` counters land in the caller's
:class:`~repro.obs.sinks.MetricsRegistry`.

Determinism: supervision never touches trial seeds.  Workers run the
same job function the serial path runs, results are keyed by trial
index, and fan-in order is sorted — so a recovered run is bitwise
identical to a fault-free serial run (the chaos tests pin this down via
manifest digests).
"""

from __future__ import annotations

import hashlib
import heapq
import io
import json
import multiprocessing
import multiprocessing.connection
import os
import pathlib
import pickle
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro import rng as rng_mod
from repro.experiments.chaos import FAULT_CORRUPT, FAULT_CRASH, FAULT_ERROR, FAULT_HANG, FaultPlan
from repro.obs.events import CheckpointWritten, Event, TrialQuarantined, TrialRetried
from repro.obs.sinks import MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = [
    "RetryPolicy",
    "TrialFailure",
    "run_supervised",
    "CheckpointWriter",
    "load_checkpoint",
    "CHECKPOINT_FORMAT",
]

#: On-disk format tag of checkpoint shard records.
CHECKPOINT_FORMAT = "repro.checkpoint/1"

#: Fault kinds the supervisor itself diagnoses (chaos reuses the names).
FAULT_TIMEOUT = "timeout"

_CRASH_EXIT = 86
_HANG_SECONDS = 3600.0
#: Floor for supervisor poll timeouts, so deadline rounding can't spin.
_MIN_WAIT = 0.01

#: Result-frame layout: status byte, trial index, payload SHA-256, payload.
_STATUS_OK = 0x52  # "R"
_STATUS_ERR = 0x45  # "E"
_HEADER_SIZE = 1 + 8 + 32
#: Chunk auto-sizing: aim for this many dispatch waves per worker (keeps
#: the tail balanced when trials have uneven durations) up to this cap
#: (bounds how much work one crash or timeout can requeue).  Two waves —
#: not four — and ceiling division: floor-dividing by four waves drove
#: small ensembles (e.g. 16 trials on 4 jobs) to chunk size 1, paying
#: one IPC round trip per trial and benchmarking *slower* than unchunked
#: dispatch.
_CHUNK_WAVES = 2
_CHUNK_CAP = 16


def _auto_chunk_size(num_trials: int, n_jobs: int) -> int:
    """Default jobs per IPC round given the trial count and pool size."""
    per_worker = -(-num_trials // (_CHUNK_WAVES * max(1, n_jobs)))
    return max(1, min(_CHUNK_CAP, per_worker))


def _result_frame(trial: int, value: Any) -> memoryview:
    """Pickle ``value`` once, in place, behind the framed header.

    The pickler writes directly after a placeholder header in one
    buffer; the header (status, trial, SHA-256 of the payload bytes) is
    then patched in via ``getbuffer`` — no second serialization or copy
    of the payload ever happens on the worker side.
    """
    buf = io.BytesIO()
    buf.write(b"\x00" * _HEADER_SIZE)
    pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    frame = buf.getbuffer()
    frame[0] = _STATUS_OK
    frame[1:9] = trial.to_bytes(8, "little")
    frame[9:_HEADER_SIZE] = hashlib.sha256(frame[_HEADER_SIZE:]).digest()
    return frame


def _error_frame(trial: int, detail: str) -> bytes:
    """Frame an error reply: status, trial, UTF-8 detail text."""
    return (
        bytes((_STATUS_ERR,))
        + trial.to_bytes(8, "little")
        + detail.encode("utf-8", "replace")
    )


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    The delay before retrying attempt ``n`` (1-based) is
    ``min(cap, base * 2**(n-1))`` scaled by a jitter factor in
    ``[0.5, 1.0)`` drawn from the :mod:`repro.rng` stream
    ``(base_seed, "retry", trial, attempt)`` — reproducible across
    processes and runs, unlike wall-clock-seeded jitter.
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    def delay(self, base_seed: int, trial: int, attempt: int) -> float:
        """Backoff (seconds) before re-running ``trial`` after ``attempt`` failed."""
        if self.backoff_base <= 0.0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))
        jitter = float(rng_mod.stream(base_seed, "retry", trial, attempt).random())
        return raw * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class TrialFailure:
    """The post-mortem of one quarantined (poison) trial."""

    trial: int
    attempts: int
    fault: str
    detail: str


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _ChaosError(RuntimeError):
    """Raised inside a worker by an injected ``error`` fault."""


def _worker_main(conn: multiprocessing.connection.Connection) -> None:
    """Worker loop: receive ``(fn, jobs)`` chunks; ``None`` means exit.

    Each job is ``(trial, attempt, payload, fault)``; the chunk's trials
    run strictly in order and every trial replies with its own binary
    frame (see :func:`_result_frame` / :func:`_error_frame`) as soon as
    it resolves, so the supervisor sees per-trial progress even though
    dispatch is chunked.  Injected crash/hang faults bypass the reply
    for their trial (that is the point) — a crash mid-chunk abandons the
    rest of the chunk exactly like a real mid-chunk death would.
    """
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            fn, jobs = msg
            for trial, attempt, payload, fault in jobs:
                if fault == FAULT_CRASH:
                    os._exit(_CRASH_EXIT)
                if fault == FAULT_HANG:
                    time.sleep(_HANG_SECONDS)
                    conn.send_bytes(
                        _error_frame(trial, "injected hang outlived the supervisor")
                    )
                    continue
                try:
                    if fault == FAULT_ERROR:
                        raise _ChaosError(
                            f"injected error fault (trial {trial}, attempt {attempt})"
                        )
                    frame = _result_frame(trial, fn(payload))
                    if fault == FAULT_CORRUPT:
                        frame[_HEADER_SIZE] ^= 0xFF
                    conn.send_bytes(frame)
                except Exception as exc:
                    conn.send_bytes(
                        _error_frame(trial, f"{type(exc).__name__}: {exc}")
                    )
    except (EOFError, OSError, KeyboardInterrupt):
        pass


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits imports); default otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Worker:
    """One supervised worker process plus its pipe and in-flight chunk."""

    __slots__ = ("conn", "process", "jobs", "deadline", "started_at")

    def __init__(self, ctx: multiprocessing.context.BaseContext) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.process = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        #: Remaining (trial, attempt) jobs of the in-flight chunk; the
        #: head entry is the trial the worker is running *now* — its
        #: deadline and span clock below always refer to the head.
        self.jobs: deque[tuple[int, int]] = deque()
        self.deadline: float | None = None
        self.started_at: float = 0.0

    def kill(self) -> None:
        """Terminate the process and close the pipe (idempotent)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------


def run_supervised(
    fn: Callable[[Any], Any],
    payloads: Mapping[int, Any],
    *,
    base_seed: int,
    n_jobs: int,
    trial_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    on_event: Callable[[Event], None] | None = None,
    metrics: MetricsRegistry | None = None,
    profile: SpanRecorder | None = None,
    chunk_size: int | None = None,
) -> tuple[dict[int, Any], list[TrialFailure]]:
    """Run ``fn(payloads[trial])`` for every trial under supervision.

    Returns ``(done, failures)``: results keyed by trial index, plus one
    :class:`TrialFailure` per quarantined trial.  ``on_result`` fires as
    each trial completes (checkpointing hook); ``on_event`` receives
    :class:`~repro.obs.events.TrialRetried` /
    :class:`~repro.obs.events.TrialQuarantined`.

    ``chunk_size`` is the number of jobs handed to a worker per IPC
    round (``None`` auto-sizes from the trial count and ``n_jobs``;
    chaos-scale ensembles get 1).  Chunking amortizes dispatch latency
    without coarsening recovery: workers reply per trial, the per-trial
    ``trial_timeout`` deadline re-arms as each trial of a chunk starts,
    and when a worker dies only the trial it was actually running is
    charged a fault — the untouched remainder of its chunk goes back to
    the queue at the same attempt number.  Checkpoint (``on_result``)
    and quarantine granularity are therefore identical to
    ``chunk_size=1``.

    With ``profile``, every attempt's start-to-resolution wall time is
    recorded as an ``executor.trial`` span (``tid`` = pool slot, so
    trace viewers show one lane per worker; faulted and timed-out
    attempts are included — their cost is real even when their result
    is discarded).  A chunked trial's span starts when it becomes its
    worker's head job, not when the chunk was sent.

    ``fn`` and the payloads must be picklable; ``fn`` must be a
    module-level callable so the worker can resolve it.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    retry = retry or RetryPolicy()
    done: dict[int, Any] = {}
    failures: list[TrialFailure] = []
    if not payloads:
        return done, failures

    def emit(event: Event) -> None:
        if on_event is not None:
            on_event(event)

    def count(name: str, n: int = 1) -> None:
        if metrics is not None:
            metrics.inc(name, n)

    def span_trial(started_at: float, slot: int) -> None:
        if profile is not None:
            profile.add(
                "executor.trial", started_at, time.perf_counter() - started_at, tid=slot
            )

    # (eligible_time, trial, attempt); attempts are 1-based.
    now = time.monotonic()
    pending: list[tuple[float, int, int]] = [(now, t, 1) for t in sorted(payloads)]
    heapq.heapify(pending)
    chunk = chunk_size if chunk_size is not None else _auto_chunk_size(len(payloads), n_jobs)

    def abandon_chunk(worker: _Worker) -> None:
        """Requeue a dead worker's untouched jobs at the same attempt.

        They never ran, so no fault is charged and no retry is counted —
        they become immediately eligible again.
        """
        now = time.monotonic()
        count("executor.trials_requeued", len(worker.jobs))
        while worker.jobs:
            trial, attempt = worker.jobs.popleft()
            heapq.heappush(pending, (now, trial, attempt))

    def handle_fault(trial: int, attempt: int, fault: str, detail: str) -> None:
        count(f"executor.faults.{fault}")
        if attempt > retry.max_retries:
            failures.append(
                TrialFailure(trial=trial, attempts=attempt, fault=fault, detail=detail)
            )
            count("executor.trials_quarantined")
            emit(TrialQuarantined(trial=trial, attempts=attempt, fault=fault))
        else:
            delay = retry.delay(base_seed, trial, attempt)
            heapq.heappush(pending, (time.monotonic() + delay, trial, attempt + 1))
            count("executor.trials_retried")
            emit(TrialRetried(trial=trial, attempt=attempt, fault=fault, delay=delay))

    ctx = _mp_context()
    workers = [_Worker(ctx) for _ in range(min(n_jobs, len(payloads)))]
    try:
        while len(done) + len(failures) < len(payloads):
            now = time.monotonic()
            # Assign up to ``chunk`` eligible pending jobs per idle worker.
            for slot, worker in enumerate(workers):
                if worker.jobs or not pending or pending[0][0] > now:
                    continue
                jobs: list[tuple[int, int, Any, str | None]] = []
                while pending and pending[0][0] <= now and len(jobs) < chunk:
                    _, trial, attempt = heapq.heappop(pending)
                    fault = fault_plan.fault_for(trial, attempt) if fault_plan else None
                    jobs.append((trial, attempt, payloads[trial], fault))
                try:
                    worker.conn.send((fn, jobs))
                except (BrokenPipeError, OSError):
                    # The worker died between chunks; put the jobs back
                    # and replace the worker before trying again.
                    for trial, attempt, _payload, _fault in jobs:
                        heapq.heappush(pending, (now, trial, attempt))
                    worker.kill()
                    workers[slot] = _Worker(ctx)
                    continue
                worker.jobs = deque((t, a) for t, a, _p, _f in jobs)
                worker.deadline = now + trial_timeout if trial_timeout is not None else None
                worker.started_at = time.perf_counter()
                count("executor.chunks_dispatched")
                count("executor.trials_dispatched", len(jobs))

            busy = [w for w in workers if w.jobs]
            # How long may we block?  Until the soonest worker deadline
            # or the soonest retry becomes eligible.
            horizons = [w.deadline - now for w in busy if w.deadline is not None]
            if pending:
                horizons.append(pending[0][0] - now)
            wait_for = max(_MIN_WAIT, min(horizons)) if horizons else None
            if not busy:
                if wait_for is None:
                    break  # nothing running, nothing pending: done
                time.sleep(wait_for)
                continue

            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=wait_for
            )
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                if not worker.jobs:  # pragma: no cover - defensive
                    continue
                slot = workers.index(worker)
                trial, attempt = worker.jobs[0]
                started_at = worker.started_at
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    # Pipe closed without a reply: the worker crashed on
                    # its current trial.  Only that trial is forfeit —
                    # the untouched rest of the chunk goes back as-is.
                    worker.jobs.popleft()
                    abandon_chunk(worker)
                    worker.kill()
                    workers[slot] = _Worker(ctx)
                    span_trial(started_at, slot)
                    handle_fault(trial, attempt, FAULT_CRASH, "worker process died")
                    continue
                worker.jobs.popleft()
                span_trial(started_at, slot)
                view = memoryview(frame)
                ok_len = len(view) >= 9
                status = view[0] if ok_len else -1
                frame_trial = int.from_bytes(view[1:9], "little") if ok_len else -1
                if frame_trial != trial:  # pragma: no cover - defensive
                    handle_fault(
                        trial, attempt, FAULT_CORRUPT,
                        "reply frame named the wrong trial",
                    )
                elif status == _STATUS_OK:
                    payload = view[_HEADER_SIZE:]
                    if hashlib.sha256(payload).digest() != bytes(view[9:_HEADER_SIZE]):
                        handle_fault(
                            trial, attempt, FAULT_CORRUPT,
                            "result payload failed its checksum",
                        )
                    else:
                        value = pickle.loads(payload)
                        done[trial] = value
                        if on_result is not None:
                            on_result(trial, value)
                elif status == _STATUS_ERR:
                    handle_fault(
                        trial, attempt, FAULT_ERROR,
                        bytes(view[9:]).decode("utf-8", "replace"),
                    )
                else:  # pragma: no cover - defensive
                    handle_fault(
                        trial, attempt, FAULT_CORRUPT, "malformed result frame"
                    )
                # The next trial of the chunk (if any) starts now: re-arm
                # its deadline and span clock.
                if worker.jobs:
                    worker.deadline = (
                        time.monotonic() + trial_timeout
                        if trial_timeout is not None
                        else None
                    )
                    worker.started_at = time.perf_counter()
                else:
                    worker.deadline = None

            # Enforce per-trial wall-clock deadlines on whoever is left.
            now = time.monotonic()
            for i, worker in enumerate(workers):
                if not worker.jobs or worker.deadline is None or now < worker.deadline:
                    continue
                trial, attempt = worker.jobs.popleft()
                started_at = worker.started_at
                abandon_chunk(worker)
                worker.kill()
                workers[i] = _Worker(ctx)
                span_trial(started_at, i)
                handle_fault(
                    trial, attempt, FAULT_TIMEOUT,
                    f"trial exceeded {trial_timeout}s wall clock",
                )
    finally:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.kill()
            else:
                worker.conn.close()
    return done, failures


# ----------------------------------------------------------------------
# Trial checkpointing
# ----------------------------------------------------------------------


class CheckpointWriter:
    """Append completed trials to a JSONL checkpoint shard.

    One record per trial: the run key (``config_digest`` + ``base_seed``
    + spec labels), the per-spec results, their digests (recomputed on
    load, so a tampered or bit-rotted record re-runs instead of
    poisoning the resumed ensemble), and the worker's serialized metrics
    registry.  Records are flushed line-atomically; a process killed
    mid-write leaves at most one truncated final line, which
    :func:`load_checkpoint` drops with a warning.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        config_digest: str,
        base_seed: int,
        spec_labels: Sequence[str],
        keep_outcomes: bool = False,
        append: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.config_digest = config_digest
        self.base_seed = base_seed
        self.spec_labels = tuple(spec_labels)
        self.keep_outcomes = keep_outcomes
        self._file = self.path.open("a" if append else "w", encoding="utf-8")
        self.records = 0

    def write(self, trial: int, results: Sequence[Any], metrics_dict: dict | None) -> None:
        """Append one completed trial (all specs) to the shard."""
        from repro.io.results_io import trial_result_to_dict
        from repro.obs.manifest import trial_digest

        record = {
            "format": CHECKPOINT_FORMAT,
            "config_digest": self.config_digest,
            "base_seed": self.base_seed,
            "trial": trial,
            "specs": list(self.spec_labels),
            "digests": [trial_digest(r) for r in results],
            "results": [
                trial_result_to_dict(r, keep_outcomes=self.keep_outcomes)
                for r in results
            ],
            "metrics": metrics_dict,
        }
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")
        self._file.flush()
        self.records += 1

    def close(self) -> None:
        """Flush and close the shard."""
        self._file.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def load_checkpoint(
    path: str | pathlib.Path,
    *,
    config_digest: str,
    base_seed: int,
    spec_labels: Sequence[str],
    num_trials: int,
) -> tuple[dict[int, tuple[list[Any], dict | None]], list[str]]:
    """Read a checkpoint shard back, keeping only verified records.

    Returns ``(restored, notes)``: per-trial ``(results, metrics_dict)``
    keyed by trial index, plus a human-readable note for every record
    that was skipped — undecodable (truncated final line), keyed to a
    different run (config digest / base seed / specs), out of range, or
    failing digest re-verification.  Each note is also raised as a
    ``RuntimeWarning``; skipped trials simply re-run.

    Later records win when a trial appears twice (resume appends).
    """
    from repro.io.results_io import trial_result_from_dict
    from repro.obs.manifest import trial_digest

    path = pathlib.Path(path)
    restored: dict[int, tuple[list[Any], dict | None]] = {}
    notes: list[str] = []
    spec_labels = list(spec_labels)
    if not path.exists():
        return restored, notes
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            notes.append(
                f"{path.name}:{lineno}: dropped undecodable record "
                "(truncated by an interrupted write?); its trial will re-run"
            )
            continue
        if data.get("format") != CHECKPOINT_FORMAT:
            notes.append(f"{path.name}:{lineno}: not a {CHECKPOINT_FORMAT} record")
            continue
        if (
            data.get("config_digest") != config_digest
            or data.get("base_seed") != base_seed
            or list(data.get("specs", ())) != spec_labels
        ):
            notes.append(
                f"{path.name}:{lineno}: record belongs to a different run "
                "(config digest, base seed, or spec grid differ); ignored"
            )
            continue
        trial = int(data["trial"])
        if not 0 <= trial < num_trials:
            notes.append(f"{path.name}:{lineno}: trial {trial} out of range; ignored")
            continue
        try:
            results = [trial_result_from_dict(entry) for entry in data["results"]]
        except (KeyError, TypeError, ValueError) as exc:
            notes.append(
                f"{path.name}:{lineno}: malformed results ({exc}); trial {trial} will re-run"
            )
            continue
        if [trial_digest(r) for r in results] != list(data.get("digests", ())):
            notes.append(
                f"{path.name}:{lineno}: digest mismatch; trial {trial} will re-run"
            )
            continue
        restored[trial] = (results, data.get("metrics"))
    for note in notes:
        warnings.warn(f"checkpoint: {note}", RuntimeWarning, stacklevel=2)
    return restored, notes
