"""Box-and-whisker statistics matching the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats", "median_improvement", "completeness_note"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus Tukey whiskers and outliers.

    Whiskers extend to the most extreme data points within 1.5 IQR of
    the quartiles (the conventional box-plot rule); points beyond are
    outliers.
    """

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def __str__(self) -> str:
        return (
            f"n={self.n} min={self.minimum:g} q1={self.q1:g} med={self.median:g} "
            f"q3={self.q3:g} max={self.maximum:g}"
        )


def box_stats(values: np.ndarray | list[float]) -> BoxStats:
    """Compute :class:`BoxStats` for a sample.

    Quartiles use linear interpolation (NumPy's default), matching common
    plotting libraries.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    outliers = arr[(arr < lo_fence) | (arr > hi_fence)]
    return BoxStats(
        n=int(arr.size),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        whisker_low=float(inside.min()),
        whisker_high=float(inside.max()),
        outliers=tuple(float(x) for x in np.sort(outliers)),
    )


def completeness_note(
    n_observed: int,
    n_requested: int,
    missing: tuple[int, ...] | list[int] = (),
) -> str | None:
    """Annotation for statistics computed over an incomplete trial set.

    Supervised ensembles can quarantine poison trials instead of
    aborting; any median quoted from such a run must say so.  Returns
    ``None`` when the sample is complete.
    """
    if n_observed >= n_requested:
        return None
    note = f"NOTE: medians computed over {n_observed}/{n_requested} trials"
    if missing:
        note += f" (missing trials: {', '.join(str(i) for i in missing)})"
    return note


def median_improvement(baseline: np.ndarray, improved: np.ndarray) -> float:
    """Relative median improvement, as the paper quotes it.

    For miss counts (lower is better): ``(med(baseline) - med(improved))
    / med(baseline)``; positive means ``improved`` is better.
    """
    base = float(np.median(np.asarray(baseline, dtype=np.float64)))
    if base == 0.0:
        return 0.0
    imp = float(np.median(np.asarray(improved, dtype=np.float64)))
    return (base - imp) / base
