"""Cluster-spec serialization.

A generated cluster is fully described by, per node: processor count,
cores per processor, P-state speeds/powers, and power-supply efficiency.
Round-tripping a spec pins the exact hardware draw of a trial for later
reruns or external analysis.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.cluster.node import NodeSpec
from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile

__all__ = ["cluster_to_dict", "cluster_from_dict"]

#: Format marker for forward compatibility.
_FORMAT = "repro.cluster/1"


def cluster_to_dict(cluster: ClusterSpec) -> dict[str, Any]:
    """Serialize a cluster spec to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "nodes": [
            {
                "index": node.index,
                "num_processors": node.num_processors,
                "cores_per_processor": node.cores_per_processor,
                "speed": node.pstates.speed.tolist(),
                "power": node.pstates.power.tolist(),
                "efficiency": node.efficiency,
            }
            for node in cluster.nodes
        ],
    }


def cluster_from_dict(data: dict[str, Any]) -> ClusterSpec:
    """Rebuild a cluster spec from :func:`cluster_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    nodes = []
    for entry in data["nodes"]:
        profile = PStateProfile(
            speed=np.asarray(entry["speed"], dtype=np.float64),
            power=np.asarray(entry["power"], dtype=np.float64),
        )
        nodes.append(
            NodeSpec(
                index=int(entry["index"]),
                processors=tuple(
                    ProcessorSpec(int(entry["cores_per_processor"]))
                    for _ in range(int(entry["num_processors"]))
                ),
                pstates=profile,
                efficiency=float(entry["efficiency"]),
            )
        )
    return ClusterSpec(tuple(nodes))
