"""Reading and writing span profiles and timelines.

Profiles are written in Chrome trace-event JSON — the ``traceEvents``
document Perfetto and ``chrome://tracing`` load directly — so the same
file serves both tooling (``repro profile``) and interactive trace
viewers.  Timelines use the ``repro.timeline/1`` parallel-array format
from :mod:`repro.obs.timeline`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.spans import SpanProfile
from repro.obs.timeline import TimelineSet

__all__ = [
    "save_profile",
    "load_profile_events",
    "save_timeline",
    "load_timeline",
]


def save_profile(profile: SpanProfile, path: str | pathlib.Path) -> pathlib.Path:
    """Write a merged profile as Chrome trace-event JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(profile.to_chrome_trace(), sort_keys=True), encoding="utf-8"
    )
    return path


def load_profile_events(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Read the event list back from a Chrome trace-event JSON file.

    Accepts both spellings of the format: an object with a
    ``traceEvents`` key (what :func:`save_profile` writes) or a bare
    JSON array of events.
    """
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if isinstance(data, list):
        events = data
    elif isinstance(data, dict) and isinstance(data.get("traceEvents"), list):
        events = data["traceEvents"]
    else:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    return [e for e in events if isinstance(e, dict)]


def save_timeline(timeline: TimelineSet, path: str | pathlib.Path) -> pathlib.Path:
    """Write a timeline set as a ``repro.timeline/1`` JSON document."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timeline.to_dict(), sort_keys=True), encoding="utf-8")
    return path


def load_timeline(path: str | pathlib.Path) -> TimelineSet:
    """Read a timeline set back from :func:`save_timeline` output."""
    return TimelineSet.from_dict(
        json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    )
