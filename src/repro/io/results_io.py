"""Result serialization: trial results and ensemble dumps.

The ensemble format is intentionally flat (per-spec miss arrays plus the
scalar fields of every trial) so other tools — or a later session of this
one — can regenerate every table in ``EXPERIMENTS.md`` without
re-simulating.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

from repro.experiments.executor import TrialFailure
from repro.experiments.runner import EnsembleResult, PartialEnsembleResult, VariantSpec
from repro.sim.results import TaskOutcome, TrialResult

__all__ = [
    "trial_result_to_dict",
    "trial_result_from_dict",
    "ensemble_to_dict",
    "ensemble_from_dict",
    "save_json",
    "load_json",
]

_TRIAL_FORMAT = "repro.trial/1"
_ENSEMBLE_FORMAT = "repro.ensemble/1"

#: Scalar TrialResult fields copied verbatim (order matters for tests).
_SCALAR_FIELDS = (
    "heuristic",
    "variant",
    "seed",
    "num_tasks",
    "missed",
    "completed_within",
    "discarded",
    "late",
    "energy_cutoff",
    "total_energy",
    "budget",
    "makespan",
)


def _encode_float(x: float) -> float | str:
    """JSON has no inf/nan; encode them as strings."""
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if math.isnan(x):
        return "nan"
    return x


def _decode_float(x: float | str) -> float:
    if isinstance(x, str):
        return float(x)
    return float(x)


def trial_result_to_dict(result: TrialResult, *, keep_outcomes: bool = False) -> dict[str, Any]:
    """Serialize one trial result (outcomes optional; they are bulky)."""
    data: dict[str, Any] = {"format": _TRIAL_FORMAT}
    for field in _SCALAR_FIELDS:
        data[field] = getattr(result, field)
    data["exhaustion_time"] = _encode_float(result.exhaustion_time)
    if keep_outcomes and result.outcomes:
        data["outcomes"] = [
            {
                "task_id": o.task_id,
                "type_id": o.type_id,
                "arrival": o.arrival,
                "deadline": o.deadline,
                "core_id": o.core_id,
                "pstate": o.pstate,
                "start": _encode_float(o.start),
                "completion": _encode_float(o.completion),
                "discarded": o.discarded,
            }
            for o in result.outcomes
        ]
    return data


def trial_result_from_dict(data: dict[str, Any]) -> TrialResult:
    """Rebuild a trial result from :func:`trial_result_to_dict` output."""
    if data.get("format") != _TRIAL_FORMAT:
        raise ValueError(f"not a {_TRIAL_FORMAT} document")
    outcomes: tuple[TaskOutcome, ...] = ()
    if "outcomes" in data:
        outcomes = tuple(
            TaskOutcome(
                task_id=int(o["task_id"]),
                type_id=int(o["type_id"]),
                arrival=float(o["arrival"]),
                deadline=float(o["deadline"]),
                core_id=int(o["core_id"]),
                pstate=int(o["pstate"]),
                start=_decode_float(o["start"]),
                completion=_decode_float(o["completion"]),
                discarded=bool(o["discarded"]),
            )
            for o in data["outcomes"]
        )
    kwargs = {field: data[field] for field in _SCALAR_FIELDS}
    return TrialResult(
        exhaustion_time=_decode_float(data["exhaustion_time"]),
        outcomes=outcomes,
        **kwargs,
    )


def ensemble_to_dict(ensemble: EnsembleResult) -> dict[str, Any]:
    """Serialize a whole ensemble (without per-task outcomes).

    Partial ensembles (quarantined trials) keep their completeness
    metadata in a ``"partial"`` section, so a reloaded result still
    knows which trials are missing and why.
    """
    data: dict[str, Any] = {
        "format": _ENSEMBLE_FORMAT,
        "num_trials": ensemble.num_trials,
        "base_seed": ensemble.base_seed,
        "specs": [{"heuristic": s.heuristic, "variant": s.variant} for s in ensemble.specs],
        "results": {
            spec.label: [
                trial_result_to_dict(result) for result in ensemble.results[spec]
            ]
            for spec in ensemble.specs
        },
    }
    if isinstance(ensemble, PartialEnsembleResult):
        data["partial"] = {
            "completed_trials": list(ensemble.completed_trials),
            "failures": [
                {
                    "trial": f.trial,
                    "attempts": f.attempts,
                    "fault": f.fault,
                    "detail": f.detail,
                }
                for f in ensemble.failures
            ],
        }
    return data


def ensemble_from_dict(data: dict[str, Any]) -> EnsembleResult:
    """Rebuild an ensemble from :func:`ensemble_to_dict` output."""
    if data.get("format") != _ENSEMBLE_FORMAT:
        raise ValueError(f"not a {_ENSEMBLE_FORMAT} document")
    specs = tuple(
        VariantSpec(heuristic=s["heuristic"], variant=s["variant"]) for s in data["specs"]
    )
    results = {
        spec: tuple(
            trial_result_from_dict(entry) for entry in data["results"][spec.label]
        )
        for spec in specs
    }
    if "partial" in data:
        partial = data["partial"]
        return PartialEnsembleResult(
            specs=specs,
            num_trials=int(data["num_trials"]),
            base_seed=int(data["base_seed"]),
            results=results,
            completed_trials=tuple(int(i) for i in partial["completed_trials"]),
            failures=tuple(
                TrialFailure(
                    trial=int(f["trial"]),
                    attempts=int(f["attempts"]),
                    fault=str(f["fault"]),
                    detail=str(f["detail"]),
                )
                for f in partial["failures"]
            ),
        )
    return EnsembleResult(
        specs=specs,
        num_trials=int(data["num_trials"]),
        base_seed=int(data["base_seed"]),
        results=results,
    )


def save_json(data: dict[str, Any], path: str | pathlib.Path) -> pathlib.Path:
    """Write a document produced by the ``*_to_dict`` functions."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    return path


def load_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a document written by :func:`save_json`."""
    return json.loads(pathlib.Path(path).read_text())
