"""Workload serialization.

A serialized workload carries exactly what the engine needs to replay the
same task stream (arrivals, types, deadlines, priorities) plus the rate
triple and ``t_avg`` for bookkeeping.  Execution-time *pmfs* are not part
of the document — they derive from the cluster + ETC draw, which the
trial seed (or :mod:`repro.io.cluster_io`) pins separately.
"""

from __future__ import annotations

from typing import Any

from repro.workload.arrivals import ArrivalRates
from repro.workload.task import Task
from repro.workload.workload import Workload

__all__ = ["workload_to_dict", "workload_from_dict"]

_FORMAT = "repro.workload/1"


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """Serialize a workload to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "t_avg": workload.t_avg,
        "rates": {
            "eq": workload.rates.eq,
            "fast": workload.rates.fast,
            "slow": workload.rates.slow,
        },
        "tasks": [
            {
                "task_id": t.task_id,
                "type_id": t.type_id,
                "arrival": t.arrival,
                "deadline": t.deadline,
                "priority": t.priority,
            }
            for t in workload.tasks
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    rates = ArrivalRates(
        eq=float(data["rates"]["eq"]),
        fast=float(data["rates"]["fast"]),
        slow=float(data["rates"]["slow"]),
    )
    tasks = tuple(
        Task(
            task_id=int(entry["task_id"]),
            type_id=int(entry["type_id"]),
            arrival=float(entry["arrival"]),
            deadline=float(entry["deadline"]),
            priority=float(entry.get("priority", 1.0)),
        )
        for entry in data["tasks"]
    )
    return Workload(tasks=tasks, rates=rates, t_avg=float(data["t_avg"]))
