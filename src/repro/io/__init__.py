"""Serialization: results, workloads and cluster specs as JSON.

Everything a study produces or consumes can round-trip through plain JSON
documents, so full-scale runs (minutes of CPU) can be archived, diffed and
re-reported without re-simulation:

* :mod:`repro.io.results_io` — :class:`~repro.sim.results.TrialResult`
  and ensemble dumps (the format ``scripts/run_full_grid.py`` writes);
* :mod:`repro.io.workload_io` — task streams (arrivals, types, deadlines,
  priorities) for replaying identical workloads across studies;
* :mod:`repro.io.cluster_io` — sampled cluster specs, pinning the exact
  hardware draw of a trial;
* :mod:`repro.io.trace_io` — JSONL event traces written by
  :class:`repro.obs.sinks.JsonlSink`, read back as typed events;
* :mod:`repro.io.profile_io` — span profiles as Chrome trace-event
  JSON (Perfetto-loadable) and sampled state timelines;
* :mod:`repro.io.faults_io` — fault schedules, so a degraded run's
  outage/recovery sequence can be replayed exactly.
"""

from repro.io.cluster_io import cluster_from_dict, cluster_to_dict
from repro.io.faults_io import load_faults, save_faults
from repro.io.profile_io import (
    load_profile_events,
    load_timeline,
    save_profile,
    save_timeline,
)
from repro.io.results_io import (
    ensemble_from_dict,
    ensemble_to_dict,
    load_json,
    save_json,
    trial_result_from_dict,
    trial_result_to_dict,
)
from repro.io.trace_io import iter_trace, load_trace, save_trace
from repro.io.workload_io import workload_from_dict, workload_to_dict

__all__ = [
    "iter_trace",
    "load_trace",
    "save_trace",
    "cluster_from_dict",
    "cluster_to_dict",
    "ensemble_from_dict",
    "ensemble_to_dict",
    "load_json",
    "save_json",
    "trial_result_from_dict",
    "trial_result_to_dict",
    "workload_from_dict",
    "workload_to_dict",
    "load_profile_events",
    "load_timeline",
    "save_profile",
    "save_timeline",
    "load_faults",
    "save_faults",
]
