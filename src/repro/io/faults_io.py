"""Fault-schedule serialization (``repro.faults/1``).

A :class:`~repro.faults.FaultSchedule` is the reproducibility anchor of
a degraded run: archiving the schedule alongside results lets a later
session replay the identical outage/recovery sequence against a
different policy (the degraded-vs-clean comparison in
:mod:`repro.analysis.faults_report` depends on exactly this).  The
document format is the schedule's own ``to_dict``/``from_dict``
round-trip — this module only adds the file I/O.
"""

from __future__ import annotations

import pathlib

from repro.faults import FaultSchedule
from repro.io.results_io import load_json, save_json

__all__ = ["save_faults", "load_faults"]


def save_faults(schedule: FaultSchedule, path: str | pathlib.Path) -> pathlib.Path:
    """Write a fault schedule as a ``repro.faults/1`` JSON document."""
    return save_json(schedule.to_dict(), path)


def load_faults(path: str | pathlib.Path) -> FaultSchedule:
    """Read a fault schedule written by :func:`save_faults`."""
    return FaultSchedule.from_dict(load_json(path))
