"""Reading and writing JSONL event traces.

The write side usually happens live through
:class:`repro.obs.sinks.JsonlSink`; :func:`save_trace` exists for
re-serializing filtered/transformed event lists.  The read side turns a
trace file back into typed event objects so analysis code never touches
raw dicts.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Iterator

from repro.obs.events import Event, event_from_dict, event_to_dict

__all__ = ["iter_trace", "load_trace", "save_trace"]


def iter_trace(path: str | pathlib.Path) -> Iterator[Event]:
    """Yield events from a JSONL trace one at a time (blank lines skipped).

    A malformed line raises ``ValueError`` carrying its line number, so
    truncated traces fail loudly instead of silently dropping the tail.
    """
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield event_from_dict(json.loads(line))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from exc


def load_trace(path: str | pathlib.Path) -> list[Event]:
    """Read a whole JSONL trace into a list of typed events."""
    return list(iter_trace(path))


def save_trace(events: Iterable[Event], path: str | pathlib.Path) -> pathlib.Path:
    """Write events as a JSONL trace (the format :func:`load_trace` reads)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
    return path
