"""Configuration dataclasses for the entire simulation study.

All knobs of the paper's Section VI (simulation environment) live here as
frozen dataclasses with the paper's values as defaults.  A single
:class:`SimulationConfig` aggregates the sub-configurations and is the only
object the high-level APIs (:mod:`repro.experiments`, :mod:`repro.sim`)
need.

Defaults marked "paper" reproduce the published setup; the remaining
defaults pin down details the paper leaves open (each such decision is
documented in ``DESIGN.md`` §4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "IdlePowerMode",
    "LambdaMode",
    "GridConfig",
    "ClusterConfig",
    "WorkloadConfig",
    "EnergyConfig",
    "FilterConfig",
    "SimulationConfig",
]


class IdlePowerMode(enum.Enum):
    """How idle cores are charged against the energy budget.

    ``P4_FLOOR`` (default, the paper's model)
        Idle cores park in the deepest P-state and draw its power.  The
        paper's cores "cannot be turned off" and Eq. 1 integrates power
        over *every* interval between P-state transitions — idle included;
        only shared node components (disks, fans) are excluded as a
        constant.  The idle floor is what drains the budget of heuristics
        that dawdle, and it is invisible to the heuristics' running
        energy estimate (which only subtracts per-assignment EEC,
        Section V-F) — exactly the paper's optimistic estimator.

    ``EXCLUDED``
        Idle intervals draw no budgeted energy (the idle floor is folded
        into the excluded constant).  Provided for the ablation bench
        ``bench_ablation_idle_power``.
    """

    P4_FLOOR = "p4_floor"
    EXCLUDED = "excluded"


class LambdaMode(enum.Enum):
    """How the arrival-rate triple (eq, fast, slow) is obtained.

    ``DERIVED``
        Compute the equilibrium rate from the generated system as
        ``total_cores / t_avg`` and apply the paper's fast/slow ratios.
        This adapts to the randomly generated cluster of each trial suite
        exactly as the paper calibrated its own rates to its system.

    ``PAPER``
        Use the paper's absolute values (1/28, 1/8, 1/48).
    """

    DERIVED = "derived"
    PAPER = "paper"


@dataclass(frozen=True)
class GridConfig:
    """Discretization of the time axis for probability mass functions.

    Attributes
    ----------
    dt:
        Bin width of the global pmf grid, in the paper's (unitless) time
        units; the mean task execution time is 750, so the default of 15
        gives ~50+ bins across a typical distribution.
    tail_sigmas:
        Continuous distributions are truncated at ``mean ± tail_sigmas *
        std`` before discretization.
    """

    dt: float = 15.0
    tail_sigmas: float = 4.0

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.tail_sigmas <= 0.0:
            raise ValueError(f"tail_sigmas must be positive, got {self.tail_sigmas}")


@dataclass(frozen=True)
class ClusterConfig:
    """Random-cluster generation parameters (paper Sections III-A and VI)."""

    #: Number of heterogeneous compute nodes (paper: N = 8).
    num_nodes: int = 8
    #: Multicore processors per node are drawn uniformly in this range.
    min_processors: int = 1
    max_processors: int = 4
    #: Cores per multicore processor are drawn uniformly in this range.
    min_cores: int = 1
    max_cores: int = 4
    #: Number of ACPI P-states available on every core (paper: 5).
    num_pstates: int = 5
    #: Each P-state step improves performance by U(15%, 25%) (paper §VI).
    perf_step_low: float = 1.15
    perf_step_high: float = 1.25
    #: Minimum operating frequency as a fraction of the maximum (paper: 42%).
    min_speed_ratio: float = 0.42
    #: Power of the highest P-state is drawn from U(125, 135) watts.
    p0_power_low: float = 125.0
    p0_power_high: float = 135.0
    #: Low P-state core voltage drawn from U(1.000, 1.150) volts.
    v_low_min: float = 1.000
    v_low_max: float = 1.150
    #: High P-state core voltage drawn from U(1.400, 1.550) volts.
    v_high_min: float = 1.400
    v_high_max: float = 1.550
    #: Power-supply efficiency per node drawn from U(0.90, 0.98).
    efficiency_min: float = 0.90
    efficiency_max: float = 0.98

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not (1 <= self.min_processors <= self.max_processors):
            raise ValueError("invalid processor count range")
        if not (1 <= self.min_cores <= self.max_cores):
            raise ValueError("invalid core count range")
        if self.num_pstates < 2:
            raise ValueError("need at least two P-states for DVFS")
        if not (1.0 < self.perf_step_low <= self.perf_step_high):
            raise ValueError("performance steps must exceed 1.0 and be ordered")
        if not (0.0 < self.min_speed_ratio < 1.0):
            raise ValueError("min_speed_ratio must be in (0, 1)")
        if not (0.0 < self.efficiency_min <= self.efficiency_max <= 1.0):
            raise ValueError("efficiency range must lie in (0, 1]")


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload generation parameters (paper Sections III-B and VI)."""

    #: Tasks per simulation trial (paper: 1,000).
    num_tasks: int = 1000
    #: Distinct task types; each task's type is uniform over these (paper: 100).
    num_task_types: int = 100
    #: CVB mean task execution time (paper: mu_task = 750).
    mu_task: float = 750.0
    #: CVB task coefficient of variation (paper: V_task = 0.25).
    v_task: float = 0.25
    #: CVB machine coefficient of variation (paper: V_mach = 0.25).
    v_mach: float = 0.25
    #: Coefficient of variation of each execution-time pmf around its CVB
    #: mean (paper: unspecified; see DESIGN.md §4.1).
    exec_cv: float = 0.20
    #: Tasks arriving in the early burst (paper: first 200 tasks).
    burst_head: int = 200
    #: Tasks arriving in the late burst (paper: last 200 tasks).
    burst_tail: int = 200
    #: How the arrival-rate triple is obtained.
    lambda_mode: LambdaMode = LambdaMode.DERIVED
    #: Paper's absolute equilibrium rate, used when ``lambda_mode`` is PAPER.
    lambda_eq_paper: float = 1.0 / 28.0
    #: Fast (burst) rate as a multiple of the equilibrium rate
    #: (paper: (1/8) / (1/28) = 3.5).
    fast_ratio: float = 3.5
    #: Slow (lull) rate as a multiple of the equilibrium rate
    #: (paper: (1/48) / (1/28) = 7/12).
    slow_ratio: float = 7.0 / 12.0
    #: Deadline load factor as a multiple of t_avg (paper: exactly t_avg).
    load_factor_mult: float = 1.0

    def __post_init__(self) -> None:
        if self.num_tasks < 1 or self.num_task_types < 1:
            raise ValueError("num_tasks and num_task_types must be >= 1")
        if self.burst_head + self.burst_tail > self.num_tasks:
            raise ValueError("bursts cannot exceed the total task count")
        for name in ("mu_task", "v_task", "v_mach", "exec_cv"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if not (0.0 < self.slow_ratio < 1.0 < self.fast_ratio):
            raise ValueError("need slow_ratio < 1 < fast_ratio")

    @property
    def lull_tasks(self) -> int:
        """Number of tasks arriving between the two bursts."""
        return self.num_tasks - self.burst_head - self.burst_tail

    def with_num_tasks(self, num_tasks: int) -> "WorkloadConfig":
        """Scale the workload to ``num_tasks``, keeping burst proportions.

        Used by reduced-scale benches: the paper's 200/600/200 split
        becomes e.g. 80/240/80 for a 400-task run.
        """
        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        ratio = num_tasks / self.num_tasks
        head = int(round(self.burst_head * ratio))
        tail = int(round(self.burst_tail * ratio))
        head = min(head, num_tasks)
        tail = min(tail, num_tasks - head)
        return replace(self, num_tasks=num_tasks, burst_head=head, burst_tail=tail)


@dataclass(frozen=True)
class EnergyConfig:
    """Energy budget and energy-filter parameters (paper Sections V-F, VI)."""

    #: Idle-power accounting mode (see :class:`IdlePowerMode`).
    idle_power_mode: IdlePowerMode = IdlePowerMode.P4_FLOOR
    #: Budget multiplier: zeta_max = budget_mult * t_avg * p_avg * num_tasks.
    #: The paper uses exactly 1.0 ("the energy required to execute an
    #: average task one thousand times").
    budget_mult: float = 1.0

    def __post_init__(self) -> None:
        if self.budget_mult <= 0.0:
            raise ValueError("budget_mult must be positive")


@dataclass(frozen=True)
class FilterConfig:
    """Thresholds of the two generic filters (paper Section V-F)."""

    #: zeta_mul below the low queue-depth threshold.
    zeta_mul_low: float = 0.8
    #: zeta_mul between the thresholds.
    zeta_mul_mid: float = 1.0
    #: zeta_mul above the high queue-depth threshold.
    zeta_mul_high: float = 1.2
    #: Average queue depth below which zeta_mul_low applies (paper: 0.8).
    depth_low: float = 0.8
    #: Average queue depth above which zeta_mul_high applies (paper: 1.2).
    depth_high: float = 1.2
    #: Robustness-filter probability threshold (paper: 0.5).
    rho_thresh: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.rho_thresh <= 1.0):
            raise ValueError("rho_thresh must be a probability")
        if self.depth_low > self.depth_high:
            raise ValueError("depth thresholds must be ordered")
        for name in ("zeta_mul_low", "zeta_mul_mid", "zeta_mul_high"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    def zeta_mul(self, avg_queue_depth: float) -> float:
        """Select the fair-share multiplier for the observed queue depth."""
        if avg_queue_depth < self.depth_low:
            return self.zeta_mul_low
        if avg_queue_depth <= self.depth_high:
            return self.zeta_mul_mid
        return self.zeta_mul_high


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration aggregating every subsystem.

    Attributes
    ----------
    seed:
        Master seed for a trial; all internal streams derive from it via
        :mod:`repro.rng`.
    """

    seed: int = 0
    grid: GridConfig = field(default_factory=GridConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    filters: FilterConfig = field(default_factory=FilterConfig)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def with_updates(self, **sections: Mapping[str, Any]) -> "SimulationConfig":
        """Return a copy with fields of named sections replaced.

        Examples
        --------
        >>> cfg = SimulationConfig().with_updates(workload={"num_tasks": 100})
        >>> cfg.workload.num_tasks
        100
        """
        updates: dict[str, Any] = {}
        for section, fields in sections.items():
            current = getattr(self, section)
            if section == "seed":
                raise ValueError("use with_seed() for the seed")
            updates[section] = replace(current, **dict(fields))
        return replace(self, **updates)
