"""Command-line interface.

Installed as the ``repro`` console script::

    repro calibrate                     # sanity-check the Section VI setup
    repro trial -H LL -F en+rob         # one trial, one policy
    repro serve --traffic diurnal --horizon 3e5 --windows-out w.jsonl
                                        # continuous-service mode
    repro serve --horizon 3e5 --fault-mtbf 6e4 --fault-mttr 6e3 \
                --shed-queue-depth 8    # degraded service with shedding
    repro serve --horizon 3e5 --telemetry-port 9464 \
                --slo 'on_time_prob<0.9:3'  # live scrape + SLO health
    repro monitor windows.jsonl --follow    # terminal dashboard
    repro figure fig5 --trials 10       # one of the paper's figures
    repro grid --trials 50 -o grid.json # the full 16-variant evaluation
    repro sweep --multipliers 0.7 1.0 1.3  # budget-tightness sweep
    repro report grid.json --svg-dir figs/   # re-render saved results
    repro compare grid.json LL/none LL/en+rob # paired significance test
    repro trial --trace-out t.jsonl --metrics-out m.json  # observed run
    repro trial --profile-out p.json --timeline-out tl.json  # profiled run
    repro profile p.json --timeline tl.json  # top-spans + timeline digest
    repro inspect-manifest grid.manifest.json --results grid.json
    repro grid --jobs 8 --checkpoint g.ckpt.jsonl --resume  # survivable run

All simulation subcommands accept ``--tasks`` and ``--seed``; results
are deterministic for a given seed, with tracing and profiling on or
off.  ``--profile-out`` files are Chrome trace-event JSON — drag one
into https://ui.perfetto.dev to browse the spans interactively.
"""

from __future__ import annotations

import argparse
import pathlib
import signal
import sys
from dataclasses import replace
from typing import Any, Sequence

from repro import SimulationConfig, build_trial_system
from repro.analysis.boxplot import ascii_boxplot_group
from repro.analysis.profile_report import metrics_tables, profile_table, timeline_table
from repro.analysis.svg import save_boxplot_svg, save_timeline_svg
from repro.analysis.trace_summary import trace_summary_table
from repro.experiments.calibrate import calibration_summary
from repro.experiments.compare import compare_variants
from repro.experiments.figures import FIGURES, figure_specs, full_grid_specs
from repro.experiments.report import best_variant_table, figure_table, summary_table
from repro.experiments.runner import (
    EnsembleResult,
    PartialEnsembleResult,
    TrialPlan,
    VariantSpec,
    run_ensemble,
)
from repro.faults import FaultPolicy, FaultSchedule, SheddingConfig
from repro.filters.chain import VARIANTS, canonical_variant
from repro.heuristics.registry import HEURISTICS
from repro.registry import (
    HEURISTIC_PLUGINS,
    TRAFFIC_PLUGINS,
    UnknownPluginError,
    describe_plugins,
    plugin_table,
)
from repro.scenario import Scenario, ScenarioError
from repro.io.faults_io import load_faults, save_faults
from repro.io.profile_io import (
    load_profile_events,
    load_timeline,
    save_profile,
    save_timeline,
)
from repro.io.results_io import ensemble_from_dict, ensemble_to_dict, load_json, save_json
from repro.io.trace_io import load_trace
from repro.obs.export import FileExporter, TelemetryServer
from repro.obs.manifest import build_manifest, load_manifest, save_manifest, verify_ensemble
from repro.obs.monitor import read_window_rows, render_monitor, scrape
from repro.obs.sinks import JsonlSink, MetricsRegistry
from repro.obs.spans import SpanProfile, SpanRecorder
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, parse_rule
from repro.obs.timeline import TIMELINE_FORMAT, TimelineRecorder, TimelineSet
from repro.perf import BACKEND_CHOICES, PerfConfig
from repro.service import TRAFFIC_MODELS, ServiceConfig, ServiceResult, serve_system
from repro.service import write_windows_jsonl

__all__ = ["main", "build_parser"]


def _config(args: argparse.Namespace) -> SimulationConfig:
    config = SimulationConfig(seed=args.seed)
    if args.tasks != config.workload.num_tasks:
        config = replace(config, workload=config.workload.with_num_tasks(args.tasks))
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tasks", type=int, default=1000, help="tasks per trial")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _add_policy(parser: argparse.ArgumentParser) -> None:
    """The -H/-F policy flags, resolved case-insensitively via the registries."""
    parser.add_argument(
        "-H",
        "--heuristic",
        default="LL",
        type=_heuristic_name,
        help="allocation heuristic, any registered plugin "
        f"(builtin: {', '.join(HEURISTICS)}; case-insensitive)",
    )
    parser.add_argument(
        "-F",
        "--filters",
        default="en+rob",
        type=_variant_name,
        help="filter variant: 'none' or '+'-joined registered filter names "
        f"(builtin: {', '.join(VARIANTS)}; case-insensitive)",
    )


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by the ensemble subcommands."""
    parser.add_argument(
        "--checkpoint",
        help="stream each completed trial to this JSONL shard",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already in --checkpoint (digests re-verified)",
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        help="kill and retry any trial exceeding this wall clock (seconds)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per trial before it is quarantined as poison",
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    """In-simulation fault and shedding flags shared by trial and serve."""
    group = parser.add_argument_group("faults / shedding")
    group.add_argument(
        "--faults", help="load a repro.faults/1 schedule JSON (vs. generating one)"
    )
    group.add_argument(
        "--faults-out", help="save the (loaded or generated) fault schedule here"
    )
    group.add_argument(
        "--fault-mtbf",
        type=float,
        default=None,
        help="generate a schedule: mean up-time per target (simulated seconds)",
    )
    group.add_argument(
        "--fault-mttr",
        type=float,
        default=None,
        help="mean outage duration per target (simulated seconds)",
    )
    group.add_argument(
        "--fault-horizon",
        type=float,
        default=None,
        help="generate faults up to this time (serve defaults to --horizon)",
    )
    group.add_argument(
        "--fault-scope",
        default="node",
        choices=("node", "core", "slowdown"),
        help="what a generated fault takes down (slowdown caps P-states instead)",
    )
    group.add_argument(
        "--fault-targets",
        type=int,
        default=None,
        help="targets subject to faults (default: every node, or core)",
    )
    group.add_argument(
        "--fault-pstate-floor",
        type=int,
        default=1,
        help="forbid P-state indices below this during a slowdown (scope=slowdown)",
    )
    group.add_argument(
        "--fault-running",
        default="lost",
        choices=("lost", "resume"),
        help="running tasks caught by an outage are lost or resume-orphaned",
    )
    group.add_argument(
        "--no-remap",
        action="store_true",
        help="disable orphan re-mapping (the no-recovery ablation)",
    )
    group.add_argument(
        "--shed-queue-depth",
        type=float,
        default=None,
        help="shed arrivals when avg queue depth exceeds this (tasks/core)",
    )
    group.add_argument(
        "--shed-budget-frac",
        type=float,
        default=None,
        help="shed arrivals when the energy allowance falls below this fraction",
    )
    group.add_argument(
        "--shed-min-prob",
        type=float,
        default=None,
        help="shed tasks whose chosen assignment's on-time probability is below this",
    )
    group.add_argument(
        "--shed-defer",
        type=float,
        default=None,
        help="retry tripped arrivals after this many simulated seconds (default: drop)",
    )
    group.add_argument(
        "--shed-max-defers",
        type=int,
        default=3,
        help="deferrals per task before it is shed for good",
    )


def _resolve_faults(
    args: argparse.Namespace,
    cluster_nodes: int,
    cluster_cores: int,
    *,
    default_horizon: float | None = None,
) -> tuple[FaultSchedule | None, FaultPolicy | None, SheddingConfig | None]:
    """Turn the fault/shedding flags into engine inputs (or Nones)."""
    if args.faults and args.fault_mtbf is not None:
        raise SystemExit("pass either --faults FILE or --fault-mtbf, not both")
    schedule: FaultSchedule | None = None
    if args.faults:
        schedule = load_faults(args.faults)
    elif args.fault_mtbf is not None:
        if args.fault_mttr is None:
            raise SystemExit("generating a schedule needs --fault-mttr too")
        horizon = args.fault_horizon if args.fault_horizon is not None else default_horizon
        if horizon is None:
            raise SystemExit("generating a schedule needs --fault-horizon (or --horizon)")
        targets = args.fault_targets
        if targets is None:
            targets = cluster_cores if args.fault_scope == "core" else cluster_nodes
        try:
            schedule = FaultSchedule.generate(
                num_targets=targets,
                horizon=horizon,
                mtbf=args.fault_mtbf,
                mttr=args.fault_mttr,
                seed=args.seed,
                scope=args.fault_scope,
                pstate_floor=args.fault_pstate_floor,
            )
        except ValueError as exc:
            raise SystemExit(f"fault schedule: {exc}")
    if args.faults_out:
        if schedule is None:
            raise SystemExit("--faults-out needs a schedule (--faults or --fault-mtbf)")
        save_faults(schedule, args.faults_out)
        print(f"wrote {args.faults_out} ({len(schedule.events)} fault events)")
    policy = None
    if schedule is not None:
        policy = FaultPolicy(running=args.fault_running, remap=not args.no_remap)
    shedding = None
    if (
        args.shed_queue_depth is not None
        or args.shed_budget_frac is not None
        or args.shed_min_prob is not None
    ):
        try:
            shedding = SheddingConfig(
                queue_depth=args.shed_queue_depth,
                budget_frac=args.shed_budget_frac,
                min_prob=args.shed_min_prob,
                defer=args.shed_defer,
                max_defers=args.shed_max_defers,
            )
        except ValueError as exc:
            raise SystemExit(f"shedding: {exc}")
    return schedule, policy, shedding


def _print_fault_totals(totals: dict[str, int]) -> None:
    """One-line fault/shedding summary (only when something happened)."""
    if not any(totals.values()):
        return
    print(
        f"faults: {totals['outages']} outages ({totals['recoveries']} recovered, "
        f"{totals['slowdowns']} slowdowns), {totals['orphaned']} orphaned "
        f"({totals['remapped']} re-mapped), {totals['lost']} lost, "
        f"{totals['shed']} shed, {totals['deferred']} deferred"
    )


def _obs_parent() -> argparse.ArgumentParser:
    """One argparse parent carrying the observability flags.

    Every simulation subcommand (trial / figure / grid / sweep) inherits
    the same five flags with the same names and semantics, so ``repro X
    --metrics-out m.json`` works uniformly: ``--trace-out`` streams
    JSONL events (per-task events for ``trial``; executor-level recovery
    events for the ensemble commands), ``--metrics-out`` aggregates the
    counter/histogram registry, ``--profile-out`` records wall-clock
    spans as Chrome trace-event JSON, and ``--timeline-out`` samples
    system state on a ``--timeline-dt`` grid.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--trace-out", help="write a JSONL event trace here")
    group.add_argument("--metrics-out", help="write the metrics registry JSON here")
    group.add_argument(
        "--profile-out",
        help="write a Chrome trace-event span profile here (Perfetto-loadable)",
    )
    group.add_argument(
        "--timeline-out",
        help="write sampled system-state timelines (repro.timeline/1 JSON) here",
    )
    group.add_argument(
        "--timeline-dt",
        type=float,
        default=60.0,
        help="simulated seconds between timeline samples (default: 60)",
    )
    return parent


def _perf_parent() -> argparse.ArgumentParser:
    """One argparse parent carrying the performance flags.

    Every engine-running subcommand (trial / serve / figure / grid /
    sweep) inherits ``--perf-backend`` with the same semantics: pick the
    kernel implementation for the stochastic hot path.  Left unset, the
    engine default applies — which itself honours the
    ``REPRO_PERF_BACKEND`` environment override — so the flag only needs
    typing when overriding per invocation.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("performance")
    group.add_argument(
        "--perf-backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="kernel backend for the stochastic hot path: numpy (reference, "
        "default), numba/cext (compiled, opt-in; warns and falls back when "
        "unavailable) or auto (fastest available); env override: "
        "REPRO_PERF_BACKEND",
    )
    return parent


def _resolve_perf(args: argparse.Namespace) -> PerfConfig | None:
    """The PerfConfig a subcommand's flags select (``None`` = engine default)."""
    backend = getattr(args, "perf_backend", None)
    if backend is None:
        return None
    return PerfConfig(backend=backend)


def _parse_spec(label: str) -> VariantSpec:
    try:
        heuristic, variant = label.split("/", 1)
    except ValueError:
        raise SystemExit(f"spec must look like 'LL/en+rob', got {label!r}")
    return VariantSpec(heuristic, variant)


def _heuristic_name(value: str) -> str:
    """argparse type: canonicalize a heuristic name via the plugin registry.

    Accepts any case ("mect" == "MECT") and any registered third-party
    heuristic, unlike a static ``choices=`` list.
    """
    try:
        return HEURISTIC_PLUGINS.canonical(value)
    except UnknownPluginError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _variant_name(value: str) -> str:
    """argparse type: canonicalize a filter-variant label ("EN+ROB" -> "en+rob")."""
    try:
        return canonical_variant(value)
    except UnknownPluginError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    except KeyError as exc:
        raise argparse.ArgumentTypeError(str(exc.args[0]))


def _traffic_name(value: str) -> str:
    """argparse type: canonicalize a traffic-model name via the registry."""
    try:
        return TRAFFIC_PLUGINS.canonical(value)
    except UnknownPluginError as exc:
        raise argparse.ArgumentTypeError(str(exc))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Print Section VI subscription/budget diagnostics."""
    print(calibration_summary(_config(args)))
    return 0


def _print_trial_result(result: Any) -> None:
    """The two-line score summary of one trial result."""
    print(
        f"{result.label}: missed {result.missed}/{result.num_tasks} "
        f"({result.late} late, {result.discarded} discarded, "
        f"{result.energy_cutoff} after budget exhaustion)"
    )
    print(
        f"energy {result.total_energy / 1e6:.2f} MJ of "
        f"{result.budget / 1e6:.2f} MJ budget "
        f"({100 * result.energy_utilization():.1f}%), makespan {result.makespan:.0f}"
    )


def cmd_trial(args: argparse.Namespace) -> int:
    """Run a single trial of one (heuristic, filters) policy."""
    system = build_trial_system(_config(args))
    spec = VariantSpec(args.heuristic, args.filters)
    faults, fault_policy, shedding = _resolve_faults(
        args, system.cluster.num_nodes, system.cluster.num_cores
    )
    metrics = MetricsRegistry() if args.metrics_out else None
    trace_sink = JsonlSink(args.trace_out) if args.trace_out else None
    sinks = (trace_sink,) if trace_sink is not None else ()
    recorder = (
        SpanRecorder(stream=0, label=f"trial:{spec.label}")
        if args.profile_out
        else None
    )
    timeline = (
        TimelineRecorder(args.timeline_dt, stream=0, label=spec.label)
        if args.timeline_out
        else None
    )
    try:
        result = TrialPlan(
            system=system,
            spec=spec,
            keep_outcomes=False,
            metrics=metrics,
            sinks=sinks,
            profile=recorder,
            timeline=timeline,
            perf=_resolve_perf(args),
            faults=faults,
            fault_policy=fault_policy,
            shedding=shedding,
        ).run()
    finally:
        if trace_sink is not None:
            trace_sink.close()
    if faults is not None:
        print(
            f"fault schedule: {len(faults.events)} events "
            f"(policy: running {fault_policy.running}, "
            f"remap {'on' if fault_policy.remap else 'off'})"
        )
    _print_trial_result(result)
    if trace_sink is not None:
        print(f"wrote {args.trace_out} ({trace_sink.count} events)")
    if metrics is not None:
        save_json(metrics.to_dict(), args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if recorder is not None:
        profile = SpanProfile()
        profile.add_stream(recorder)
        save_profile(profile, args.profile_out)
        print(f"wrote {args.profile_out} ({len(recorder)} spans)")
    if timeline is not None:
        timeline_set = TimelineSet(args.timeline_dt)
        timeline_set.add(timeline)
        save_timeline(timeline_set, args.timeline_out)
        print(f"wrote {args.timeline_out} ({len(timeline)} samples)")
    return 0


def _print_windows(result: ServiceResult, head: int = 10, tail: int = 10) -> None:
    """Render the per-window summary table (elided in the middle when long)."""
    header = (
        f"{'#':>5} {'start':>10} {'end':>10} {'arr':>6} {'map':>6} {'disc':>6} "
        f"{'done':>6} {'late':>6} {'energy MJ':>10} {'allow MJ':>9}"
    )
    print(header)
    rows = list(enumerate(result.windows))
    elided = len(rows) - head - tail
    if elided > 1:
        shown: list[tuple[int, Any] | None] = [*rows[:head], None, *rows[-tail:]]
    else:
        shown = list(rows)
    for row in shown:
        if row is None:
            print(f"{'...':>5} ({elided} windows elided)")
            continue
        index, w = row
        allow = "-" if w.budget_remaining != w.budget_remaining else f"{w.budget_remaining / 1e6:9.3f}"
        print(
            f"{index:>5} {w.start:>10.1f} {w.end:>10.1f} {w.arrivals:>6} "
            f"{w.mapped:>6} {w.discarded:>6} {w.completed:>6} {w.late:>6} "
            f"{w.energy / 1e6:>10.3f} {allow:>9}"
        )


def _resolve_telemetry(
    args: argparse.Namespace,
) -> tuple[Telemetry, TelemetryServer | None]:
    """Build the serve command's telemetry hub (inert when unrequested)."""
    wanted = (
        args.telemetry_port is not None
        or args.telemetry_out is not None
        or bool(args.slo)
    )
    if not wanted:
        return NULL_TELEMETRY, None
    try:
        telemetry = Telemetry(rules=[parse_rule(spec) for spec in args.slo or []])
    except ValueError as exc:
        raise SystemExit(f"--slo: {exc}")
    if args.telemetry_out:
        telemetry.exporters.append(FileExporter(args.telemetry_out, telemetry))
    server = None
    if args.telemetry_port is not None:
        server = TelemetryServer(telemetry, port=args.telemetry_port)
        port = server.start()
        print(f"telemetry: scrape http://127.0.0.1:{port}/metrics "
              f"(health: /health)")
    return telemetry, server


def _print_telemetry_summary(telemetry: Telemetry) -> None:
    """Post-run SLO health + steady-state roll-up of a telemetered serve."""
    health = telemetry.health()
    verdict = "healthy" if health["healthy"] else "UNHEALTHY"
    print(f"SLO health: {verdict} ({health['alerts']} alert transitions)")
    for state in health["rules"]:
        mark = "FIRING" if state["firing"] else "ok"
        print(
            f"  [{mark:>6}] {state['rule']}  "
            f"breached {state['breached_windows']} windows, "
            f"fired {state['fired_count']}x"
        )
    steady = telemetry.steady_state()
    if steady:
        from repro.analysis.steady_state import steady_state_table

        print("steady state (MSER-5 warm-up, batch-means CI):")
        print(steady_state_table(steady))


def _print_service_summary(result: ServiceResult) -> None:
    """The roll-up a service run prints: totals, faults, budget, windows."""
    totals = result.totals
    if result.truncated:
        print("stop requested: stream cut, committed work drained")
    print(
        f"{result.label} [{result.traffic}]: {totals.arrivals} arrivals "
        f"({totals.mapped} mapped, {totals.discarded} discarded), "
        f"{totals.completed} completed ({totals.late} late), "
        f"makespan {result.makespan:.0f}"
    )
    if result.fault_totals is not None:
        _print_fault_totals(result.fault_totals)
    print(
        f"energy {result.total_energy / 1e6:.2f} MJ over {len(result.windows)} "
        f"windows of {result.window:.0f} s"
    )
    if result.trial_result is None and result.traffic != "replay":
        print(
            f"allowance drawn {result.budget_drawn / 1e6:.2f} MJ "
            f"(deficit {result.budget_deficit / 1e6:.2f} MJ)"
        )
    if result.trial_result is not None:
        batch = result.trial_result
        print(
            f"batch-equivalent score: missed {batch.missed}/{batch.num_tasks} "
            f"({batch.late} late, {batch.discarded} discarded, "
            f"{batch.energy_cutoff} after budget exhaustion)"
        )
    _print_windows(result)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the engine as a continuous service and summarize its windows.

    SIGINT/SIGTERM trigger a graceful shutdown: the arrival stream is
    cut, committed work drains, the final partial window is flushed
    (``--windows-out`` then ends with a truncation trailer) and the
    process exits 0.
    """
    system = build_trial_system(_config(args))
    spec = VariantSpec(args.heuristic, args.filters)
    faults, fault_policy, shedding = _resolve_faults(
        args,
        system.cluster.num_nodes,
        system.cluster.num_cores,
        default_horizon=args.horizon,
    )
    try:
        service = ServiceConfig(
            traffic=args.traffic,
            rate_mult=args.rate_mult,
            swing=args.swing,
            phase_length=args.phase_length,
            window=args.window,
            horizon=args.horizon,
            task_limit=args.task_limit,
            budget_rate_mult=args.budget_rate_mult,
            budget_cap_windows=args.budget_cap_windows,
            budget_cap=args.budget_cap,
            planning_tasks=args.planning_tasks,
            faults=faults,
            fault_policy=fault_policy,
            shedding=shedding,
        )
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}")
    timeline = (
        TimelineRecorder(
            args.timeline_dt, stream=0, label=spec.label, capacity=args.timeline_cap
        )
        if args.timeline_out
        else None
    )
    telemetry, server = _resolve_telemetry(args)
    stop_requested = False

    def _request_stop(signum: int, frame: Any) -> None:
        nonlocal stop_requested
        stop_requested = True

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        result = serve_system(
            system,
            spec,
            service,
            timeline=timeline,
            stop=lambda: stop_requested,
            telemetry=telemetry,
            perf=_resolve_perf(args),
        )
    except BaseException:
        if server is not None:
            server.stop()
        raise
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    _print_service_summary(result)
    if telemetry.enabled:
        _print_telemetry_summary(telemetry)
    if args.windows_out:
        count = write_windows_jsonl(result, args.windows_out)
        print(f"wrote {args.windows_out} ({count} windows)")
    if args.telemetry_out and telemetry.enabled:
        for exporter in telemetry.exporters:
            exporter.export()
        print(f"wrote {args.telemetry_out}")
    if timeline is not None:
        timeline_set = TimelineSet(args.timeline_dt)
        timeline_set.add(timeline)
        save_timeline(timeline_set, args.timeline_out)
        print(f"wrote {args.timeline_out} ({len(timeline)} samples)")
    if server is not None:
        if args.telemetry_linger > 0.0:
            # Leave the endpoint scrapeable after the simulation ends so
            # a collector (or the CI smoke job) can take a final sample.
            import time

            print(f"telemetry: lingering {args.telemetry_linger:.0f}s for scrapes")
            try:
                time.sleep(args.telemetry_linger)
            except KeyboardInterrupt:
                pass
        server.stop()
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Tail window JSONL (or scrape a live endpoint) into a dashboard.

    With a file source, ``--follow`` polls for newly appended rows and
    re-renders until the truncation trailer lands or Ctrl-C.  With an
    ``http(s)://`` source, each refresh prints the raw Prometheus
    scrape (the serving process owns the rendering).
    """
    try:
        rules = [parse_rule(spec) for spec in args.slo or []]
    except ValueError as exc:
        raise SystemExit(f"--slo: {exc}")
    if args.source.startswith(("http://", "https://")):
        import time

        while True:
            try:
                print(scrape(args.source), end="")
            except OSError as exc:
                raise SystemExit(f"repro monitor: cannot scrape {args.source}: {exc}")
            if not args.follow:
                return 0
            time.sleep(args.interval)
            print()
    import time

    rows: list[dict[str, Any]] = []
    trailer: dict[str, Any] | None = None
    offset = 0
    rendered_at = -1
    while True:
        try:
            new_rows, new_trailer, offset = read_window_rows(
                args.source, offset=offset
            )
        except OSError as exc:
            raise SystemExit(f"repro monitor: cannot read {args.source}: {exc}")
        rows.extend(new_rows)
        trailer = new_trailer or trailer
        if len(rows) != rendered_at or not args.follow:
            if args.follow and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(
                render_monitor(
                    rows,
                    rules=rules,
                    tail=args.tail,
                    budget_rate=args.budget_rate,
                    trailer=trailer,
                ),
                end="",
            )
            rendered_at = len(rows)
        if not args.follow or trailer is not None:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _print_ensemble(ensemble: EnsembleResult, tasks: int, svg_dir: str | None) -> None:
    heuristics = sorted(
        {s.heuristic for s in ensemble.specs},
        # Paper heuristics keep the figures' order; third-party plugin
        # names sort alphabetically after them.
        key=lambda h: (
            HEURISTICS.index(h) if h in HEURISTICS else len(HEURISTICS),
            h,
        ),
    )
    for heuristic in heuristics:
        print(figure_table(ensemble, heuristic, tasks))
        print()
        columns = ensemble.by_heuristic(heuristic)
        print(ascii_boxplot_group(columns, title=f"{heuristic} missed deadlines"))
        print()
        if svg_dir:
            path = save_boxplot_svg(
                columns,
                f"{svg_dir}/{heuristic.lower()}_misses.svg",
                title=f"{heuristic}: missed deadlines",
            )
            print(f"wrote {path}")
    if len(heuristics) > 1:
        print(best_variant_table(ensemble, tasks))
        print()
        print(summary_table(ensemble, tasks))


def _report_partial(ensemble: EnsembleResult) -> None:
    """Print what a supervised run could not recover (quarantined trials)."""
    if not isinstance(ensemble, PartialEnsembleResult) or ensemble.is_complete():
        return
    missing = ", ".join(str(i) for i in ensemble.missing_trials)
    print(
        f"WARNING: only {len(ensemble.completed_trials)} of "
        f"{ensemble.num_trials} trials completed (missing: {missing})"
    )
    for failure in ensemble.failures:
        print(
            f"  quarantined trial {failure.trial} after {failure.attempts} "
            f"attempts ({failure.fault}): {failure.detail}"
        )


def _run_ensemble_command(specs: list[VariantSpec], args: argparse.Namespace) -> int:
    """Shared figure/grid body: run, render, save results + manifest + metrics."""
    metrics = MetricsRegistry() if args.metrics_out else None
    profile = SpanProfile() if args.profile_out else None
    timeline = TimelineSet(args.timeline_dt) if args.timeline_out else None
    # Ensemble-level traces carry the executor's recovery events
    # (retries, quarantines, checkpoints); per-task events stay in the
    # workers and are summarized by --metrics-out instead.
    trace_sink = JsonlSink(args.trace_out) if args.trace_out else None
    try:
        ensemble = run_ensemble(
            specs, _config(args), args.trials, base_seed=args.seed,
            n_jobs=args.jobs, metrics=metrics,
            checkpoint=args.checkpoint, resume=args.resume,
            trial_timeout=args.trial_timeout, max_retries=args.max_retries,
            profile=profile, timeline=timeline,
            sinks=(trace_sink,) if trace_sink is not None else (),
            perf=_resolve_perf(args),
        )
    finally:
        if trace_sink is not None:
            trace_sink.close()
    _report_partial(ensemble)
    _print_ensemble(ensemble, args.tasks, args.svg_dir)
    if args.out:
        save_json(ensemble_to_dict(ensemble), args.out)
        print(f"wrote {args.out}")
        manifest_path = pathlib.Path(args.out).with_suffix(".manifest.json")
        save_manifest(build_manifest(ensemble, _config(args)), manifest_path)
        print(f"wrote {manifest_path}")
    if trace_sink is not None:
        print(f"wrote {args.trace_out} ({trace_sink.count} events)")
    if metrics is not None:
        save_json(metrics.to_dict(), args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if profile is not None:
        save_profile(profile, args.profile_out)
        print(f"wrote {args.profile_out} ({len(profile)} spans)")
    if timeline is not None:
        save_timeline(timeline, args.timeline_out)
        print(f"wrote {args.timeline_out} ({len(timeline)} timelines)")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Rerun one of the paper's figures at the requested scale."""
    return _run_ensemble_command(figure_specs(args.figure), args)


def cmd_grid(args: argparse.Namespace) -> int:
    """Run the full 16-variant evaluation grid."""
    return _run_ensemble_command(full_grid_specs(), args)


def _companion_path(manifest_path: str) -> pathlib.Path:
    """Default ``--metrics`` companion: ``x.manifest.json`` -> ``x.metrics.json``."""
    path = pathlib.Path(manifest_path)
    name = path.name
    if name.endswith(".manifest.json"):
        return path.with_name(name[: -len(".manifest.json")] + ".metrics.json")
    return path.with_suffix(".metrics.json")


def _render_companion(data: Any) -> str:
    """Pretty-print a metrics / profile / timeline companion document."""
    if isinstance(data, dict) and data.get("format") == "repro.metrics/1":
        return metrics_tables(data)
    if isinstance(data, dict) and data.get("format") == TIMELINE_FORMAT:
        return timeline_table(TimelineSet.from_dict(data))
    if isinstance(data, list) or (isinstance(data, dict) and "traceEvents" in data):
        events = data if isinstance(data, list) else data["traceEvents"]
        return profile_table([e for e in events if isinstance(e, dict)])
    raise SystemExit(
        "unrecognized companion document (expected repro.metrics/1, "
        "repro.timeline/1, or Chrome traceEvents JSON)"
    )


def cmd_inspect_manifest(args: argparse.Namespace) -> int:
    """Render a run manifest; optionally verify saved results/trace."""
    manifest = load_manifest(args.manifest)
    print(manifest.summary())
    code = 0
    if args.results:
        ensemble = ensemble_from_dict(load_json(args.results))
        problems = verify_ensemble(manifest, ensemble)
        if problems:
            for problem in problems:
                print(f"MISMATCH: {problem}")
            code = 1
        else:
            print(f"results match: {args.results} is the run this manifest describes")
    if args.trace:
        events = load_trace(args.trace)
        print()
        print(trace_summary_table(events))
    if args.metrics is not None:
        companion = (
            _companion_path(args.manifest)
            if args.metrics == ""
            else pathlib.Path(args.metrics)
        )
        if not companion.exists():
            print(f"no companion file at {companion}")
            code = 1
        else:
            print()
            print(f"# {companion.name}")
            print(_render_companion(load_json(companion)))
    return code


def cmd_profile(args: argparse.Namespace) -> int:
    """Render a top-spans table from a saved Chrome trace profile."""
    events = load_profile_events(args.profile)
    print(profile_table(events, limit=args.limit))
    if args.timeline:
        timeline = load_timeline(args.timeline)
        print()
        print(timeline_table(timeline))
        if args.svg_dir:
            for stream in timeline.sorted_streams():
                safe = str(stream["label"]).replace("/", "-").replace(":", "_")
                path = save_timeline_svg(stream, f"{args.svg_dir}/timeline_{safe}.svg")
                print(f"wrote {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Re-render tables from a saved ensemble JSON."""
    ensemble = ensemble_from_dict(load_json(args.results))
    tasks = next(iter(ensemble.results.values()))[0].num_tasks
    _print_ensemble(ensemble, tasks, args.svg_dir)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep the energy-budget multiplier over given specs."""
    from repro.experiments.sweep import budget_sweep

    specs = tuple(_parse_spec(s) for s in args.specs)
    metrics = MetricsRegistry() if args.metrics_out else None
    profile = SpanProfile() if args.profile_out else None
    timeline = TimelineSet(args.timeline_dt) if args.timeline_out else None
    trace_sink = JsonlSink(args.trace_out) if args.trace_out else None
    try:
        sweep = budget_sweep(
            args.multipliers, specs, _config(args), args.trials, base_seed=args.seed,
            n_jobs=args.jobs,
            checkpoint=args.checkpoint, resume=args.resume,
            trial_timeout=args.trial_timeout, max_retries=args.max_retries,
            metrics=metrics, profile=profile, timeline=timeline,
            sinks=(trace_sink,) if trace_sink is not None else (),
            perf=_resolve_perf(args),
        )
    finally:
        if trace_sink is not None:
            trace_sink.close()
    for point in sweep.points:
        _report_partial(point.ensemble)
    print(sweep.table(num_tasks=args.tasks))
    if trace_sink is not None:
        print(f"wrote {args.trace_out} ({trace_sink.count} events)")
    if metrics is not None:
        save_json(metrics.to_dict(), args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if profile is not None:
        save_profile(profile, args.profile_out)
        print(f"wrote {args.profile_out} ({len(profile)} spans)")
    if timeline is not None:
        save_timeline(timeline, args.timeline_out)
        print(f"wrote {args.timeline_out} ({len(timeline)} timelines)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a scenario file end to end, printing the mode's summary."""
    from repro.api import run_scenario

    try:
        scenario = Scenario.from_file(args.scenario)
    except (OSError, ScenarioError) as exc:
        raise SystemExit(f"repro run: {exc}")
    shown = scenario.name or pathlib.Path(args.scenario).stem
    print(f"scenario {shown}: {scenario.label}, mode {scenario.mode} "
          f"(digest {scenario.digest()[:12]})")
    try:
        result = run_scenario(scenario)
    except ValueError as exc:
        raise SystemExit(f"repro run: {exc}")
    if scenario.mode == "trial":
        _print_trial_result(result)
    elif scenario.mode == "ensemble":
        _report_partial(result)
        tasks = scenario.resolved_config().workload.num_tasks
        _print_ensemble(result, tasks, None)
    else:
        _print_service_summary(result)
    return 0


def _iter_scenario_files(root: pathlib.Path) -> list[pathlib.Path]:
    if root.is_file():
        return [root]
    return sorted(
        path
        for pattern in ("*.toml", "*.json")
        for path in root.glob(pattern)
    )


def cmd_scenarios(args: argparse.Namespace) -> int:
    """The scenario toolbox: list / validate / show files, plugin catalog."""
    if args.action == "plugins":
        try:
            rows = describe_plugins(args.kind)
        except KeyError as exc:
            raise SystemExit(f"repro scenarios plugins: {exc}")
        print(plugin_table(rows))
        return 0

    if args.action == "list":
        root = pathlib.Path(args.dir)
        files = _iter_scenario_files(root)
        if not files:
            print(f"no scenario files under {root}")
            return 0
        code = 0
        for path in files:
            try:
                scenario = Scenario.from_file(path)
            except (OSError, ScenarioError) as exc:
                print(f"{path.name}: INVALID ({exc})")
                code = 1
                continue
            shown = scenario.name or path.stem
            print(
                f"{path.name}: {shown} — {scenario.label}, mode "
                f"{scenario.mode}, digest {scenario.digest()[:12]}"
            )
        return code

    if args.action == "validate":
        code = 0
        for name in args.files:
            try:
                scenario = Scenario.from_file(name)
            except (OSError, ScenarioError) as exc:
                print(f"{name}: INVALID\n  {exc}")
                code = 1
                continue
            print(f"{name}: ok ({scenario.label}, mode {scenario.mode}, "
                  f"digest {scenario.digest()[:12]})")
        return code

    # show: the canonical rendering after validation + canonicalization
    try:
        scenario = Scenario.from_file(args.file)
    except (OSError, ScenarioError) as exc:
        raise SystemExit(f"repro scenarios show: {exc}")
    print(scenario.to_toml(), end="")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Paired significance test between two saved specs."""
    ensemble = ensemble_from_dict(load_json(args.results))
    comparison = compare_variants(ensemble, _parse_spec(args.a), _parse_spec(args.b))
    print(comparison)
    verdict = "significant" if comparison.significant(args.alpha) else "not significant"
    print(f"difference is {verdict} at alpha={args.alpha}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-constrained dynamic resource allocation (ICPP 2011) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = _obs_parent()
    perf = _perf_parent()

    p = sub.add_parser("calibrate", help="print subscription/budget diagnostics")
    _add_common(p)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "trial", help="run a single trial of one policy", parents=[obs, perf]
    )
    _add_common(p)
    _add_policy(p)
    _add_faults(p)
    p.set_defaults(func=cmd_trial)

    p = sub.add_parser(
        "serve", help="run the engine as a continuous service", parents=[perf]
    )
    _add_common(p)
    _add_policy(p)
    p.add_argument(
        "--traffic",
        default="poisson",
        type=_traffic_name,
        help="arrival model, any registered traffic plugin "
        f"(builtin: {', '.join(TRAFFIC_MODELS)}; 'replay' streams the "
        "batch workload's own tasks)",
    )
    p.add_argument(
        "--rate-mult",
        type=float,
        default=1.0,
        help="mean arrival rate as a multiple of the equilibrium rate",
    )
    p.add_argument(
        "--swing",
        type=float,
        default=0.75,
        help="peak-to-mean swing of diurnal/mmpp traffic, in [0, 1)",
    )
    p.add_argument(
        "--phase-length",
        type=float,
        default=None,
        help="mean traffic-phase length in simulated seconds (default: 5 windows)",
    )
    p.add_argument(
        "--window",
        type=float,
        default=None,
        help="metric window in simulated seconds (default: 50 equilibrium arrivals)",
    )
    p.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="stop admitting arrivals after this simulated time",
    )
    p.add_argument(
        "--task-limit",
        type=int,
        default=None,
        help="stop admitting arrivals after this many tasks",
    )
    p.add_argument(
        "--budget-rate-mult",
        type=float,
        default=1.0,
        help="allowance accrual as a multiple of the offered load's average cost",
    )
    p.add_argument(
        "--budget-cap-windows",
        type=float,
        default=4.0,
        help="allowance pool cap, in windows' worth of accrual",
    )
    p.add_argument(
        "--budget-cap",
        type=float,
        default=None,
        help="absolute allowance pool cap in joules (overrides --budget-cap-windows)",
    )
    p.add_argument(
        "--planning-tasks",
        type=int,
        default=None,
        help="energy filter fair-share divisor (default: one window of arrivals)",
    )
    p.add_argument("--windows-out", help="write one JSON line per window here")
    p.add_argument(
        "--timeline-out",
        help="write sampled system-state timelines (repro.timeline/1 JSON) here",
    )
    p.add_argument(
        "--timeline-dt",
        type=float,
        default=60.0,
        help="simulated seconds between timeline samples (default: 60)",
    )
    p.add_argument(
        "--timeline-cap",
        type=int,
        default=None,
        help="keep only the newest N timeline samples (ring buffer)",
    )
    tele = p.add_argument_group("telemetry")
    tele.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="serve Prometheus /metrics and JSON /health on this port (0 = ephemeral)",
    )
    tele.add_argument(
        "--telemetry-out",
        help="atomically republish the Prometheus rendering to this file per window",
    )
    tele.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="SLO alert rule like 'on_time_prob<0.9:3' (repeatable); "
        "metrics: on_time_prob, queue_depth, burn_rate, budget_remaining, shed, ...",
    )
    tele.add_argument(
        "--telemetry-linger",
        type=float,
        default=0.0,
        help="keep the scrape endpoint up this many wall seconds after the run",
    )
    _add_faults(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "run", help="run a declarative scenario file (TOML or JSON)"
    )
    p.add_argument(
        "--scenario",
        required=True,
        metavar="FILE",
        help="scenario .toml/.json (see docs/scenarios.md and examples/scenarios/)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "scenarios", help="list/validate/show scenario files; plugin catalog"
    )
    scen = p.add_subparsers(dest="action", required=True)
    sp = scen.add_parser("list", help="summarize every scenario file in a directory")
    sp.add_argument(
        "dir",
        nargs="?",
        default="examples/scenarios",
        help="directory of .toml/.json scenario files (default: examples/scenarios)",
    )
    sp = scen.add_parser("validate", help="validate scenario files; exit 1 on errors")
    sp.add_argument("files", nargs="+", help="scenario files to check")
    sp = scen.add_parser("show", help="print a scenario's canonical TOML form")
    sp.add_argument("file", help="scenario file to render")
    sp = scen.add_parser("plugins", help="print the plugin catalog")
    sp.add_argument(
        "--kind",
        default=None,
        choices=("heuristic", "filter", "traffic", "admission"),
        help="restrict the catalog to one plugin family",
    )
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser(
        "monitor", help="tail window JSONL or a telemetry endpoint into a dashboard"
    )
    p.add_argument(
        "source", help="window JSONL path (from serve --windows-out) or http:// endpoint"
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new windows until the run truncates or Ctrl-C",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="poll interval in wall seconds (default: 2)",
    )
    p.add_argument(
        "--tail", type=int, default=10, help="recent windows shown in the table"
    )
    p.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="SLO rule evaluated over the rows, e.g. 'on_time_prob<0.9:3' (repeatable)",
    )
    p.add_argument(
        "--budget-rate",
        type=float,
        default=None,
        help="allowance accrual (J/s) enabling the burn_rate column",
    )
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "figure", help="rerun one of the paper's figures", parents=[obs, perf]
    )
    _add_common(p)
    p.add_argument("figure", choices=sorted(FIGURES))
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--out", help="save the ensemble JSON here (plus its manifest)")
    p.add_argument("--svg-dir", help="also write SVG box plots here")
    _add_resilience(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "grid", help="run the full 16-variant evaluation", parents=[obs, perf]
    )
    _add_common(p)
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--out", help="save the ensemble JSON here (plus its manifest)")
    p.add_argument("--svg-dir", help="also write SVG box plots here")
    _add_resilience(p)
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser(
        "inspect-manifest", help="render a run manifest; verify results against it"
    )
    p.add_argument("manifest", help="JSON written next to grid/figure --out")
    p.add_argument("--results", help="saved ensemble JSON to verify digests against")
    p.add_argument("--trace", help="JSONL event trace to summarize alongside")
    p.add_argument(
        "--metrics",
        nargs="?",
        const="",
        default=None,
        help="pretty-print a metrics/profile/timeline companion JSON "
        "(default: the sibling .metrics.json of the manifest)",
    )
    p.set_defaults(func=cmd_inspect_manifest)

    p = sub.add_parser(
        "profile", help="render a top-spans table from a saved span profile"
    )
    p.add_argument("profile", help="Chrome trace-event JSON written by --profile-out")
    p.add_argument("--limit", type=int, default=20, help="rows in the top-spans table")
    p.add_argument("--timeline", help="also digest this --timeline-out JSON")
    p.add_argument("--svg-dir", help="write one timeline SVG per stream here")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="re-render tables from a saved ensemble")
    p.add_argument("results", help="JSON written by grid/figure --out")
    p.add_argument("--svg-dir", help="also write SVG box plots here")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "sweep", help="sweep the energy-budget multiplier", parents=[obs, perf]
    )
    _add_common(p)
    p.add_argument(
        "--multipliers",
        type=float,
        nargs="+",
        default=[0.7, 0.85, 1.0, 1.15, 1.3],
        help="budget multipliers to sweep",
    )
    p.add_argument(
        "--specs",
        nargs="+",
        default=["MECT/none", "LL/en+rob"],
        help="specs to compare, e.g. LL/en+rob",
    )
    p.add_argument("--trials", type=int, default=5)
    p.add_argument("--jobs", type=int, default=1)
    _add_resilience(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("compare", help="paired significance test of two specs")
    p.add_argument("results", help="JSON written by grid/figure --out")
    p.add_argument("a", help="baseline spec, e.g. LL/none")
    p.add_argument("b", help="challenger spec, e.g. LL/en+rob")
    p.add_argument("--alpha", type=float, default=0.05)
    p.set_defaults(func=cmd_compare)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
