"""Shared heuristic machinery: candidate sets, contexts, selection helpers.

An *assignment* maps a single task to a node, multicore processor, core
and P-state (Section V-A); the simulator flattens (node, processor, core)
into a flat core id, so a candidate is a (core_id, pstate) pair.  For each
arriving task the mapper builds one :class:`CandidateSet` with dense,
aligned arrays over all ``num_cores * num_pstates`` candidates; filters
clear entries of its boolean feasibility mask; the heuristic then picks
one index (or none, in which case the task is discarded).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.workload.task import Task

__all__ = ["Assignment", "CandidateSet", "MappingContext", "Heuristic", "argmin_lexicographic"]

#: Sentinel default for :attr:`CandidateSet.mask` — replaced by an
#: all-feasible mask of the right length in ``__post_init__``.  A real
#: (if empty) boolean array keeps the field's ``np.ndarray`` annotation
#: honest, unlike the previous ``default=None`` + ``type: ignore``.
_MASK_UNSET: np.ndarray = np.empty(0, dtype=bool)
_MASK_UNSET.setflags(write=False)


class Assignment(NamedTuple):
    """The heuristic's decision: run the task on ``core_id`` at ``pstate``."""

    core_id: int
    pstate: int


@dataclass
class CandidateSet:
    """Vectorized view of every potential assignment for one task.

    All arrays share length ``num_cores * num_pstates`` and candidate
    order (core-major, then P-state), so ``argmin`` indices translate
    directly to assignments.

    Attributes
    ----------
    core_ids, pstates:
        Candidate coordinates.
    queue_len:
        ``|MQ(i, j, k, t_l)|`` — tasks queued or executing on the
        candidate's core.
    eet:
        Expected execution time of the task under the candidate.
    eec:
        Expected energy consumption (Section V-A: ``EET * mu / epsilon``).
    ect:
        Expected completion time (core ready-time mean + EET).
    prob_on_time:
        ``rho(i, j, k, pi, t_l, z)`` — probability of meeting the deadline.
    mask:
        Feasibility mask; filters clear entries, heuristics respect it.
    """

    core_ids: np.ndarray
    pstates: np.ndarray
    queue_len: np.ndarray
    eet: np.ndarray
    eec: np.ndarray
    ect: np.ndarray
    prob_on_time: np.ndarray
    mask: np.ndarray = field(default_factory=lambda: _MASK_UNSET)

    def __post_init__(self) -> None:
        n = self.core_ids.size
        for name in ("pstates", "queue_len", "eet", "eec", "ect", "prob_on_time"):
            if getattr(self, name).size != n:
                raise ValueError(f"candidate array {name!r} misaligned")
        if self.mask is _MASK_UNSET:
            self.mask = np.ones(n, dtype=bool)
        elif self.mask.size != n:
            raise ValueError("mask misaligned")

    def __len__(self) -> int:
        return int(self.core_ids.size)

    @property
    def num_feasible(self) -> int:
        """How many candidates remain feasible."""
        return int(np.count_nonzero(self.mask))

    def assignment(self, index: int) -> Assignment:
        """Translate a candidate index into an :class:`Assignment`."""
        return Assignment(int(self.core_ids[index]), int(self.pstates[index]))


@dataclass(frozen=True)
class MappingContext:
    """Everything filters/heuristics may consult besides the candidates.

    Attributes
    ----------
    t_now:
        The mapping time-step ``t_l`` (the task's arrival time).
    task:
        The task being mapped.
    energy_estimate:
        The heuristic's running estimate of remaining energy
        ``zeta(t_l)`` (budget minus EEC of all previous assignments).
    tasks_left:
        ``T_left(t_l)``: tasks that have *not yet arrived* (excludes the
        one being mapped).
    avg_queue_depth:
        Tasks queued or executing per core, cluster-wide, at ``t_l``.
    """

    t_now: float
    task: Task
    energy_estimate: float
    tasks_left: int
    avg_queue_depth: float


class Heuristic(abc.ABC):
    """Interface of an immediate-mode mapping heuristic."""

    #: Short display name ("SQ", "MECT", ...).
    name: str = "?"

    @abc.abstractmethod
    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick a candidate index among ``cands.mask``, or ``None`` to discard."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def argmin_lexicographic(
    mask: np.ndarray, primary: np.ndarray, secondary: np.ndarray | None = None
) -> int | None:
    """Index of the masked minimum of ``primary``; ties broken by ``secondary``.

    Remaining ties resolve to the lowest candidate index, which makes all
    heuristics fully deterministic.  Returns ``None`` when nothing is
    feasible.
    """
    feasible = np.flatnonzero(mask)
    if feasible.size == 0:
        return None
    p = primary[feasible]
    best = p.min()
    contenders = feasible[p <= best]
    if secondary is None or contenders.size == 1:
        return int(contenders[0])
    s = secondary[contenders]
    return int(contenders[int(np.argmin(s))])
