"""Immediate-mode resource-allocation heuristics (paper Section V).

Each heuristic maps one arriving task to a (core, P-state) *assignment*
chosen from the set of feasible assignments left after filtering.  All
four of the paper's heuristics are provided:

* :class:`~repro.heuristics.shortest_queue.ShortestQueue` (SQ) [SmC09]
* :class:`~repro.heuristics.mect.MinimumExpectedCompletionTime` (MECT) [MaA99]
* :class:`~repro.heuristics.lightest_load.LightestLoad` (LL) — the paper's
  new heuristic
* :class:`~repro.heuristics.random_heuristic.RandomAssignment` (Random)

Heuristics operate on a vectorized :class:`~repro.heuristics.base.CandidateSet`
whose arrays hold, per candidate assignment, the expectation quantities of
Section V-A (EET, ECT, EEC) and the on-time probability rho.
"""

from repro.heuristics.base import Assignment, CandidateSet, Heuristic, MappingContext
from repro.heuristics.shortest_queue import ShortestQueue
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.random_heuristic import RandomAssignment
from repro.heuristics.registry import HEURISTICS, build_heuristic, make_heuristic

__all__ = [
    "Assignment",
    "CandidateSet",
    "Heuristic",
    "MappingContext",
    "ShortestQueue",
    "MinimumExpectedCompletionTime",
    "LightestLoad",
    "RandomAssignment",
    "HEURISTICS",
    "build_heuristic",
    "make_heuristic",
]
