"""The Minimum Expected Completion Time (MECT) heuristic (Section V-C, from [MaA99])."""

from __future__ import annotations

from repro.heuristics.base import CandidateSet, Heuristic, MappingContext, argmin_lexicographic

__all__ = ["MinimumExpectedCompletionTime"]


class MinimumExpectedCompletionTime(Heuristic):
    """Map to the feasible assignment minimizing expected completion time.

    ECT is the mean of the stochastic completion-time distribution —
    equivalently the core's expected ready time plus the candidate's
    expected execution time.  Unfiltered, MECT always prefers P0 (faster
    execution strictly reduces ECT on the same core), which is why it
    needs the energy filter to conserve anything (Section VII).
    """

    name = "MECT"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the minimum expected-completion-time candidate."""
        return argmin_lexicographic(cands.mask, cands.ect)
