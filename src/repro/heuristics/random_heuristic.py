"""The Random heuristic (paper Section V-E).

Uniform choice among the feasible assignments — the contrast baseline that
demonstrates the filters, not the heuristic, drive most of the performance
(filtered Random finishes within 4% of filtered LL in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import CandidateSet, Heuristic, MappingContext

__all__ = ["RandomAssignment"]


class RandomAssignment(Heuristic):
    """Pick uniformly at random among feasible assignments.

    Parameters
    ----------
    rng:
        Dedicated generator; supplying it explicitly keeps trials
        reproducible and independent of every other random stream.
    """

    name = "Random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick uniformly among feasible candidates."""
        feasible = np.flatnonzero(cands.mask)
        if feasible.size == 0:
            return None
        return int(self._rng.choice(feasible))
