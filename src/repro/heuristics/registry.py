"""Builtin heuristic plugins and name-based construction.

The paper's four heuristics register here with
:func:`repro.registry.register_heuristic`; anything else (a third-party
package's entry point, a study script's ``@register_heuristic``) joins
the same namespace and becomes constructible from the CLI and from
scenario files without touching this module.

Names resolve case-insensitively through the registry (``"MECT"``,
``"mect"`` and ``"Mect"`` all build the same heuristic); the canonical
spellings stay the paper's.  :data:`HEURISTICS` remains the static
four-name tuple of the paper's presentation order — figure and grid
code keys off it — while :func:`repro.registry.PluginRegistry.names`
on ``HEURISTIC_PLUGINS`` lists everything currently registered.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.heuristics.base import Heuristic
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.random_heuristic import RandomAssignment
from repro.heuristics.shortest_queue import ShortestQueue
from repro.registry import HEURISTIC_PLUGINS, register_heuristic

__all__ = ["HEURISTICS", "build_heuristic", "make_heuristic"]

#: Canonical heuristic names in the paper's presentation order.
HEURISTICS: tuple[str, ...] = ("SQ", "MECT", "LL", "Random")


@register_heuristic("SQ", summary="Shortest Queue: fewest tasks queued on the core")
def _make_sq(rng: np.random.Generator | None = None) -> Heuristic:
    return ShortestQueue()


@register_heuristic(
    "MECT", summary="Minimum Expected Completion Time over feasible assignments"
)
def _make_mect(rng: np.random.Generator | None = None) -> Heuristic:
    return MinimumExpectedCompletionTime()


@register_heuristic(
    "LL", summary="Lightest Load: least expected queued work (the paper's heuristic)"
)
def _make_ll(rng: np.random.Generator | None = None) -> Heuristic:
    return LightestLoad()


@register_heuristic("Random", summary="Uniformly random feasible assignment")
def _make_random(rng: np.random.Generator | None = None) -> Heuristic:
    if rng is None:
        raise ValueError("the Random heuristic needs an rng")
    return RandomAssignment(rng)


def build_heuristic(name: str, rng: np.random.Generator | None = None) -> Heuristic:
    """Instantiate a heuristic by registered name (case-insensitive).

    ``rng`` is passed to the plugin factory; the builtin deterministic
    heuristics ignore it and "Random" requires it.  Unknown names raise
    :class:`~repro.registry.UnknownPluginError` (a ``KeyError``) with a
    did-you-mean suggestion.
    """
    return HEURISTIC_PLUGINS.create(name, rng)


def make_heuristic(name: str, rng: np.random.Generator | None = None) -> Heuristic:
    """Deprecated pre-registry constructor; use :func:`build_heuristic`.

    Kept (one release) for scripts written against the hand-wired
    constructor; the registry path is semantically identical, so results
    are bitwise unchanged.
    """
    warnings.warn(
        "repro.heuristics.registry.make_heuristic is deprecated; use "
        "build_heuristic (or repro.registry.HEURISTIC_PLUGINS.create)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_heuristic(name, rng)
