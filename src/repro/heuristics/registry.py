"""Name-based heuristic construction for experiment configuration."""

from __future__ import annotations

import numpy as np

from repro.heuristics.base import Heuristic
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.random_heuristic import RandomAssignment
from repro.heuristics.shortest_queue import ShortestQueue

__all__ = ["HEURISTICS", "make_heuristic"]

#: Canonical heuristic names in the paper's presentation order.
HEURISTICS: tuple[str, ...] = ("SQ", "MECT", "LL", "Random")


def make_heuristic(name: str, rng: np.random.Generator | None = None) -> Heuristic:
    """Instantiate a heuristic by its paper name (case-insensitive).

    ``rng`` is required for "Random" and ignored otherwise.
    """
    key = name.strip().upper()
    if key == "SQ":
        return ShortestQueue()
    if key == "MECT":
        return MinimumExpectedCompletionTime()
    if key == "LL":
        return LightestLoad()
    if key == "RANDOM":
        if rng is None:
            raise ValueError("the Random heuristic needs an rng")
        return RandomAssignment(rng)
    raise KeyError(f"unknown heuristic {name!r}; known: {', '.join(HEURISTICS)}")
