"""The Shortest Queue (SQ) heuristic (paper Section V-B, from [SmC09])."""

from __future__ import annotations

from repro.heuristics.base import CandidateSet, Heuristic, MappingContext, argmin_lexicographic

__all__ = ["ShortestQueue"]


class ShortestQueue(Heuristic):
    """Map to the feasible core with the fewest tasks assigned.

    Ties on queue length are broken by minimum expected execution time —
    which, absent filtering, steers SQ to P0 (the fastest and hungriest
    state), explaining its poor unfiltered energy behavior (Section VII).
    """

    name = "SQ"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the shortest-queue candidate (ties: fastest EET)."""
        return argmin_lexicographic(cands.mask, cands.queue_len, cands.eet)
