"""The Lightest Load (LL) heuristic — the paper's new heuristic (Section V-D).

LL defines a *load* for every potential assignment (Eq. 5)::

    L(i, j, k, pi, t_l) = EEC(i, j, k, pi, z) * (1 - rho(i, j, k, pi, t_l, z))

and maps the task to the feasible assignment of minimum load, balancing
expected energy consumption against the probability of missing the
deadline (inverse robustness).  Inspired by [BaM09].
"""

from __future__ import annotations

from repro.heuristics.base import CandidateSet, Heuristic, MappingContext, argmin_lexicographic

__all__ = ["LightestLoad"]


class LightestLoad(Heuristic):
    """Minimize ``EEC * (1 - rho)`` over feasible assignments."""

    name = "LL"

    def select(self, cands: CandidateSet, ctx: MappingContext) -> int | None:
        """Pick the minimum-load candidate per Eq. 5."""
        load = cands.eec * (1.0 - cands.prob_on_time)
        return argmin_lexicographic(cands.mask, load)
