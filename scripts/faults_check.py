#!/usr/bin/env python
"""Validate fault accounting in ``repro serve --windows-out`` JSONL (CI).

Complements ``service_check.py`` (which checks the base window format):
this script checks the fault-layer columns a degraded run adds, so a
broken fault/shedding integration cannot ship windows that silently
miscount casualties:

* every window row carries the five fault-count fields (``shed``,
  ``deferred``, ``orphaned``, ``remapped``, ``lost``) as non-negative
  integers;
* per row, ``remapped <= orphaned`` (a re-mapped task was orphaned
  first);
* ``arrivals == mapped + discarded + shed`` (deferred tasks are not
  terminal and must not inflate arrivals);
* with ``--expect-faults``, the file as a whole shows fault activity
  (some orphaned, lost, or shed work) — the degraded-smoke guard
  against a schedule that silently failed to inject;
* an optional final ``repro.window_trailer/1`` truncation trailer is
  validated (``truncated: true``, window count matches) and excluded
  from the row checks.

Exits 0 when every file is valid, 1 with diagnostics otherwise.  No
repro imports — the script validates the *format*, so it must not share
code with the writer it is checking.

Usage:
    python scripts/faults_check.py windows.jsonl [more.jsonl ...]
    python scripts/faults_check.py --expect-faults degraded.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FORMAT = "repro.window/1"
TRAILER_FORMAT = "repro.window_trailer/1"
FAULT_FIELDS = ("shed", "deferred", "orphaned", "remapped", "lost")


def check_faults(path: Path, *, expect_faults: bool = False) -> list[str]:
    """Return a list of problems (empty when the file is valid)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    if not lines:
        return ["no window rows at all"]

    problems: list[str] = []
    try:
        last = json.loads(lines[-1])
    except json.JSONDecodeError:
        last = None
    if isinstance(last, dict) and last.get("format") == TRAILER_FORMAT:
        lines = lines[:-1]
        if last.get("truncated") is not True:
            problems.append("trailer: truncated is not true")
        if last.get("windows") != len(lines):
            problems.append(
                f"trailer: windows {last.get('windows')!r} != {len(lines)} rows"
            )
        if not lines:
            return problems + ["trailer with no window rows"]

    activity = 0
    for i, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not JSON ({exc})")
            continue
        if not isinstance(row, dict):
            problems.append(f"line {i}: not an object")
            continue
        if row.get("format") != FORMAT:
            problems.append(f"line {i}: format {row.get('format')!r} != {FORMAT!r}")
            continue

        bad = False
        for key in FAULT_FIELDS:
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"line {i}: {key} {value!r} is not a count")
                bad = True
        if bad:
            continue
        if row["remapped"] > row["orphaned"]:
            problems.append(
                f"line {i}: remapped {row['remapped']} > orphaned {row['orphaned']}"
            )
        counts = {k: row.get(k) for k in ("arrivals", "mapped", "discarded")}
        if all(isinstance(v, int) and not isinstance(v, bool) for v in counts.values()):
            if row["arrivals"] != row["mapped"] + row["discarded"] + row["shed"]:
                problems.append(f"line {i}: arrivals != mapped + discarded + shed")
        activity += row["orphaned"] + row["lost"] + row["shed"] + row["deferred"]

    if expect_faults and activity == 0:
        problems.append("no fault activity anywhere (schedule failed to inject?)")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("windows", nargs="+", help="repro serve --windows-out files")
    parser.add_argument(
        "--expect-faults",
        action="store_true",
        help="fail unless the file shows some orphaned/lost/shed activity",
    )
    args = parser.parse_args()
    failed = False
    for name in args.windows:
        path = Path(name)
        problems = check_faults(path, expect_faults=args.expect_faults)
        if problems:
            failed = True
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
