"""Benchmark the compiled kernel backends; write ``BENCH_kernels.json``.

Measures, for every backend available in this environment (always
``numpy``; ``numba``/``cext`` when loadable):

* per-kernel microbenchmarks through the public ops — convolution,
  uncached tail truncation, ``prob_sum_at_most``,
  ``expectation_of_sum`` and the :class:`~repro.sim.mapper.
  CandidateBuilder` batched prob-on-time pass — so the numbers include
  dispatch overhead, not just raw loop speed;
* one-time warm-up cost (JIT compile / C build) from
  :func:`repro.perf.kernels.describe_backends`, amortization noted as
  warm-up seconds per end-to-end second saved;
* end-to-end trials on the Fig. 2 workload, one per heuristic, three
  rungs each — perf layer fully off, cached numpy (the PR-5 baseline),
  cached + compiled — reporting speedups against both rungs.

The gate (CI smoke): when a compiled backend is available, its
end-to-end time must not be slower than the cached-numpy baseline
(``--min-ratio``, default 1.0).  Trial results are compared against the
numpy path and reported; discrete divergence is allowed only as exact-
tie reordering (see tests/perf/conftest.py) and flagged in the report.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py --tasks 1000 \
        --seed 123 --reps 4 --out BENCH_kernels.json
    PYTHONPATH=src python scripts/bench_kernels.py --smoke
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import time

import numpy as np

from repro._version import __version__
from repro.api import Scenario
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.perf.kernel_cache import PerfConfig
from repro.perf.kernels import available_backends, describe_backends, resolve_backend
from repro.sim.mapper import CandidateBuilder
from repro.sim.state import CoreState
from repro.stoch.distributions import discretized_gamma
from repro.stoch.ops import (
    convolve,
    expectation_of_sum,
    prob_sum_at_most,
    set_kernel_backend,
    shift,
    truncate_below,
)


def _best_of(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _us_per_call(fn, calls: int, reps: int = 3) -> float:
    def loop():
        for _ in range(calls):
            fn()

    return _best_of(loop, reps) / calls * 1e6


def bench_kernel_micro(system, backend_name: str, reps: int, calls: int) -> dict:
    """Per-op µs with the named backend installed via the ops seam."""
    exec_pmf = discretized_gamma(mean=750.0, cv=0.2, dt=15.0)
    long_pmf = discretized_gamma(mean=1800.0, cv=0.2, dt=15.0)
    shifted = shift(exec_pmf, 100.0)
    cut = shifted.start + 0.4 * (shifted.stop - shifted.start)
    deadline = shifted.start + 0.7 * (shifted.stop - shifted.start) + long_pmf.stop
    operands = [exec_pmf, long_pmf, shifted]

    cluster = system.cluster
    dt = system.config.grid.dt
    cores = [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]
    task = system.workload.tasks[0]
    builder = CandidateBuilder(
        cores, system.table, backend=resolve_backend(backend_name)
    )

    previous = set_kernel_backend(resolve_backend(backend_name))
    try:
        out = {
            "convolve_us": round(
                _us_per_call(lambda: convolve(exec_pmf, long_pmf), calls, reps), 3
            ),
            "truncate_uncached_us": round(
                _us_per_call(lambda: truncate_below(shifted, cut), calls, reps), 3
            ),
            "prob_sum_at_most_us": round(
                _us_per_call(
                    lambda: prob_sum_at_most(shifted, long_pmf, deadline), calls, reps
                ),
                3,
            ),
            "expectation_of_sum_us": round(
                _us_per_call(lambda: expectation_of_sum(operands), calls, reps), 3
            ),
            "candidate_builder_us": round(
                _us_per_call(
                    lambda: builder.build(task, task.arrival), max(calls // 10, 20), reps
                ),
                3,
            ),
        }
    finally:
        set_kernel_backend(previous)
    return out


def bench_trial(system, spec: VariantSpec, perf, reps: int):
    """Best-of-``reps`` wall time and the result of one full trial."""
    best = math.inf
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = TrialPlan(system=system, spec=spec, keep_outcomes=True, perf=perf).run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _same_decisions(a, b) -> bool:
    return len(a.outcomes) == len(b.outcomes) and all(
        (x.core_id, x.pstate, x.discarded) == (y.core_id, y.pstate, y.discarded)
        for x, y in zip(a.outcomes, b.outcomes)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=1000, help="tasks per trial")
    parser.add_argument("--seed", type=int, default=123, help="master seed")
    parser.add_argument("--reps", type=int, default=4, help="repetitions (best-of)")
    parser.add_argument(
        "--heuristics",
        nargs="+",
        default=["SQ", "MECT", "LL", "Random"],
        help="heuristics for the end-to-end trials",
    )
    parser.add_argument("--filters", default="en+rob", help="filter variant")
    parser.add_argument("--out", default="BENCH_kernels.json", help="report path")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.0,
        help="fail when compiled/cached-numpy end-to-end speedup falls below this",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (200 tasks, 2 reps, fewer micro calls)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.tasks = min(args.tasks, 200)
        args.reps = min(args.reps, 2)
        args.heuristics = args.heuristics[:2]
    calls = 200 if args.smoke else 1000

    backends = available_backends()
    catalog = describe_backends()
    print(f"# backends available: {', '.join(backends)}")

    system = Scenario(
        args.heuristics[0], args.filters, seed=args.seed, num_tasks=args.tasks
    ).build_system()

    print(f"# end-to-end ({args.tasks} tasks, best of {args.reps})")
    report_backends = {}
    gate_failures = []
    trials = {}
    baselines = {}
    for heuristic in args.heuristics:
        spec = VariantSpec(heuristic, args.filters)
        uncached_s, ref_result = bench_trial(
            system, spec, PerfConfig.disabled(), args.reps
        )
        cached_s, cached_result = bench_trial(system, spec, PerfConfig(), args.reps)
        assert cached_result == ref_result, "cache layer must stay results-neutral"
        baselines[spec.label] = (uncached_s, cached_s, ref_result)
        trials[spec.label] = {
            "uncached_s": round(uncached_s, 4),
            "cached_numpy_s": round(cached_s, 4),
            "cached_speedup": round(uncached_s / cached_s, 3),
            "missed": ref_result.missed,
            "backends": {},
        }
        print(
            f"  {spec.label:>14}: off {uncached_s:.3f}s  "
            f"cached {cached_s:.3f}s ({uncached_s / cached_s:.2f}x)"
        )

    for name in ("numpy", "numba", "cext"):
        entry = dict(catalog[name])
        if name not in backends:
            report_backends[name] = entry
            continue
        micro = bench_kernel_micro(system, name, args.reps, calls)
        entry["kernels"] = micro
        report_backends[name] = entry
        print(f"  {name} kernels: {json.dumps(micro)}")
        if name == "numpy":
            continue
        for heuristic in args.heuristics:
            spec = VariantSpec(heuristic, args.filters)
            uncached_s, cached_s, ref_result = baselines[spec.label]
            trial_s, result = bench_trial(
                system, spec, PerfConfig(backend=name), args.reps
            )
            same = _same_decisions(result, ref_result)
            trials[spec.label]["backends"][name] = {
                "compiled_s": round(trial_s, 4),
                "speedup_vs_uncached": round(uncached_s / trial_s, 3),
                "speedup_vs_cached": round(cached_s / trial_s, 3),
                "missed": result.missed,
                "decisions_identical": same,
                "warmup_per_saved_s": round(
                    entry["warmup_s"] / max(cached_s - trial_s, 1e-9), 2
                )
                if entry["warmup_s"]
                else 0.0,
            }
            print(
                f"  {spec.label:>14} +{name}: {trial_s:.3f}s  "
                f"({uncached_s / trial_s:.2f}x vs off, "
                f"{cached_s / trial_s:.2f}x vs cached)  "
                f"missed {result.missed}/{ref_result.missed}  "
                f"decisions_identical={same}"
            )
            if cached_s / trial_s < args.min_ratio:
                gate_failures.append(
                    f"{name} {spec.label}: {cached_s / trial_s:.3f}x vs cached "
                    f"< {args.min_ratio}x"
                )

    report = {
        "format": "repro.bench_kernels/1",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "tasks": args.tasks,
            "seed": args.seed,
            "reps": args.reps,
            "heuristics": args.heuristics,
            "filters": args.filters,
            "smoke": args.smoke,
        },
        "trials": trials,
        "backends": report_backends,
    }
    path = pathlib.Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if gate_failures:
        for failure in gate_failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    compiled = [n for n in backends if n != "numpy"]
    if compiled:
        print(f"OK: compiled backends {', '.join(compiled)} beat the cached baseline")
    else:
        print("OK: no compiled backend available here; numpy reference path measured")
    return 0


if __name__ == "__main__":
    sys.exit(main())
