#!/usr/bin/env python
"""Validate scenario files (CI scenarios job).

For every file given (or every ``.toml``/``.json`` under a directory):

* it loads through :meth:`repro.scenario.Scenario.from_file` — schema,
  unknown-key and value validation included;
* its policy names resolve against the plugin registries (a scenario
  naming an unregistered heuristic fails here, not mid-run);
* it survives a dict round trip (``from_dict(to_dict(s)) == s``) and a
  file round trip in *both* formats (TOML and JSON), with the digest
  unchanged — the serialization invariant the property suite pins,
  re-checked against the committed files;
* mode-specific sanity: service scenarios with generative traffic must
  be bounded (``ServiceConfig`` enforces it; re-surfaced here with the
  file name attached).

Exits 0 when every file is valid, 1 with per-file diagnostics.

Usage:
    PYTHONPATH=src python scripts/scenario_check.py examples/scenarios
    PYTHONPATH=src python scripts/scenario_check.py one.toml two.json
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

from repro.scenario import Scenario, ScenarioError


def check_file(path: pathlib.Path) -> list[str]:
    """All problems with one scenario file (empty list = valid)."""
    try:
        scenario = Scenario.from_file(path)
    except (OSError, ScenarioError) as exc:
        return [str(exc)]
    problems: list[str] = []
    digest = scenario.digest()

    try:
        if Scenario.from_dict(scenario.to_dict()) != scenario:
            problems.append("dict round trip does not reproduce the scenario")
    except ScenarioError as exc:
        problems.append(f"to_dict() is not loadable: {exc}")

    with tempfile.TemporaryDirectory() as tmp:
        for suffix in (".toml", ".json"):
            copy = pathlib.Path(tmp) / f"roundtrip{suffix}"
            try:
                again = Scenario.from_file(scenario.to_file(copy))
            except ScenarioError as exc:
                problems.append(f"{suffix} round trip failed to load: {exc}")
                continue
            if again != scenario:
                problems.append(f"{suffix} round trip changed the scenario")
            elif again.digest() != digest:
                problems.append(f"{suffix} round trip changed the digest")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    files: list[pathlib.Path] = []
    for name in argv:
        path = pathlib.Path(name)
        if path.is_dir():
            files.extend(sorted(path.glob("*.toml")) + sorted(path.glob("*.json")))
        else:
            files.append(path)
    if not files:
        print("no scenario files found")
        return 1
    code = 0
    for path in files:
        problems = check_file(path)
        if problems:
            code = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            scenario = Scenario.from_file(path)
            print(
                f"{path}: ok ({scenario.label}, mode {scenario.mode}, "
                f"digest {scenario.digest()[:12]})"
            )
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
