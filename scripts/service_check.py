#!/usr/bin/env python
"""Validate a ``repro serve --windows-out`` JSONL file (CI service job).

Checks the invariants any downstream window consumer relies on:

* every line is a JSON object tagged ``"format": "repro.window/1"``;
* ``schema_version`` (when present — required from version 2 on) is a
  positive integer, constant across the file; version >= 2 rows must
  carry the fault columns (``shed``/``deferred``/``orphaned``/
  ``remapped``/``lost``) as counts with ``remapped <= orphaned``;
* ``index`` counts 0, 1, 2, ... in file order;
* windows are contiguous (each ``start`` equals the previous ``end``)
  and non-degenerate (``end >= start``, the first ``start`` is 0);
* counts are non-negative integers with ``arrivals == mapped +
  discarded + shed`` and ``completed == on_time + late`` (``shed``
  defaults to 0 for pre-fault-layer writers);
* ``energy`` is non-negative and finite; ``budget_remaining`` is
  either null (no rolling budget) or non-negative;
* ``label``/``seed``/``traffic`` are constant across the file;
* an optional final ``repro.window_trailer/1`` line (graceful-shutdown
  truncation marker) is tolerated and excluded from the window checks.

Exits 0 when every file is valid, 1 with diagnostics otherwise.  No
repro imports — the script validates the *format*, so it must not share
code with the writer it is checking.

Usage:
    python scripts/service_check.py windows.jsonl [more.jsonl ...]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

FORMAT = "repro.window/1"
TRAILER_FORMAT = "repro.window_trailer/1"
COUNT_FIELDS = ("arrivals", "mapped", "discarded", "completed", "on_time", "late",
                "in_system_end")
# Required from schema_version 2 on (the PR 7 fault-layer columns).
FAULT_FIELDS = ("shed", "deferred", "orphaned", "remapped", "lost")


def check_windows(path: Path) -> list[str]:
    """Return a list of problems (empty when the file is valid)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    if not lines:
        return ["no window rows at all"]

    problems: list[str] = []
    try:
        last = json.loads(lines[-1])
    except json.JSONDecodeError:
        last = None
    if isinstance(last, dict) and last.get("format") == TRAILER_FORMAT:
        lines = lines[:-1]
        if last.get("truncated") is not True:
            problems.append("trailer: truncated is not true")
        if last.get("windows") != len(lines):
            problems.append(
                f"trailer: windows {last.get('windows')!r} != {len(lines)} rows"
            )
        if not lines:
            return problems + ["trailer with no window rows"]
    prev_end: float | None = None
    constants: dict[str, object] = {}
    for i, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not JSON ({exc})")
            continue
        if not isinstance(row, dict):
            problems.append(f"line {i}: not an object")
            continue
        if row.get("format") != FORMAT:
            problems.append(f"line {i}: format {row.get('format')!r} != {FORMAT!r}")
        if row.get("index") != i:
            problems.append(f"line {i}: index {row.get('index')!r} out of order")

        version = row.get("schema_version")
        if version is not None and (
            not isinstance(version, int) or isinstance(version, bool) or version < 1
        ):
            problems.append(
                f"line {i}: schema_version {version!r} is not a positive integer"
            )
            version = None
        if isinstance(version, int) and version >= 2:
            bad_fault = False
            for key in FAULT_FIELDS:
                value = row.get(key)
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    problems.append(
                        f"line {i}: schema v{version} requires count {key}, "
                        f"got {value!r}"
                    )
                    bad_fault = True
            if not bad_fault and row["remapped"] > row["orphaned"]:
                problems.append(
                    f"line {i}: remapped {row['remapped']} exceeds "
                    f"orphaned {row['orphaned']}"
                )

        for key in ("label", "seed", "traffic", "schema_version"):
            value = row.get(key)
            if key not in constants:
                constants[key] = value
            elif constants[key] != value:
                problems.append(
                    f"line {i}: {key} {value!r} differs from {constants[key]!r}"
                )

        start, end = row.get("start"), row.get("end")
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            problems.append(f"line {i}: non-numeric start/end")
            continue
        if end < start:
            problems.append(f"line {i}: end {end} precedes start {start}")
        if prev_end is None:
            if start != 0.0:
                problems.append(f"line {i}: first window starts at {start}, not 0")
        elif start != prev_end:
            problems.append(
                f"line {i}: start {start} breaks contiguity (previous end {prev_end})"
            )
        prev_end = end

        bad_count = False
        for key in COUNT_FIELDS:
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"line {i}: {key} {value!r} is not a count")
                bad_count = True
        if not bad_count:
            if row["arrivals"] != row["mapped"] + row["discarded"] + row.get("shed", 0):
                problems.append(f"line {i}: arrivals != mapped + discarded + shed")
            if row["completed"] != row["on_time"] + row["late"]:
                problems.append(f"line {i}: completed != on_time + late")

        energy = row.get("energy")
        if (
            not isinstance(energy, (int, float))
            or isinstance(energy, bool)
            or not math.isfinite(energy)
            or energy < 0
        ):
            problems.append(f"line {i}: energy {energy!r} is not a non-negative float")
        budget = row.get("budget_remaining", None)
        if budget is not None and (
            not isinstance(budget, (int, float))
            or isinstance(budget, bool)
            or not math.isfinite(budget)
            or budget < 0
        ):
            problems.append(f"line {i}: budget_remaining {budget!r} is negative or bad")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("windows", nargs="+", help="repro serve --windows-out files")
    args = parser.parse_args()
    failed = False
    for name in args.windows:
        path = Path(name)
        problems = check_windows(path)
        if problems:
            failed = True
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
