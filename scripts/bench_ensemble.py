"""Benchmark ensemble-scale performance; write ``BENCH_ensemble.json``.

Times full ensembles (4 heuristics x en+rob against paired trials, the
paper's evaluation grid) through :func:`repro.experiments.runner.run_ensemble`
under per-optimization ablations of the ensemble performance layer:

* ``baseline``    — warm cross-spec cache and batched table build off
  (the pre-ensemble-layer configuration; kernel cache and vectorized
  mapper stay on, as they predate this layer);
* ``warm_cache``  — plus the trial-scoped cross-spec
  :class:`~repro.perf.TrialCache`;
* ``batch_table`` — plus the one-pass vectorized execution-time table
  with lazy padding (warm cache off);
* ``full``        — everything on (the defaults).

Each configuration runs at ``n_jobs`` 1 and 4, plus a chunked-dispatch
ablation (``chunk_size=1`` vs. auto) on the parallel path.  Every run's
results are compared for full equality against the
``PerfConfig.disabled()`` reference — the script exits nonzero if any
run differs (``all_identical``) or the serial full-vs-baseline speedup
falls below ``--min-speedup``.  Mirrors ``BENCH_perf.json``'s format;
CI runs a reduced configuration as a regression gate.

Usage::

    PYTHONPATH=src python scripts/bench_ensemble.py --tasks 200 \
        --trials 16 --out BENCH_ensemble.json
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import time

import numpy as np

from repro._version import __version__
from repro.api import Scenario
from repro.experiments.executor import _auto_chunk_size
from repro.experiments.runner import VariantSpec, run_ensemble
from repro.obs.sinks import MetricsRegistry
from repro.perf.kernel_cache import PerfConfig

ABLATIONS: tuple[tuple[str, PerfConfig], ...] = (
    ("baseline", PerfConfig(warm_cache=False, batch_table=False)),
    ("warm_cache", PerfConfig(batch_table=False)),
    ("batch_table", PerfConfig(warm_cache=False)),
    ("full", PerfConfig()),
)


def _timed_ensemble(config, specs, args, *, n_jobs, perf, chunk_size=None):
    """Best-of-``--reps`` wall time (single-shot walls are hostage to
    machine noise on shared boxes; the min is the honest capability)."""
    best = math.inf
    ensemble = None
    for _ in range(args.reps):
        t0 = time.perf_counter()
        ensemble = run_ensemble(
            specs,
            config,
            num_trials=args.trials,
            base_seed=args.seed,
            n_jobs=n_jobs,
            keep_outcomes=True,
            perf=perf,
            chunk_size=chunk_size,
        )
        best = min(best, time.perf_counter() - t0)
    return ensemble, best


def _cache_counters(config, specs, args) -> dict:
    """One short instrumented full-config run for the cache hit profile."""
    metrics = MetricsRegistry()
    run_ensemble(
        specs,
        config,
        num_trials=min(4, args.trials),
        base_seed=args.seed,
        n_jobs=1,
        metrics=metrics,
        perf=PerfConfig(),
    )
    return {
        k: v for k, v in sorted(metrics.counters.items()) if k.startswith("perf.cache.")
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=200, help="tasks per trial")
    parser.add_argument("--trials", type=int, default=16, help="trials per ensemble")
    parser.add_argument("--seed", type=int, default=123, help="base seed")
    parser.add_argument(
        "--heuristics", nargs="+", default=["SQ", "MECT", "LL", "Random"]
    )
    parser.add_argument("--filters", default="en+rob", help="filter variant to run")
    parser.add_argument(
        "--n-jobs", nargs="+", type=int, default=[1, 4], help="worker counts to time"
    )
    parser.add_argument(
        "--reps", type=int, default=2, help="repetitions per configuration (best-of)"
    )
    parser.add_argument("--out", default="BENCH_ensemble.json", help="report path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        help="fail when the serial full-vs-baseline speedup falls below this",
    )
    args = parser.parse_args(argv)

    specs = [VariantSpec(h, args.filters) for h in args.heuristics]
    config = Scenario(
        args.heuristics[0], args.filters, seed=args.seed, num_tasks=args.tasks
    ).resolved_config()

    print(
        f"# reference ({len(specs)} specs x {args.trials} trials, "
        f"{args.tasks} tasks, perf disabled)"
    )
    reference, reference_s = _timed_ensemble(
        config, specs, args, n_jobs=1, perf=PerfConfig.disabled()
    )
    print(f"reference: {reference_s:.2f}s")

    all_identical = True
    ensembles: dict[str, dict] = {}
    for n_jobs in args.n_jobs:
        rows: dict[str, dict] = {}
        for name, perf in ABLATIONS:
            ensemble, wall = _timed_ensemble(
                config, specs, args, n_jobs=n_jobs, perf=perf
            )
            identical = ensemble.results == reference.results
            all_identical = all_identical and identical
            rows[name] = {"wall_s": round(wall, 3), "identical": identical}
            print(
                f"n_jobs={n_jobs} {name:>11}: {wall:6.2f}s  identical={identical}"
            )
        for name in rows:
            rows[name]["speedup_vs_baseline"] = round(
                rows["baseline"]["wall_s"] / rows[name]["wall_s"], 3
            )
        ensembles[f"n_jobs={n_jobs}"] = rows

    # Chunked dispatch ablation on the widest parallel configuration.
    chunk_jobs = max(args.n_jobs)
    chunking: dict | None = None
    if chunk_jobs > 1:
        _, chunk1_s = _timed_ensemble(
            config, specs, args, n_jobs=chunk_jobs, perf=PerfConfig(), chunk_size=1
        )
        auto_ens, auto_s = _timed_ensemble(
            config, specs, args, n_jobs=chunk_jobs, perf=PerfConfig(), chunk_size=None
        )
        identical = auto_ens.results == reference.results
        all_identical = all_identical and identical
        chunking = {
            "n_jobs": chunk_jobs,
            "chunk_size_1_s": round(chunk1_s, 3),
            "chunk_size_auto_s": round(auto_s, 3),
            "auto_chunk": _auto_chunk_size(args.trials, chunk_jobs),
            "speedup": round(chunk1_s / auto_s, 3),
            "identical": identical,
        }
        print(
            f"chunking (n_jobs={chunk_jobs}): chunk=1 {chunk1_s:.2f}s  "
            f"auto {auto_s:.2f}s  identical={identical}"
        )

    speedups = [
        rows["full"]["speedup_vs_baseline"] for rows in ensembles.values()
    ]
    serial_key = f"n_jobs={args.n_jobs[0]}"
    serial_speedup = ensembles[serial_key]["full"]["speedup_vs_baseline"]
    report = {
        "format": "repro.bench_ensemble/1",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "tasks": args.tasks,
            "trials": args.trials,
            "seed": args.seed,
            "heuristics": args.heuristics,
            "filters": args.filters,
            "n_jobs": args.n_jobs,
            "reps": args.reps,
            # Ensemble ablations run the reference kernel path; compiled
            # backends are bench_kernels.py's job.
            "backend": "numpy",
        },
        "reference_s": round(reference_s, 3),
        "ensembles": ensembles,
        "chunking": chunking,
        "cache": _cache_counters(config, specs, args),
        "summary": {
            "serial_speedup": serial_speedup,
            "geomean_speedup": round(float(np.exp(np.mean(np.log(speedups)))), 3),
            "all_identical": all_identical,
        },
    }
    path = pathlib.Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if not all_identical:
        print("FAIL: optimized results differ from the reference", file=sys.stderr)
        return 1
    if serial_speedup < args.min_speedup:
        print(
            f"FAIL: serial full-vs-baseline speedup {serial_speedup:.3f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: serial speedup {serial_speedup:.2f}x >= {args.min_speedup}x, "
        f"geomean {report['summary']['geomean_speedup']:.2f}x, results identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
