#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file (CI observability job).

Checks the structural invariants any conforming trace viewer relies on:

* the document is an object with a ``traceEvents`` list (or a bare
  event list);
* every complete ("X") event carries ``name``, numeric non-negative
  ``ts`` and ``dur``, and ``pid``/``tid`` identifiers;
* duration ("B"/"E") events, if present, are balanced per
  ``(pid, tid)`` track with matching names in LIFO order;
* within each ``(pid, tid)`` track, events are listed in
  non-decreasing ``ts`` order (viewers tolerate less, our exporter
  guarantees it);
* ``process_name`` metadata records name distinct pids.

Exits 0 when the trace is valid, 1 with diagnostics otherwise.  No
repro imports — the script validates the *format*, so it must not share
code with the exporter it is checking.

Usage:
    python scripts/trace_check.py prof.json [more.json ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check_trace(path: Path) -> list[str]:
    """Return a list of problems (empty when the trace is valid)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["no traceEvents list"]
    elif isinstance(data, list):
        events = data
    else:
        return ["document is neither an object nor an event list"]

    problems: list[str] = []
    last_ts: dict[tuple, float] = {}
    open_stacks: dict[tuple, list[str]] = {}
    named_pids: dict[int, str] = {}
    x_events = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                pid = event.get("pid")
                label = (event.get("args") or {}).get("name", "")
                if pid in named_pids:
                    problems.append(
                        f"event {i}: pid {pid} named twice "
                        f"({named_pids[pid]!r} and {label!r})"
                    )
                named_pids[pid] = label
            continue
        if ph not in ("X", "B", "E"):
            continue  # counters, flows etc. are out of scope
        name = event.get("name")
        ts = event.get("ts")
        if not isinstance(name, str) or not name:
            problems.append(f"event {i}: missing name")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {i}: missing pid/tid")
            continue
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {track}"
            )
        last_ts[track] = float(ts)
        if ph == "X":
            x_events += 1
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        elif ph == "B":
            open_stacks.setdefault(track, []).append(str(name))
        else:  # "E"
            stack = open_stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E without matching B on {track}")
            else:
                opened = stack.pop()
                if event.get("name") not in (None, opened):
                    problems.append(
                        f"event {i}: E name {event.get('name')!r} does not "
                        f"close B name {opened!r}"
                    )
    for track, stack in open_stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B event(s)")
    if x_events == 0 and not any(open_stacks.values()):
        if not any(isinstance(e, dict) and e.get("ph") in ("B", "E") for e in events):
            problems.append("no span events (X or B/E) at all")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="Chrome trace-event JSON files")
    args = parser.parse_args()
    failed = False
    for name in args.traces:
        path = Path(name)
        problems = check_trace(path)
        if problems:
            failed = True
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
