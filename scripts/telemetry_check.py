#!/usr/bin/env python
"""Validate a ``repro`` Prometheus telemetry scrape (CI telemetry job).

Checks that a ``/metrics`` scrape (or a ``--telemetry-out`` file) is a
well-formed text-exposition (0.0.4) document carrying the families the
acceptance criteria name:

* every non-comment line parses as ``name{labels} value`` with a valid
  metric name and a float (or ``NaN``/``+Inf``/``-Inf``) value;
* every sample's family has a ``# TYPE`` comment, and ``_total``
  samples are typed ``counter``;
* counters are non-negative, and the required families are present:
  ``repro_windows_total``, ``repro_tasks_completed_total``,
  quantile-labelled ``repro_completion_latency_seconds`` samples, the
  ``repro_warmup_window_index`` steady-state gauge and
  ``repro_steady_ci_half_width`` CI half-widths;
* accounting holds: ``tasks_completed == tasks_on_time + tasks_late``.

Exits 0 when every file is valid, 1 with diagnostics otherwise.  No
repro imports — the script validates the *format*, so it must not share
code with the renderer it is checking.

Usage:
    python scripts/telemetry_check.py scrape.prom [more.prom ...]
    curl -s localhost:9464/metrics | python scripts/telemetry_check.py -
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE_RE = re.compile(
    rf"^(?P<name>{NAME})(?:\{{(?P<labels>[^}}]*)\}})?\s+(?P<value>\S+)$"
)
LABEL_RE = re.compile(rf'^{NAME}="(?:[^"\\]|\\.)*"$')

REQUIRED_FAMILIES = (
    "repro_windows_total",
    "repro_tasks_completed_total",
    "repro_tasks_mapped_total",
    "repro_completion_latency_seconds",
    "repro_warmup_window_index",
    "repro_steady_ci_half_width",
    "repro_healthy",
)

#: Families that must expose at least one ``quantile``-labelled sample.
QUANTILE_FAMILIES = ("repro_completion_latency_seconds",)


def _parse_value(text: str) -> float | None:
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return float(text.replace("Inf", "inf"))
    try:
        return float(text)
    except ValueError:
        return None


def _family_of(sample_name: str) -> str:
    """Summary/histogram suffixes collapse onto their family name."""
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def check_scrape(text: str, origin: str) -> list[str]:
    """Return a list of problems (empty when the document is valid)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: malformed TYPE comment")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad value {match.group('value')!r}"
            )
            continue
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                if not LABEL_RE.match(pair):
                    problems.append(f"line {lineno}: bad label {pair!r}")
                    continue
                key, _, quoted = pair.partition("=")
                labels[key] = quoted[1:-1]
        samples.setdefault(match.group("name"), []).append((labels, value))

    for name, entries in samples.items():
        family = _family_of(name)
        if family not in types:
            problems.append(f"{name}: no # TYPE comment for family {family}")
        if name.endswith("_total"):
            if types.get(name) != "counter":
                problems.append(
                    f"{name}: _total family typed {types.get(name)!r}, "
                    "expected counter"
                )
            for labels, value in entries:
                if value != value:  # NaN
                    problems.append(f"{name}: counter value is NaN")
                elif value < 0:
                    problems.append(f"{name}: counter value {value} is negative")

    for family in REQUIRED_FAMILIES:
        if not any(_family_of(name) == family for name in samples):
            problems.append(f"missing required family {family}")

    for family in QUANTILE_FAMILIES:
        quantiled = [
            labels
            for name, entries in samples.items()
            if name == family
            for labels, _ in entries
            if "quantile" in labels
        ]
        if family in {_family_of(n) for n in samples} and not quantiled:
            problems.append(f"{family}: no quantile-labelled samples")
        for labels in quantiled:
            try:
                q = float(labels["quantile"])
            except ValueError:
                problems.append(f"{family}: quantile {labels['quantile']!r} not a float")
                continue
            if not (0.0 < q < 1.0):
                problems.append(f"{family}: quantile {q} outside (0, 1)")

    def _counter(name: str) -> float | None:
        entries = samples.get(name)
        return entries[0][1] if entries else None

    completed = _counter("repro_tasks_completed_total")
    on_time = _counter("repro_tasks_on_time_total")
    late = _counter("repro_tasks_late_total")
    if None not in (completed, on_time, late) and completed != on_time + late:
        problems.append(
            f"tasks_completed {completed} != on_time {on_time} + late {late}"
        )
    return [f"{origin}: {p}" for p in problems] if origin else problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "scrapes", nargs="+", help="Prometheus text files ('-' reads stdin)"
    )
    args = parser.parse_args()
    failed = False
    for name in args.scrapes:
        if name == "-":
            text, label = sys.stdin.read(), "<stdin>"
        else:
            try:
                text, label = Path(name).read_text(encoding="utf-8"), name
            except OSError as exc:
                print(f"FAIL {name}\n  unreadable: {exc}")
                failed = True
                continue
        problems = check_scrape(text, "")
        if problems:
            failed = True
            print(f"FAIL {label}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok {label}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
