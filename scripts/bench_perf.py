"""Benchmark the hot-path performance layer; write ``BENCH_perf.json``.

Measures, on one prebuilt trial system:

* micro: pmf truncation with a cold cache vs. a warm cache hit, plus a
  representative convolution (``bench_micro_pmf``);
* micro: per-arrival candidate construction, reference per-core loop
  vs. the vectorized :class:`~repro.sim.mapper.CandidateBuilder`
  (``bench_micro_engine``);
* end-to-end: full trials of every requested heuristic with the
  performance layer off (``PerfConfig.disabled()``) and on (defaults),
  interleaved and best-of-``--reps`` to shrug off machine noise.

Every cached/uncached result pair is compared for full equality; the
script exits nonzero if any pair differs or any end-to-end speedup
falls below ``--min-speedup`` — the CI perf smoke gate.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py --tasks 1000 --seed 123 \
        --reps 5 --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import time

import numpy as np

from repro import rng as rng_mod
from repro._version import __version__
from repro.api import Scenario
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.filters.chain import build_filter_chain
from repro.heuristics.registry import build_heuristic
from repro.perf.kernel_cache import KernelCache, PerfConfig
from repro.sim.engine import Engine
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.state import CoreState
from repro.stoch.distributions import discretized_gamma
from repro.stoch.ops import convolve, set_kernel_cache, shift, truncate_below


def _best_of(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _us_per_call(fn, calls: int, reps: int = 3) -> float:
    def loop():
        for _ in range(calls):
            fn()

    return _best_of(loop, reps) / calls * 1e6


def bench_micro_pmf(reps: int) -> dict:
    """Per-operation cost of the truncation the cache interns."""
    exec_pmf = discretized_gamma(mean=750.0, cv=0.2, dt=15.0)
    shifted = shift(exec_pmf, 100.0)
    cut = shifted.start + 0.4 * (shifted.stop - shifted.start)
    calls = 2000

    uncached_us = _us_per_call(lambda: truncate_below(shifted, cut), calls, reps)

    # shift() reuses the operand's validated array and carried caches;
    # it must stay far cheaper than the O(n) truncation scan (the
    # regression gate in main() pins this).
    shift_us = _us_per_call(lambda: shift(exec_pmf, 115.0), calls, reps)

    cache = KernelCache()
    previous = set_kernel_cache(cache)
    try:
        truncate_below(shifted, cut)  # warm the entry
        cached_us = _us_per_call(lambda: truncate_below(shifted, cut), calls, reps)
    finally:
        set_kernel_cache(previous)

    long_pmf = discretized_gamma(mean=1800.0, cv=0.2, dt=15.0)
    convolve_us = _us_per_call(lambda: convolve(exec_pmf, long_pmf), 500, reps)
    return {
        "truncate_uncached_us": round(uncached_us, 3),
        "truncate_cached_hit_us": round(cached_us, 3),
        "truncate_hit_speedup": round(uncached_us / cached_us, 2),
        "shift_us": round(shift_us, 3),
        "convolve_us": round(convolve_us, 3),
        "cache_hits": cache.stats().hits,
    }


def bench_micro_engine(system, reps: int) -> dict:
    """Per-arrival candidate-set construction cost, both mappers."""
    cluster = system.cluster
    dt = system.config.grid.dt

    def fresh_cores():
        return [
            CoreState(cid, int(cluster.core_node_index[cid]), dt)
            for cid in range(cluster.num_cores)
        ]

    task = system.workload.tasks[0]
    calls = 200

    cores = fresh_cores()
    loop_us = _us_per_call(
        lambda: build_candidate_set(task, cores, system.table, task.arrival), calls, reps
    )
    cores = fresh_cores()
    builder = CandidateBuilder(cores, system.table)
    batch_us = _us_per_call(lambda: builder.build(task, task.arrival), calls, reps)
    return {
        "build_candidate_set_us": round(loop_us, 3),
        "candidate_builder_us": round(batch_us, 3),
        "builder_speedup": round(loop_us / batch_us, 2),
    }


def _cache_stats(system, spec: VariantSpec) -> dict:
    """One instrumented run to report the cache's hit profile."""
    rng = rng_mod.stream(system.config.seed, "heuristic", spec.label)
    engine = Engine(
        system,
        build_heuristic(spec.heuristic, rng),
        build_filter_chain(spec.variant, system.config.filters),
    )
    engine.run()
    stats = engine.kernel_cache_stats()
    assert stats is not None
    return stats.to_dict()


def bench_trials(system, heuristics, variant: str, reps: int) -> dict:
    """Interleaved off/on full trials, best-of-``reps`` each."""
    out = {}
    for heuristic in heuristics:
        spec = VariantSpec(heuristic, variant)
        off = on = math.inf
        identical = True
        result_off = result_on = None
        for _ in range(reps):
            t0 = time.perf_counter()
            result_off = TrialPlan(
                system=system, spec=spec, perf=PerfConfig.disabled()
            ).run()
            off = min(off, time.perf_counter() - t0)
            t0 = time.perf_counter()
            result_on = TrialPlan(system=system, spec=spec, perf=PerfConfig()).run()
            on = min(on, time.perf_counter() - t0)
            identical = identical and result_off == result_on
        assert result_off is not None and result_on is not None
        out[spec.label] = {
            "uncached_s": round(off, 4),
            "cached_s": round(on, 4),
            "speedup": round(off / on, 3),
            "missed": result_on.missed,
            "identical": identical,
            "cache": _cache_stats(system, spec),
        }
        print(
            f"{spec.label:>14}: off {off:.3f}s  on {on:.3f}s  "
            f"speedup {off / on:.2f}x  missed {result_off.missed}/{result_on.missed}  "
            f"identical={identical}"
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=1000, help="tasks per trial")
    parser.add_argument("--seed", type=int, default=123, help="master seed")
    parser.add_argument("--reps", type=int, default=5, help="repetitions (best-of)")
    parser.add_argument(
        "--heuristics", nargs="+", default=["SQ", "MECT", "LL", "Random"]
    )
    parser.add_argument("--filters", default="en+rob", help="filter variant to run")
    parser.add_argument("--out", default="BENCH_perf.json", help="report path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail when any end-to-end speedup falls below this",
    )
    args = parser.parse_args(argv)

    system = Scenario(
        "LL", args.filters, seed=args.seed, num_tasks=args.tasks
    ).build_system()

    print(f"# micro (pmf ops, {args.reps} reps)")
    micro_pmf = bench_micro_pmf(args.reps)
    print(json.dumps(micro_pmf))
    print(f"# micro (candidate construction, {args.reps} reps)")
    micro_engine = bench_micro_engine(system, args.reps)
    print(json.dumps(micro_engine))
    print(f"# end-to-end ({args.tasks} tasks, seed {args.seed}, best of {args.reps})")
    trials = bench_trials(system, args.heuristics, args.filters, args.reps)

    speedups = [row["speedup"] for row in trials.values()]
    report = {
        "format": "repro.bench_perf/1",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "tasks": args.tasks,
            "seed": args.seed,
            "reps": args.reps,
            "filters": args.filters,
            # This bench measures the cache layer on the reference
            # path; compiled backends are bench_kernels.py's job.
            "backend": "numpy",
        },
        "bench_micro_pmf": micro_pmf,
        "bench_micro_engine": micro_engine,
        "trials": trials,
        "summary": {
            "min_speedup": min(speedups),
            "geomean_speedup": round(
                float(np.exp(np.mean(np.log(speedups)))), 3
            ),
            "all_identical": all(row["identical"] for row in trials.values()),
        },
    }
    path = pathlib.Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if not report["summary"]["all_identical"]:
        print("FAIL: cached results differ from uncached results", file=sys.stderr)
        return 1
    if micro_pmf["shift_us"] >= micro_pmf["truncate_uncached_us"]:
        print(
            f"FAIL: shift ({micro_pmf['shift_us']}us) should be cheaper than an "
            f"uncached truncation ({micro_pmf['truncate_uncached_us']}us) — the "
            "validation-free shift path has regressed",
            file=sys.stderr,
        )
        return 1
    if min(speedups) < args.min_speedup:
        print(
            f"FAIL: min end-to-end speedup {min(speedups):.3f}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: speedups {', '.join(f'{s:.2f}x' for s in speedups)} "
        f"(min {min(speedups):.2f}x >= {args.min_speedup}x), results identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
