#!/usr/bin/env python
"""Run the paper's full evaluation grid and emit EXPERIMENTS.md tables.

Reproduces Figures 2-6 and the Section VII in-text numbers: every
(heuristic, filter-variant) cell over N paired trials of the full
1,000-task workload.  Writes a JSON dump of per-trial misses and prints
the report tables.

Usage:
    python scripts/run_full_grid.py [--trials 50] [--tasks 1000]
        [--seed 0] [--jobs 1] [--out results/full_grid.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from dataclasses import replace

from repro import SimulationConfig
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.figures import FIGURES, full_grid_specs
from repro.experiments.report import best_variant_table, figure_table, summary_table
from repro.experiments.runner import run_ensemble
from repro.experiments.stats import box_stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=50)
    parser.add_argument("--tasks", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", type=str, default="results/full_grid.json")
    args = parser.parse_args()

    config = SimulationConfig(seed=args.seed)
    if args.tasks != config.workload.num_tasks:
        config = replace(config, workload=config.workload.with_num_tasks(args.tasks))

    specs = full_grid_specs()
    start = time.time()
    ensemble = run_ensemble(
        specs, config, args.trials, base_seed=args.seed, n_jobs=args.jobs
    )
    elapsed = time.time() - start
    print(f"# full grid: {len(specs)} variants x {args.trials} trials "
          f"x {args.tasks} tasks in {elapsed:.0f}s\n")

    for fig, heuristics in FIGURES.items():
        if fig == "fig6":
            continue
        for heuristic in heuristics:
            print(figure_table(ensemble, heuristic, args.tasks))
            print()
            print(ascii_boxplot_group(
                ensemble.by_heuristic(heuristic),
                title=f"{fig}: {heuristic} missed deadlines",
            ))
            print()
    print(best_variant_table(ensemble, args.tasks))
    print()
    print(summary_table(ensemble, args.tasks))

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    dump = {
        "trials": args.trials,
        "tasks": args.tasks,
        "seed": args.seed,
        "elapsed_s": elapsed,
        "misses": {
            spec.label: ensemble.misses(spec).tolist() for spec in specs
        },
        "stats": {
            spec.label: vars(box_stats(ensemble.misses(spec))) | {"outliers": list(box_stats(ensemble.misses(spec)).outliers)}
            for spec in specs
        },
    }
    out_path.write_text(json.dumps(dump, indent=2, default=str))
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
