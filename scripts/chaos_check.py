#!/usr/bin/env python
"""Assert that fault recovery is bitwise invisible (CI chaos job).

Runs a small ensemble three ways and compares manifest trial digests:

1. clean, serial — the ground truth;
2. under an injected fault plan (worker crash, hang, corrupt result)
   with checkpointing and a per-trial timeout — every fault must be
   recovered by a retry, never by re-seeding or skipping;
3. resumed from the checkpoint shard — no trial re-runs, digests of the
   restored results must still match.

Exits nonzero (with a diagnostic) on any digest mismatch, any
quarantined trial, or unexpected retry counts.

Usage:
    python scripts/chaos_check.py [--tasks 60] [--trials 3] [--seed 5]
        [--plan "0:1:crash,1:1:hang,2:1:corrupt"] [--trial-timeout 30]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import SimulationConfig
from repro.experiments.chaos import parse_fault_plan
from repro.experiments.runner import PartialEnsembleResult, VariantSpec, run_ensemble
from repro.obs.manifest import build_manifest
from repro.obs.sinks import MetricsRegistry

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("MECT", "none"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=60)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--plan",
        default="0:1:crash,1:1:hang,2:1:corrupt",
        help="fault plan as trial:attempt:kind triples",
    )
    parser.add_argument("--trial-timeout", type=float, default=30.0)
    args = parser.parse_args()

    plan = parse_fault_plan(args.plan)
    config = SimulationConfig(seed=args.seed)
    if args.tasks != config.workload.num_tasks:
        config = replace(config, workload=config.workload.with_num_tasks(args.tasks))

    print(f"clean run: {len(SPECS)} specs x {args.trials} trials x {args.tasks} tasks")
    clean = build_manifest(
        run_ensemble(SPECS, config, args.trials, args.seed), config
    )

    problems: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        shard = Path(tmp) / "chaos.ckpt.jsonl"
        print(f"chaos run: plan={args.plan!r} timeout={args.trial_timeout}s")
        registry = MetricsRegistry()
        chaotic = run_ensemble(
            SPECS,
            config,
            args.trials,
            args.seed,
            checkpoint=shard,
            trial_timeout=args.trial_timeout,
            backoff_base=0.0,
            fault_plan=plan,
            metrics=registry,
        )
        faults = len(plan.faults)
        retried = registry.counter("executor.trials_retried")
        quarantined = registry.counter("executor.trials_quarantined")
        print(f"  retried={retried} quarantined={quarantined}")
        if isinstance(chaotic, PartialEnsembleResult):
            problems.append(f"chaos run lost trials: {chaotic.missing_trials}")
        if retried != faults:
            problems.append(f"expected {faults} retries, saw {retried}")
        if quarantined:
            problems.append(f"{quarantined} trials quarantined; expected 0")
        if build_manifest(chaotic, config).trial_digests != clean.trial_digests:
            problems.append("chaos-run digests differ from the clean run")

        print("resume run: restoring every trial from the checkpoint shard")
        resumed_registry = MetricsRegistry()
        resumed = run_ensemble(
            SPECS,
            config,
            args.trials,
            args.seed,
            checkpoint=shard,
            resume=True,
            metrics=resumed_registry,
        )
        restored = resumed_registry.counter("executor.trials_resumed")
        print(f"  resumed={restored}")
        if restored != args.trials:
            problems.append(f"expected {args.trials} resumed trials, saw {restored}")
        if build_manifest(resumed, config).trial_digests != clean.trial_digests:
            problems.append("resumed-run digests differ from the clean run")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("OK: recovered and resumed runs are bitwise identical to the clean run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
