"""The repo's scripts must run end-to-end at tiny scale."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestRunFullGrid:
    def test_tiny_grid_run(self, tmp_path):
        out = tmp_path / "grid.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "run_full_grid.py"),
                "--trials",
                "1",
                "--tasks",
                "60",
                "--seed",
                "5",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["trials"] == 1
        assert len(data["misses"]) == 16
        assert "LL/en+rob" in data["misses"]
        # The printed report must include every figure's heuristic.
        for token in ("SQ", "MECT", "LL", "Random", "Filtering summary"):
            assert token in proc.stdout


class TestChaosCheck:
    def test_recovery_is_bitwise_clean(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "chaos_check.py"),
                "--tasks",
                "60",
                "--trials",
                "3",
                "--seed",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "bitwise identical" in proc.stdout
        assert "retried=3 quarantined=0" in proc.stdout
        assert "resumed=3" in proc.stdout


class TestTraceCheck:
    SCRIPT = REPO / "scripts" / "trace_check.py"

    def run_check(self, *paths):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *[str(p) for p in paths]],
            capture_output=True,
            text=True,
            timeout=60,
        )

    @staticmethod
    def write(tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_valid_trace_passes(self, tmp_path):
        good = self.write(
            tmp_path,
            "good.json",
            {
                "traceEvents": [
                    {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                     "args": {"name": "supervisor"}},
                    {"ph": "X", "name": "a", "ts": 0.0, "dur": 5.0, "pid": 0, "tid": 0},
                    {"ph": "X", "name": "b", "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 0},
                ]
            },
        )
        proc = self.run_check(good)
        assert proc.returncode == 0, proc.stdout
        assert proc.stdout.startswith("ok")

    def test_negative_duration_fails(self, tmp_path):
        bad = self.write(
            tmp_path,
            "bad.json",
            [{"ph": "X", "name": "a", "ts": 0.0, "dur": -1.0, "pid": 0, "tid": 0}],
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "bad dur" in proc.stdout

    def test_backwards_timestamps_fail(self, tmp_path):
        bad = self.write(
            tmp_path,
            "bad.json",
            [
                {"ph": "X", "name": "a", "ts": 9.0, "dur": 1.0, "pid": 0, "tid": 0},
                {"ph": "X", "name": "b", "ts": 3.0, "dur": 1.0, "pid": 0, "tid": 0},
            ],
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "goes backwards" in proc.stdout

    def test_unbalanced_duration_events_fail(self, tmp_path):
        bad = self.write(
            tmp_path,
            "bad.json",
            [{"ph": "B", "name": "open", "ts": 0.0, "pid": 0, "tid": 0}],
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "unclosed" in proc.stdout

    def test_empty_trace_fails(self, tmp_path):
        proc = self.run_check(self.write(tmp_path, "empty.json", {"traceEvents": []}))
        assert proc.returncode == 1
        assert "no span events" in proc.stdout

    def test_one_bad_file_fails_the_batch(self, tmp_path):
        good = self.write(
            tmp_path,
            "good.json",
            [{"ph": "X", "name": "a", "ts": 0.0, "dur": 1.0, "pid": 0, "tid": 0}],
        )
        bad = self.write(tmp_path, "bad.json", {"traceEvents": "nope"})
        proc = self.run_check(good, bad)
        assert proc.returncode == 1
        assert "ok" in proc.stdout and "FAIL" in proc.stdout

    def test_real_profile_passes(self, tmp_path):
        # End to end: the exporter's output satisfies the validator.
        prof = tmp_path / "prof.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "trial",
                "--tasks", "60", "--seed", "5",
                "--profile-out", str(prof),
            ],
            capture_output=True, text=True, timeout=600,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        check = self.run_check(prof)
        assert check.returncode == 0, check.stdout


class TestServiceCheck:
    SCRIPT = REPO / "scripts" / "service_check.py"

    def run_check(self, *paths):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *[str(p) for p in paths]],
            capture_output=True,
            text=True,
            timeout=60,
        )

    @staticmethod
    def row(index, start, end, **overrides):
        row = {
            "format": "repro.window/1",
            "index": index,
            "label": "LL/en+rob",
            "seed": 0,
            "traffic": "poisson",
            "start": start,
            "end": end,
            "arrivals": 3,
            "mapped": 2,
            "discarded": 1,
            "completed": 2,
            "on_time": 1,
            "late": 1,
            "energy": 10.0,
            "budget_remaining": 5.0,
            "in_system_end": 1,
        }
        row.update(overrides)
        return row

    def write(self, tmp_path, name, rows):
        path = tmp_path / name
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        return path

    def test_valid_windows_pass(self, tmp_path):
        good = self.write(
            tmp_path,
            "good.jsonl",
            [self.row(0, 0.0, 5.0), self.row(1, 5.0, 10.0, budget_remaining=None)],
        )
        proc = self.run_check(good)
        assert proc.returncode == 0, proc.stdout
        assert proc.stdout.startswith("ok")

    def test_gap_between_windows_fails(self, tmp_path):
        bad = self.write(
            tmp_path, "gap.jsonl", [self.row(0, 0.0, 5.0), self.row(1, 6.0, 10.0)]
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "contiguity" in proc.stdout

    def test_count_identity_fails(self, tmp_path):
        bad = self.write(tmp_path, "sum.jsonl", [self.row(0, 0.0, 5.0, arrivals=99)])
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "mapped + discarded" in proc.stdout

    def test_negative_budget_fails(self, tmp_path):
        bad = self.write(
            tmp_path, "neg.jsonl", [self.row(0, 0.0, 5.0, budget_remaining=-1.0)]
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "budget_remaining" in proc.stdout

    def test_out_of_order_index_fails(self, tmp_path):
        bad = self.write(
            tmp_path, "idx.jsonl", [self.row(0, 0.0, 5.0), self.row(5, 5.0, 10.0)]
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "out of order" in proc.stdout

    def test_empty_file_fails(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        proc = self.run_check(empty)
        assert proc.returncode == 1
        assert "no window rows" in proc.stdout

    def test_v2_row_missing_fault_columns_fails(self, tmp_path):
        bad = self.write(
            tmp_path, "v2.jsonl", [self.row(0, 0.0, 5.0, schema_version=2)]
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "schema v2 requires count shed" in proc.stdout

    def test_v2_row_with_fault_columns_passes(self, tmp_path):
        good = self.write(
            tmp_path,
            "v2.jsonl",
            [
                self.row(
                    0, 0.0, 5.0, schema_version=2, arrivals=4,
                    shed=1, deferred=0, orphaned=2, remapped=1, lost=1,
                )
            ],
        )
        proc = self.run_check(good)
        assert proc.returncode == 0, proc.stdout

    def test_bad_schema_version_fails(self, tmp_path):
        for version in (0, -1, "two", True):
            bad = self.write(
                tmp_path, "ver.jsonl", [self.row(0, 0.0, 5.0, schema_version=version)]
            )
            proc = self.run_check(bad)
            assert proc.returncode == 1, version
            assert "schema_version" in proc.stdout

    def test_v2_remapped_exceeding_orphaned_fails(self, tmp_path):
        bad = self.write(
            tmp_path,
            "remap.jsonl",
            [
                self.row(
                    0, 0.0, 5.0, schema_version=2, arrivals=3,
                    shed=0, deferred=0, orphaned=1, remapped=2, lost=0,
                )
            ],
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "remapped" in proc.stdout

    def test_schema_version_must_be_constant(self, tmp_path):
        fault_cols = dict(shed=0, deferred=0, orphaned=0, remapped=0, lost=0)
        bad = self.write(
            tmp_path,
            "mixed.jsonl",
            [
                self.row(0, 0.0, 5.0, schema_version=2, **fault_cols),
                self.row(1, 5.0, 10.0, schema_version=3, **fault_cols),
            ],
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "schema_version" in proc.stdout

    def test_real_serve_output_passes(self, tmp_path):
        # End to end: `repro serve --windows-out` satisfies the validator.
        out = tmp_path / "windows.jsonl"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--tasks", "60", "--seed", "5",
                "--traffic", "poisson", "--task-limit", "120",
                "--windows-out", str(out),
            ],
            capture_output=True, text=True, timeout=600,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        check = self.run_check(out)
        assert check.returncode == 0, check.stdout

    def test_truncation_trailer_is_tolerated(self, tmp_path):
        rows = [self.row(0, 0.0, 5.0), self.row(1, 5.0, 10.0)]
        trailer = {
            "format": "repro.window_trailer/1",
            "truncated": True,
            "windows": 2,
            "makespan": 10.0,
        }
        path = self.write(tmp_path, "trunc.jsonl", rows + [trailer])
        proc = self.run_check(path)
        assert proc.returncode == 0, proc.stdout

    def test_trailer_with_wrong_count_fails(self, tmp_path):
        trailer = {
            "format": "repro.window_trailer/1",
            "truncated": True,
            "windows": 5,
            "makespan": 5.0,
        }
        path = self.write(tmp_path, "bad.jsonl", [self.row(0, 0.0, 5.0), trailer])
        proc = self.run_check(path)
        assert proc.returncode == 1
        assert "trailer" in proc.stdout


class TestFaultsCheck:
    SCRIPT = REPO / "scripts" / "faults_check.py"

    def run_check(self, *args):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *[str(a) for a in args]],
            capture_output=True,
            text=True,
            timeout=60,
        )

    @staticmethod
    def row(index, start, end, **overrides):
        row = {
            "format": "repro.window/1",
            "index": index,
            "label": "LL/en+rob",
            "seed": 0,
            "traffic": "poisson",
            "start": start,
            "end": end,
            "arrivals": 4,
            "mapped": 2,
            "discarded": 1,
            "shed": 1,
            "deferred": 0,
            "orphaned": 2,
            "remapped": 1,
            "lost": 1,
            "completed": 2,
            "on_time": 1,
            "late": 1,
            "energy": 10.0,
            "budget_remaining": 5.0,
            "in_system_end": 1,
        }
        row.update(overrides)
        return row

    def write(self, tmp_path, name, rows):
        path = tmp_path / name
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        return path

    def test_valid_fault_columns_pass(self, tmp_path):
        good = self.write(
            tmp_path, "good.jsonl", [self.row(0, 0.0, 5.0), self.row(1, 5.0, 10.0)]
        )
        proc = self.run_check(good)
        assert proc.returncode == 0, proc.stdout
        assert proc.stdout.startswith("ok")

    def test_missing_fault_field_fails(self, tmp_path):
        row = self.row(0, 0.0, 5.0)
        del row["orphaned"]
        bad = self.write(tmp_path, "missing.jsonl", [row])
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "orphaned" in proc.stdout

    def test_negative_count_fails(self, tmp_path):
        bad = self.write(tmp_path, "neg.jsonl", [self.row(0, 0.0, 5.0, lost=-1)])
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "lost" in proc.stdout

    def test_remapped_exceeding_orphaned_fails(self, tmp_path):
        bad = self.write(
            tmp_path, "remap.jsonl", [self.row(0, 0.0, 5.0, remapped=3, orphaned=2)]
        )
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "remapped" in proc.stdout

    def test_shed_breaks_arrival_identity_fails(self, tmp_path):
        # shed counts toward arrivals: dropping it from the sum must fail.
        bad = self.write(tmp_path, "sum.jsonl", [self.row(0, 0.0, 5.0, shed=2)])
        proc = self.run_check(bad)
        assert proc.returncode == 1
        assert "arrivals" in proc.stdout

    def test_expect_faults_rejects_quiet_file(self, tmp_path):
        quiet = self.write(
            tmp_path,
            "quiet.jsonl",
            [self.row(0, 0.0, 5.0, arrivals=3, shed=0, deferred=0,
                      orphaned=0, remapped=0, lost=0)],
        )
        assert self.run_check(quiet).returncode == 0
        proc = self.run_check("--expect-faults", quiet)
        assert proc.returncode == 1
        assert "no fault activity" in proc.stdout

    def test_trailer_is_tolerated(self, tmp_path):
        trailer = {
            "format": "repro.window_trailer/1",
            "truncated": True,
            "windows": 1,
            "makespan": 5.0,
        }
        path = self.write(tmp_path, "trunc.jsonl", [self.row(0, 0.0, 5.0), trailer])
        proc = self.run_check(path)
        assert proc.returncode == 0, proc.stdout

    def test_real_degraded_serve_output_passes(self, tmp_path):
        # End to end: a degraded `repro serve` run satisfies the
        # validator including --expect-faults.
        out = tmp_path / "windows.jsonl"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--tasks", "60", "--seed", "5",
                "--traffic", "poisson", "--task-limit", "120",
                "--fault-mtbf", "4000", "--fault-mttr", "1500",
                "--fault-horizon", "20000", "--fault-scope", "node",
                "--shed-queue-depth", "4",
                "--windows-out", str(out),
            ],
            capture_output=True, text=True, timeout=600,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        check = self.run_check("--expect-faults", out)
        assert check.returncode == 0, check.stdout + proc.stdout


class TestTelemetryCheck:
    SCRIPT = REPO / "scripts" / "telemetry_check.py"

    def run_check(self, *paths):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *[str(p) for p in paths]],
            capture_output=True,
            text=True,
            timeout=60,
        )

    @staticmethod
    def real_scrape() -> str:
        # A genuine rendering from a fed Telemetry hub, built in-process.
        import sys as _sys

        _sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.obs.telemetry import Telemetry
            from repro.sim.metrics import WindowStats

            tele = Telemetry(rules=["on_time_prob<0.5:3"])
            tele.configure(window=10.0)
            for i in range(12):
                tele.on_mapped(10.0 * i + 0.5, queue_depth=1.0)
                tele.on_completion(10.0 * i + 2.0, latency=1.5, on_time=True)
                tele.on_window(
                    WindowStats(
                        start=10.0 * i, end=10.0 * (i + 1), mapped=1,
                        completed=1, on_time=1, energy=100.0, in_system_end=0,
                    )
                )
            return tele.render_prometheus()
        finally:
            _sys.path.pop(0)

    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_real_rendering_passes(self, tmp_path):
        proc = self.run_check(self.write(tmp_path, "good.prom", self.real_scrape()))
        assert proc.returncode == 0, proc.stdout
        assert proc.stdout.startswith("ok")

    def test_missing_required_family_fails(self, tmp_path):
        text = self.real_scrape().replace("repro_warmup_window_index", "repro_renamed")
        proc = self.run_check(self.write(tmp_path, "missing.prom", text))
        assert proc.returncode == 1
        assert "repro_warmup_window_index" in proc.stdout

    def test_negative_counter_fails(self, tmp_path):
        text = self.real_scrape().replace(
            "repro_tasks_discarded_total 0", "repro_tasks_discarded_total -3"
        )
        proc = self.run_check(self.write(tmp_path, "neg.prom", text))
        assert proc.returncode == 1
        assert "negative" in proc.stdout

    def test_untyped_family_fails(self, tmp_path):
        text = self.real_scrape().replace(
            "# TYPE repro_windows_total counter\n", ""
        )
        proc = self.run_check(self.write(tmp_path, "untyped.prom", text))
        assert proc.returncode == 1
        assert "no # TYPE" in proc.stdout

    def test_broken_accounting_fails(self, tmp_path):
        text = self.real_scrape().replace(
            "repro_tasks_on_time_total 12", "repro_tasks_on_time_total 11"
        )
        proc = self.run_check(self.write(tmp_path, "sum.prom", text))
        assert proc.returncode == 1
        assert "on_time" in proc.stdout

    def test_garbage_line_fails(self, tmp_path):
        proc = self.run_check(
            self.write(tmp_path, "junk.prom", "!!! not a metric line\n")
        )
        assert proc.returncode == 1
        assert "unparseable" in proc.stdout

    def test_stdin_dash_input(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(self.SCRIPT), "-"],
            input=self.real_scrape(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stdout
        assert "<stdin>" in proc.stdout

    def test_real_serve_telemetry_out_passes(self, tmp_path):
        # End to end: `repro serve --telemetry-out` satisfies the validator.
        out = tmp_path / "tele.prom"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--tasks", "60", "--seed", "5",
                "--traffic", "poisson", "--task-limit", "120",
                "--telemetry-out", str(out),
                "--slo", "on_time_prob<0.9:3",
            ],
            capture_output=True, text=True, timeout=600,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        check = self.run_check(out)
        assert check.returncode == 0, check.stdout
