"""The repo's scripts must run end-to-end at tiny scale."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestRunFullGrid:
    def test_tiny_grid_run(self, tmp_path):
        out = tmp_path / "grid.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "run_full_grid.py"),
                "--trials",
                "1",
                "--tasks",
                "60",
                "--seed",
                "5",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["trials"] == 1
        assert len(data["misses"]) == 16
        assert "LL/en+rob" in data["misses"]
        # The printed report must include every figure's heuristic.
        for token in ("SQ", "MECT", "LL", "Random", "Filtering summary"):
            assert token in proc.stdout


class TestChaosCheck:
    def test_recovery_is_bitwise_clean(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "chaos_check.py"),
                "--tasks",
                "60",
                "--trials",
                "3",
                "--seed",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "bitwise identical" in proc.stdout
        assert "retried=3 quarantined=0" in proc.stdout
        assert "resumed=3" in proc.stdout
