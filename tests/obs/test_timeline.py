"""Tests for timeline sampling (repro.obs.timeline)."""

from __future__ import annotations

import pytest

from repro.obs.timeline import (
    TIMELINE_FORMAT,
    TimelineRecorder,
    TimelineSample,
    TimelineSet,
)


class _FakeCore:
    def __init__(self, node_index: int, assigned: int, running: bool) -> None:
        self.node_index = node_index
        self.assigned_count = assigned
        self.running = object() if running else None


class _FakeCluster:
    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes


class _FakeSystem:
    def __init__(self, num_nodes: int) -> None:
        self.cluster = _FakeCluster(num_nodes)


class _FakeEngine:
    """Just enough engine surface for the recorder to read."""

    def __init__(self, num_nodes: int = 2) -> None:
        self.now = 0.0
        self.system = _FakeSystem(num_nodes)
        self.cores: list[_FakeCore] = []
        self.energy_estimate = 100.0


class TestTimelineRecorder:
    def test_rejects_nonpositive_dt(self):
        for dt in (0.0, -1.0):
            with pytest.raises(ValueError):
                TimelineRecorder(dt)

    def test_one_sample_per_crossed_tick(self):
        rec = TimelineRecorder(10.0)
        engine = _FakeEngine()
        engine.now = 0.0
        rec.on_mapped(engine)  # crosses tick 0
        assert [s.t for s in rec.samples] == [0.0]
        engine.now = 35.0
        rec.on_completion(engine)  # crosses ticks 10, 20, 30
        assert [s.t for s in rec.samples] == [0.0, 10.0, 20.0, 30.0]
        engine.now = 36.0
        rec.on_mapped(engine)  # no new tick crossed
        assert len(rec) == 4

    def test_samples_read_engine_state(self):
        rec = TimelineRecorder(1.0)
        engine = _FakeEngine(num_nodes=2)
        engine.cores = [
            _FakeCore(0, assigned=2, running=True),
            _FakeCore(0, assigned=0, running=False),
            _FakeCore(1, assigned=1, running=True),
        ]
        engine.energy_estimate = 42.5
        engine.now = 1.0
        rec.on_mapped(engine)
        last = rec.samples[-1]
        assert last.node_depth == (2, 1)
        assert last.in_system == 3
        assert last.busy_cores == 2
        assert last.energy_estimate == 42.5

    def test_cumulative_counts(self):
        rec = TimelineRecorder(1.0)
        engine = _FakeEngine()
        engine.now = 1.0
        rec.on_completion(engine)
        rec.on_discarded(engine)
        engine.now = 3.0
        rec.on_completion(engine)
        last = rec.samples[-1]
        assert last.completed == 2
        assert last.discarded == 1

    def test_to_dict_parallel_arrays(self):
        rec = TimelineRecorder(5.0, stream=3, label="trial3:SQ/none")
        engine = _FakeEngine(num_nodes=2)
        engine.cores = [_FakeCore(1, assigned=1, running=True)]
        engine.now = 12.0
        rec.on_mapped(engine)
        data = rec.to_dict()
        assert data["stream"] == 3 and data["label"] == "trial3:SQ/none"
        assert data["dt"] == 5.0 and data["num_nodes"] == 2
        assert data["t"] == [0.0, 5.0, 10.0]
        assert data["node_depth"] == [[0, 1]] * 3
        for key in ("busy_cores", "energy_estimate", "completed", "discarded"):
            assert len(data[key]) == 3

    def test_empty_recorder_serializes(self):
        data = TimelineRecorder(1.0).to_dict()
        assert data["t"] == [] and data["num_nodes"] == 0

    def test_capacity_bounds_the_ring_buffer(self):
        rec = TimelineRecorder(1.0, capacity=5)
        engine = _FakeEngine()
        for tick in range(1, 50):
            engine.now = float(tick)
            rec.on_mapped(engine)
        # Newest 5 samples survive; older ones were evicted.
        assert len(rec) == 5
        assert [s.t for s in rec.samples] == [45.0, 46.0, 47.0, 48.0, 49.0]

    def test_capacity_validation(self):
        for capacity in (0, -3):
            with pytest.raises(ValueError):
                TimelineRecorder(1.0, capacity=capacity)

    def test_capped_recorder_serializes(self):
        rec = TimelineRecorder(1.0, capacity=2)
        engine = _FakeEngine()
        engine.now = 3.0
        rec.on_mapped(engine)
        data = rec.to_dict()
        assert data["t"] == [2.0, 3.0]


class TestTimelineSample:
    def test_in_system_sums_nodes(self):
        sample = TimelineSample(
            t=0.0, node_depth=(2, 0, 3), busy_cores=1,
            energy_estimate=0.0, completed=0, discarded=0,
        )
        assert sample.in_system == 5


class TestTimelineSet:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            TimelineSet(0.0)

    def test_sorted_streams_by_stream_then_label(self):
        tls = TimelineSet(1.0)
        tls.add({"stream": 1, "label": "b", "t": []})
        tls.add({"stream": 0, "label": "z", "t": []})
        tls.add({"stream": 1, "label": "a", "t": []})
        assert [(s["stream"], s["label"]) for s in tls] == [
            (0, "z"), (1, "a"), (1, "b"),
        ]

    def test_dict_round_trip(self):
        tls = TimelineSet(2.0)
        rec = TimelineRecorder(2.0, stream=1, label="t")
        engine = _FakeEngine()
        engine.now = 4.0
        rec.on_mapped(engine)
        tls.add(rec)
        data = tls.to_dict()
        assert data["format"] == TIMELINE_FORMAT
        back = TimelineSet.from_dict(data)
        assert back.to_dict() == data

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            TimelineSet.from_dict({"format": "repro.metrics/1", "dt": 1.0, "streams": []})
