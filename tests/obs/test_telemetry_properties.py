"""Property tests pinning the streaming estimators to exact references.

The P² quantile estimator is checked against ``numpy.quantile`` — exact
(bitwise) up to five observations, tolerance-bounded on longer smooth
streams — and the batch-means confidence interval is checked for
coverage on the known-iid normal case where the textbook answer is
unambiguous.  Runs under the suite's derandomized ``ci`` profile.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.steady_state import batch_means_ci, mser_truncation
from repro.obs.telemetry import P2Quantile, QuantileSet

_finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
_quantiles = st.floats(min_value=0.01, max_value=0.99)


def _fill(q: float, xs) -> P2Quantile:
    est = P2Quantile(q)
    for x in xs:
        est.observe(x)
    return est


class TestP2AgainstNumpy:
    @given(_quantiles, st.lists(_finite, min_size=1, max_size=5))
    def test_small_n_is_bitwise_exact(self, q, xs):
        est = _fill(q, xs)
        assert est.value == float(np.quantile(xs, q, method="linear"))

    @given(_quantiles, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_large_normal_stream_is_close(self, q, seed):
        rng = np.random.default_rng(seed)
        xs = rng.normal(0.0, 1.0, size=2000)
        est = _fill(q, xs)
        exact = float(np.quantile(xs, q))
        # Smooth distribution, plenty of data: the P² error is small
        # relative to the sample spread.
        assert abs(est.value - exact) < 0.25

    @given(_quantiles, st.lists(_finite, min_size=1, max_size=400))
    def test_estimate_bounded_by_observed_range(self, q, xs):
        est = _fill(q, xs)
        assert min(xs) <= est.value <= max(xs)
        assert est.count == len(xs)

    @given(
        st.lists(_quantiles, min_size=1, max_size=4, unique=True),
        st.lists(_finite, min_size=1, max_size=60),
    )
    def test_quantile_set_agrees_with_solo_estimators(self, qs, xs):
        bundle = QuantileSet(qs)
        for x in xs:
            bundle.observe(x)
        for q in qs:
            assert bundle.values()[q] == _fill(q, xs).value
        assert bundle.count == len(xs)
        assert bundle.min == min(xs)
        assert bundle.max == max(xs)


class TestMserProperties:
    @given(st.lists(_finite, min_size=0, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_truncation_is_batch_multiple_within_half(self, xs, batch):
        d = mser_truncation(xs, batch=batch)
        assert d % batch == 0
        n_batches = len(xs) // batch
        assert 0 <= d <= (n_batches // 2) * batch

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7, 11, 42, 2011])
    def test_detects_an_obvious_transient(self, seed):
        rng = np.random.default_rng(seed)
        # 30 windows of a strong transient, then 120 of flat noise.
        transient = 50.0 * np.exp(-np.arange(30) / 5.0)
        steady = rng.normal(1.0, 0.1, size=120)
        d = mser_truncation(np.concatenate([transient, steady]))
        # The truncation must remove the bulk of the transient without
        # pinning at its half-series bound (75 here); MSER may overshoot
        # a little when the post-transient noise dips.
        assert 20 <= d <= 70

    def test_stationary_series_needs_no_truncation(self):
        rng = np.random.default_rng(11)
        xs = rng.normal(5.0, 0.2, size=200)
        # No transient: truncating should buy (almost) nothing.
        assert mser_truncation(xs) <= 20


class TestBatchMeansCi:
    @given(st.lists(_finite, min_size=4, max_size=300))
    def test_mean_matches_numpy_and_half_is_positive(self, xs):
        mean, half, k, b = batch_means_ci(xs)
        assert mean == float(np.asarray(xs).mean())
        if not math.isnan(half):
            assert half >= 0.0
            assert 2 <= k
            assert b >= 2
            assert k * b <= len(xs)

    def test_short_series_reports_mean_without_interval(self):
        mean, half, k, b = batch_means_ci([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert math.isnan(half)
        assert (k, b) == (0, 0)

    def test_empty_series_is_all_nan(self):
        mean, half, k, b = batch_means_ci([])
        assert math.isnan(mean) and math.isnan(half)

    def test_iid_normal_coverage_is_near_nominal(self):
        # Known case: iid N(mu, sigma). A 95% batch-means interval over
        # independent samples must cover mu at roughly the nominal rate.
        mu, covered, trials = 10.0, 0, 200
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            xs = rng.normal(mu, 2.0, size=400)
            mean, half, _, _ = batch_means_ci(xs, num_batches=20, level=0.95)
            assert not math.isnan(half)
            if abs(mean - mu) <= half:
                covered += 1
        # Binomial(200, 0.95) essentially never dips below 0.88.
        assert covered / trials >= 0.88

    def test_wider_level_gives_wider_interval(self):
        rng = np.random.default_rng(5)
        xs = rng.normal(0.0, 1.0, size=200)
        _, half95, _, _ = batch_means_ci(xs, level=0.95)
        _, half99, _, _ = batch_means_ci(xs, level=0.99)
        assert half99 > half95
