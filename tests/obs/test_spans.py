"""Tests for span profiling (repro.obs.spans)."""

from __future__ import annotations

import pytest

from repro.obs.spans import (
    NULL_SPAN,
    SpanProfile,
    SpanRecorder,
    current,
    install,
    recording,
    span,
    traced,
    uninstall,
)


class FakeClock:
    """Deterministic perf_counter stand-in: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        return value


class TestSpanRecorder:
    def test_nesting_and_self_time(self):
        # Clock reads: outer open @0, inner open @1, inner close @2,
        # outer close @3 -> inner dur 1, outer dur 3, outer self 2.
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = rec.records
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.dur == pytest.approx(1.0)
        assert outer.dur == pytest.approx(3.0)
        assert inner.self_dur == pytest.approx(1.0)
        assert outer.self_dur == pytest.approx(2.0)
        assert inner.depth == 1 and outer.depth == 0

    def test_seq_is_open_order(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("a"):
            with rec.span("b"):
                pass
        with rec.span("c"):
            pass
        # Records close in b, a, c order but seq reflects open order.
        assert [(r.name, r.seq) for r in rec.records] == [("b", 1), ("a", 0), ("c", 2)]

    def test_add_attributes_to_open_parent(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("parent"):  # open @0
            rec.add("timed-elsewhere", 0.5, 0.25)
        # parent closes @1 -> dur 1, minus the added child's 0.25.
        child, parent = rec.records
        assert child.name == "timed-elsewhere"
        assert child.dur == child.self_dur == pytest.approx(0.25)
        assert child.depth == 1
        assert parent.self_dur == pytest.approx(0.75)

    def test_add_at_top_level(self):
        rec = SpanRecorder()
        rec.add("lonely", 0.0, 1.0)
        assert len(rec) == 1
        assert rec.records[0].depth == 0

    def test_stream_and_label(self):
        rec = SpanRecorder(stream=7, label="worker-7")
        assert rec.stream == 7 and rec.label == "worker-7"
        assert SpanRecorder(stream=3).label == "stream-3"

    def test_span_closed_on_exception(self):
        rec = SpanRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("x")
        assert [r.name for r in rec.records] == ["boom"]

    def test_dict_round_trip_via_profile(self):
        rec = SpanRecorder(stream=2, label="w", clock=FakeClock())
        with rec.span("a", tid=5):
            pass
        profile = SpanProfile()
        profile.add_stream(rec.to_dict())
        (back,) = profile.records
        assert back == rec.records[0]
        assert profile.labels == {2: "w"}


class TestModuleLevelApi:
    def teardown_method(self):
        uninstall()

    def test_span_without_recorder_is_null_singleton(self):
        uninstall()
        assert span("anything") is NULL_SPAN
        with span("anything"):
            pass  # inert, records nowhere

    def test_install_uninstall(self):
        rec = SpanRecorder()
        install(rec)
        assert current() is rec
        with span("x"):
            pass
        assert [r.name for r in rec.records] == ["x"]
        uninstall()
        assert current() is None

    def test_recording_scopes_and_restores(self):
        outer = install(SpanRecorder())
        with recording(stream=1, label="scoped") as rec:
            assert current() is rec
            with span("inside"):
                pass
        assert current() is outer
        assert [r.name for r in rec.records] == ["inside"]

    def test_traced_decorator(self):
        @traced("named.span")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # no recorder: plain call
        with recording() as rec:
            assert fn(2) == 3
        assert [r.name for r in rec.records] == ["named.span"]

    def test_traced_defaults_to_qualname(self):
        @traced()
        def helper():
            return None

        with recording() as rec:
            helper()
        assert rec.records[0].name.endswith("helper")


def two_stream_profile() -> SpanProfile:
    profile = SpanProfile()
    worker = SpanRecorder(stream=2, label="trial-1", clock=FakeClock())
    with worker.span("work"):
        pass
    parent = SpanRecorder(stream=0, label="supervisor", clock=FakeClock())
    with parent.span("supervise"):
        pass
    # Deliberately added out of stream order.
    profile.add_stream(worker)
    profile.add_stream(parent)
    return profile


class TestSpanProfile:
    def test_merge_order_is_deterministic(self):
        # Streams were added worker-first; sorted order is by stream id.
        profile = two_stream_profile()
        assert [r.stream for r in profile.sorted_records()] == [0, 2]
        assert profile.span_counts() == {"supervise": 1, "work": 1}

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            SpanProfile().add_stream({"format": "something/else", "spans": []})

    def test_summary_rows_sorted_by_total(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("big"):       # dur 5 (opens @0, closes @5)
            with rec.span("small"):  # dur 1
                pass
            with rec.span("small"):  # dur 1
                pass
        profile = SpanProfile()
        profile.add_stream(rec)
        rows = profile.summary()
        assert [row[0] for row in rows] == ["big", "small"]
        name, count, total, self_t = rows[1]
        assert count == 2 and total == pytest.approx(2.0)

    def test_chrome_trace_structure(self):
        trace = two_stream_profile().to_chrome_trace()
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["pid"]: m["args"]["name"] for m in meta} == {
            0: "supervisor",
            2: "trial-1",
        }
        assert len(spans) == 2
        for e in spans:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        # Per-stream normalization: each stream's earliest span is at 0.
        assert {e["pid"]: e["ts"] for e in spans} == {0: 0.0, 2: 0.0}

    def test_chrome_trace_track_ordering(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("first"):
            pass
        with rec.span("second"):
            pass
        profile = SpanProfile()
        profile.add_stream(rec)
        spans = [e for e in profile.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)

    def test_len_and_iter(self):
        profile = two_stream_profile()
        assert len(profile) == 2
        assert [r.name for r in profile] == ["supervise", "work"]
