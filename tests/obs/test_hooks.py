"""Tests for ObservingHooks / observe_trial (repro.obs.hooks).

The two load-bearing guarantees:

* observability is strictly opt-in — the engine never imports the obs
  package, and an unobserved run allocates no event objects;
* observing a run does not change it — paired-seed A/B results are
  bitwise identical with tracing on or off.
"""

from __future__ import annotations

import inspect

import pytest

import repro.sim.engine as engine_mod
from repro.filters.chain import build_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.obs.events import (
    EnergyExhausted,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialStarted,
)
from repro.obs.hooks import (
    ObservingHooks,
    TimedFilterChain,
    TimedHeuristic,
    observe_trial,
)
from repro.obs.sinks import MetricsRegistry, RingBufferSink
from repro.obs.spans import SpanRecorder
from repro.obs.timeline import TimelineRecorder
from repro.sim.engine import run_trial
from tests.conftest import micro_config
from repro import build_trial_system


@pytest.fixture(scope="module")
def observed():
    """One observed trial with a full ring trace and metrics."""
    system = build_trial_system(micro_config(seed=3))
    ring = RingBufferSink(capacity=10_000)
    metrics = MetricsRegistry()
    result = observe_trial(
        system, LightestLoad(), build_filter_chain("en+rob"),
        sinks=(ring,), metrics=metrics,
    )
    return system, ring, metrics, result


class TestOptIn:
    def test_engine_never_imports_obs(self):
        # The decoupling that keeps the hot path allocation-free: the
        # engine knows only the hooks protocol, never the event types.
        source = inspect.getsource(engine_mod)
        assert "repro.obs" not in source

    def test_run_trial_defaults_to_no_hooks(self):
        signature = inspect.signature(run_trial)
        assert signature.parameters["hooks"].default is None
        assert signature.parameters["collector"].default is None


class TestEventStream:
    def test_envelope_events(self, observed):
        _system, ring, _metrics, result = observed
        events = ring.events
        assert isinstance(events[0], TrialStarted)
        assert isinstance(events[-1], TrialFinished)
        assert events[0].heuristic == "LL"
        assert events[0].variant == "en+rob"
        assert events[-1].missed == result.missed

    def test_every_task_mapped_or_discarded_once(self, observed):
        system, ring, _metrics, _result = observed
        decided = [
            e.task_id for e in ring if isinstance(e, (TaskMapped, TaskDiscarded))
        ]
        assert sorted(decided) == list(range(system.num_tasks))

    def test_completions_match_mappings(self, observed):
        _system, ring, _metrics, _result = observed
        mapped = {e.task_id for e in ring if isinstance(e, TaskMapped)}
        completed = {e.task_id for e in ring if isinstance(e, TaskCompleted)}
        assert completed == mapped

    def test_engine_event_times_nondecreasing(self, observed):
        # EnergyExhausted is excluded: exhaustion is a post-hoc ledger
        # quantity, emitted at trial end with its (earlier) timestamp.
        _system, ring, _metrics, _result = observed
        times = [
            e.t
            for e in ring
            if isinstance(e, (TaskMapped, TaskDiscarded, TaskCompleted))
        ]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_exhaustion_event_matches_result(self, observed):
        _system, ring, _metrics, result = observed
        exhaustions = [e for e in ring if isinstance(e, EnergyExhausted)]
        if result.exhaustion_time == float("inf"):
            assert not exhaustions
        else:
            assert len(exhaustions) == 1
            assert exhaustions[0].t == result.exhaustion_time

    def test_metrics_counters_match_result(self, observed):
        _system, _ring, metrics, result = observed
        assert metrics.counter("tasks_mapped") == result.num_tasks - result.discarded
        assert (
            sum(metrics.counters_with_prefix("tasks_discarded.").values())
            == result.discarded
        )
        assert metrics.counter("trials_run") == 1

    def test_decision_latency_recorded_per_heuristic(self, observed):
        _system, _ring, metrics, result = observed
        hist = metrics.histograms["decision_latency_s.LL"]
        # One timed decision per arrival (mapped or discarded alike).
        assert hist.count == result.num_tasks
        assert hist.min >= 0.0


class TestObservationIsInert:
    def test_results_bitwise_identical_with_and_without_tracing(self):
        system = build_trial_system(micro_config(seed=6))
        plain = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        ring = RingBufferSink(capacity=10_000)
        observed = observe_trial(
            system, LightestLoad(), build_filter_chain("en+rob"),
            sinks=(ring,), metrics=MetricsRegistry(),
        )
        assert plain == observed  # full dataclass equality incl. outcomes

    def test_timed_heuristic_delegates_choices(self):
        system = build_trial_system(micro_config(seed=2))
        metrics = MetricsRegistry()
        timed = TimedHeuristic(LightestLoad(), metrics)
        assert timed.name == "LL"
        a = run_trial(system, LightestLoad(), build_filter_chain("none"))
        b = run_trial(system, timed, build_filter_chain("none"))
        assert a == b

    def test_hooks_without_sinks_or_metrics_are_harmless(self):
        system = build_trial_system(micro_config(seed=2))
        result = run_trial(
            system, LightestLoad(), build_filter_chain("none"), hooks=ObservingHooks()
        )
        assert result.num_tasks == system.num_tasks

    def test_profiled_trial_bitwise_identical(self):
        system = build_trial_system(micro_config(seed=6))
        plain = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        profiled = observe_trial(
            system, LightestLoad(), build_filter_chain("en+rob"),
            profile=SpanRecorder(),
            timeline=TimelineRecorder(50.0),
        )
        assert plain == profiled


class TestTrialLifecycle:
    """observe_trial's envelope ordering, asserted directly."""

    @staticmethod
    def run_with_ring(seed: int = 3, **updates):
        system = build_trial_system(micro_config(seed=seed, **updates))
        ring = RingBufferSink(capacity=10_000)
        result = observe_trial(
            system, LightestLoad(), build_filter_chain("en+rob"), sinks=(ring,)
        )
        return ring.events, result

    def test_started_first_finished_last(self):
        events, _ = self.run_with_ring()
        assert isinstance(events[0], TrialStarted)
        assert isinstance(events[-1], TrialFinished)
        assert sum(isinstance(e, TrialStarted) for e in events) == 1
        assert sum(isinstance(e, TrialFinished) for e in events) == 1

    def test_at_most_one_exhaustion_even_under_tight_budget(self):
        # A starved budget exhausts early; the event must still appear
        # exactly once, between the envelope events.
        events, result = self.run_with_ring(energy={"budget_mult": 0.05})
        exhaustions = [i for i, e in enumerate(events) if isinstance(e, EnergyExhausted)]
        assert len(exhaustions) == 1
        assert result.exhaustion_time < float("inf")
        assert 0 < exhaustions[0] < len(events) - 1

    def test_no_exhaustion_event_under_ample_budget(self):
        events, result = self.run_with_ring(energy={"budget_mult": 100.0})
        assert not any(isinstance(e, EnergyExhausted) for e in events)
        assert result.exhaustion_time == float("inf")


class TestTimedHeuristic:
    def test_records_one_histogram_sample_per_select(self):
        system = build_trial_system(micro_config(seed=2))
        metrics = MetricsRegistry()
        timed = TimedHeuristic(LightestLoad(), metrics)
        run_trial(system, timed, build_filter_chain("none"))
        hist = metrics.histograms["decision_latency_s.LL"]
        assert hist.count == system.num_tasks
        assert hist.min >= 0.0

    def test_feeds_span_recorder_same_measurement(self):
        system = build_trial_system(micro_config(seed=2))
        metrics = MetricsRegistry()
        recorder = SpanRecorder()
        timed = TimedHeuristic(LightestLoad(), metrics, recorder=recorder)
        run_trial(system, timed, build_filter_chain("none"))
        spans = [r for r in recorder.records if r.name == "heuristic.LL"]
        hist = metrics.histograms["decision_latency_s.LL"]
        assert len(spans) == hist.count
        # One perf_counter pair serves both consumers: identical totals.
        assert sum(r.dur for r in spans) == pytest.approx(hist.total)

    def test_works_without_metrics(self):
        system = build_trial_system(micro_config(seed=2))
        recorder = SpanRecorder()
        timed = TimedHeuristic(LightestLoad(), recorder=recorder)
        result = run_trial(system, timed, build_filter_chain("none"))
        assert result.num_tasks == system.num_tasks
        assert len(recorder) == system.num_tasks

    def test_repr_names_inner(self):
        assert "LightestLoad" in repr(TimedHeuristic(LightestLoad()))


class TestTimedFilterChain:
    def test_preserves_label_and_choices(self):
        system = build_trial_system(micro_config(seed=2))
        inner = build_filter_chain("en+rob")
        timed = TimedFilterChain(inner, SpanRecorder())
        assert timed.label == inner.label == "en+rob"
        a = run_trial(system, LightestLoad(), inner)
        b = run_trial(system, LightestLoad(), timed)
        assert a == b

    def test_spans_chain_and_each_filter(self):
        system = build_trial_system(micro_config(seed=2))
        recorder = SpanRecorder()
        timed = TimedFilterChain(build_filter_chain("en+rob"), recorder)
        run_trial(system, LightestLoad(), timed)
        counts: dict[str, int] = {}
        for record in recorder.records:
            counts[record.name] = counts.get(record.name, 0) + 1
        assert counts["filters.chain"] == system.num_tasks
        assert counts["filter.en"] == counts["filters.chain"]
        assert counts["filter.rob"] == counts["filters.chain"]


class TestDeprecatedAlias:
    def test_run_observed_trial_warns_and_matches(self):
        from repro.obs.hooks import run_observed_trial

        system = build_trial_system(micro_config(seed=6))
        expected = observe_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        with pytest.warns(DeprecationWarning, match="observe_trial"):
            result = run_observed_trial(
                system, LightestLoad(), build_filter_chain("en+rob")
            )
        assert result == expected
