"""Tests for run manifests (repro.obs.manifest)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro._version import __version__
from repro.experiments.runner import VariantSpec, run_ensemble
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    git_sha,
    load_manifest,
    manifest_for_results,
    save_manifest,
    trial_digest,
    verify_ensemble,
)
from tests.conftest import micro_config

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("MECT", "none"))


@pytest.fixture(scope="module")
def ensemble():
    return run_ensemble(SPECS, micro_config(seed=4), num_trials=2, base_seed=17)


@pytest.fixture(scope="module")
def manifest(ensemble):
    return build_manifest(ensemble, micro_config(seed=4))


class TestDigests:
    def test_config_digest_is_stable(self):
        assert config_digest(micro_config(seed=4)) == config_digest(
            micro_config(seed=4)
        )

    def test_config_digest_sensitive_to_any_field(self):
        base = config_digest(micro_config(seed=4))
        assert config_digest(micro_config(seed=5)) != base
        assert config_digest(micro_config(seed=4, energy={"budget_mult": 0.5})) != base

    def test_trial_digest_distinguishes_trials(self, ensemble):
        digests = {
            trial_digest(r)
            for spec in SPECS
            for r in ensemble.results[spec]
        }
        assert len(digests) == 2 * len(SPECS)

    def test_trial_digest_is_stable(self, ensemble):
        r = ensemble.results[SPECS[0]][0]
        assert trial_digest(r) == trial_digest(r)


class TestRunManifest:
    def test_contents(self, manifest, ensemble):
        assert manifest.config_digest == config_digest(micro_config(seed=4))
        assert manifest.base_seed == 17
        assert manifest.num_trials == 2
        assert manifest.repro_version == __version__
        assert manifest.specs == ("LL/en+rob", "MECT/none")
        assert all(len(v) == 2 for v in manifest.trial_digests.values())

    def test_dict_round_trip(self, manifest):
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_from_dict_rejects_wrong_format(self, manifest):
        data = manifest.to_dict() | {"format": "repro.manifest/999"}
        with pytest.raises(ValueError):
            RunManifest.from_dict(data)

    def test_save_load_round_trip(self, manifest, tmp_path):
        path = save_manifest(manifest, tmp_path / "run.manifest.json")
        assert load_manifest(path) == manifest
        # The file is plain JSON with the format marker up front.
        assert json.loads(path.read_text())["format"] == "repro.manifest/1"

    def test_summary_mentions_key_fields(self, manifest):
        text = manifest.summary()
        assert "base seed" in text
        assert "17" in text
        assert "LL/en+rob" in text

    def test_manifest_for_results_matches_build_manifest(self, manifest, ensemble):
        alt = manifest_for_results(
            {spec.label: ensemble.results[spec] for spec in ensemble.specs},
            micro_config(seed=4),
            base_seed=17,
            num_trials=2,
        )
        assert alt == manifest


class TestVerifyEnsemble:
    def test_matching_ensemble_verifies_clean(self, manifest, ensemble):
        assert verify_ensemble(manifest, ensemble) == []

    def test_rerun_verifies_clean(self, manifest):
        rerun = run_ensemble(
            SPECS, micro_config(seed=4), num_trials=2, base_seed=17, n_jobs=2
        )
        assert verify_ensemble(manifest, rerun) == []

    def test_different_base_seed_reported(self, manifest):
        other = run_ensemble(SPECS, micro_config(seed=4), num_trials=2, base_seed=18)
        problems = verify_ensemble(manifest, other)
        assert any("base seed" in p for p in problems)
        assert any("digest mismatch" in p for p in problems)

    def test_missing_spec_reported(self, manifest):
        other = run_ensemble(
            SPECS[:1], micro_config(seed=4), num_trials=2, base_seed=17
        )
        problems = verify_ensemble(manifest, other)
        assert any("specs differ" in p for p in problems)

    def test_tampered_digest_reported(self, manifest, ensemble):
        digests = dict(manifest.trial_digests)
        label = manifest.specs[0]
        digests[label] = ("0" * 64,) + digests[label][1:]
        tampered = dataclasses.replace(manifest, trial_digests=digests)
        problems = verify_ensemble(tampered, ensemble)
        assert problems == [f"{label} trial 0: digest mismatch"]


class TestGitSha:
    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_a_repo(self, tmp_path):
        assert git_sha(tmp_path) is None

    def test_git_sha_is_cached_per_directory(self, monkeypatch):
        from repro.obs import manifest as manifest_mod

        calls = {"n": 0}
        real_run = manifest_mod.subprocess.run

        def counting_run(*args, **kwargs):
            calls["n"] += 1
            return real_run(*args, **kwargs)

        manifest_mod._git_sha_at.cache_clear()
        monkeypatch.setattr(manifest_mod.subprocess, "run", counting_run)
        try:
            first = git_sha()
            second = git_sha()
            assert first == second
            assert calls["n"] == 1  # second lookup served from the cache
        finally:
            manifest_mod._git_sha_at.cache_clear()
