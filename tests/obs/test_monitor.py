"""Tests for the window-JSONL monitor internals (repro.obs.monitor)."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import TelemetryServer
from repro.obs.monitor import (
    MIN_STEADY_WINDOWS,
    evaluate_rules,
    read_window_rows,
    render_monitor,
    scrape,
)
from repro.obs.telemetry import Telemetry


def row(index: int, *, on_time: int = 8, late: int = 2, **overrides) -> dict:
    base = {
        "format": "repro.window/1",
        "schema_version": 2,
        "index": index,
        "label": "LL/en+rob",
        "seed": 123,
        "traffic": "poisson",
        "start": 10.0 * index,
        "end": 10.0 * (index + 1),
        "arrivals": on_time + late,
        "mapped": on_time + late,
        "discarded": 0,
        "completed": on_time + late,
        "on_time": on_time,
        "late": late,
        "energy": 500.0,
        "budget_remaining": None,
        "in_system_end": 3,
        "shed": 0,
        "deferred": 0,
        "orphaned": 0,
        "remapped": 0,
        "lost": 0,
    }
    base.update(overrides)
    return base


def write_jsonl(path, rows, *, partial_tail: str = "") -> None:
    text = "".join(json.dumps(r) + "\n" for r in rows) + partial_tail
    path.write_bytes(text.encode("utf-8"))


class TestReadWindowRows:
    def test_reads_rows_and_offset(self, tmp_path):
        path = tmp_path / "w.jsonl"
        write_jsonl(path, [row(0), row(1)])
        rows, trailer, offset = read_window_rows(path)
        assert [r["index"] for r in rows] == [0, 1]
        assert trailer is None
        assert offset == path.stat().st_size

    def test_partial_last_line_is_left_for_later(self, tmp_path):
        path = tmp_path / "w.jsonl"
        write_jsonl(path, [row(0)], partial_tail='{"format": "repro.win')
        rows, _, offset = read_window_rows(path)
        assert len(rows) == 1
        assert offset < path.stat().st_size
        # The writer finishes the line: a follow-up read picks it up.
        with open(path, "ab") as fh:
            fh.write(b'dow/1", "index": 1}\n')
        more, _, offset2 = read_window_rows(path, offset=offset)
        assert [r["index"] for r in more] == [1]
        assert offset2 == path.stat().st_size

    def test_trailer_separated_from_rows(self, tmp_path):
        path = tmp_path / "w.jsonl"
        trailer_row = {
            "format": "repro.window_trailer/1",
            "truncated": True,
            "windows": 1,
            "makespan": 10.0,
        }
        write_jsonl(path, [row(0), trailer_row])
        rows, trailer, _ = read_window_rows(path)
        assert len(rows) == 1
        assert trailer["truncated"] is True

    def test_foreign_and_broken_lines_skipped(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(
            json.dumps(row(0)) + "\nnot json\n" + json.dumps({"format": "other/1"})
            + "\n[1, 2]\n"
        )
        rows, trailer, _ = read_window_rows(path)
        assert len(rows) == 1 and trailer is None

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text("")
        assert read_window_rows(path) == ([], None, 0)


class TestEvaluateRules:
    def test_replays_streak_machine(self):
        rows = [
            row(0, on_time=5, late=5),   # breach 1
            row(1, on_time=5, late=5),   # breach 2: fires
            row(2, on_time=10, late=0),  # resolves
            row(3, on_time=5, late=5),   # breach again, streak restarts
        ]
        (state,) = evaluate_rules(["on_time_prob<0.75:2"], rows)
        assert not state.firing
        assert state.streak == 1
        assert state.breached_windows == 3
        assert state.fired_count == 1

    def test_final_state_matches_live_hub(self):
        rows = [row(i, on_time=5, late=5) for i in range(3)]
        (state,) = evaluate_rules(["on_time_prob<0.75:2"], rows)
        assert state.firing
        assert state.last_value == pytest.approx(0.5)


class TestRenderMonitor:
    def test_empty_rows(self):
        assert render_monitor([]) == "no windows yet\n"

    def test_table_and_header(self):
        text = render_monitor([row(0), row(1)])
        assert "LL/en+rob [poisson] — 2 windows" in text
        assert "on-time" in text
        assert "steady state" not in text  # too few windows yet

    def test_tail_limits_rows_shown(self):
        text = render_monitor([row(i) for i in range(8)], tail=3)
        lines = [l for l in text.splitlines() if l.strip().startswith(("5", "6", "7"))]
        assert len(lines) == 3
        assert not any(l.strip().startswith("4 ") for l in text.splitlines())

    def test_steady_state_section_after_enough_windows(self):
        text = render_monitor([row(i) for i in range(MIN_STEADY_WINDOWS + 5)])
        assert "steady state (MSER-5 warm-up, batch-means CI)" in text
        assert "| on_time_prob" in text

    def test_slo_section_reports_firing(self):
        rows = [row(i, on_time=5, late=5) for i in range(3)]
        text = render_monitor(rows, rules=["on_time_prob<0.75:2"])
        assert "1 rule(s) FIRING" in text
        assert "[FIRING] on_time_prob<0.75:2" in text
        healthy = render_monitor(rows, rules=["on_time_prob<0.25"])
        assert "SLO health: OK" in healthy

    def test_trailer_notice(self):
        text = render_monitor([row(0)], trailer={"truncated": True})
        assert "truncated" in text


class TestScrape:
    @pytest.fixture()
    def server(self):
        tele = Telemetry()
        tele.configure(window=10.0)
        with TelemetryServer(tele, port=0) as server:
            yield server

    def test_bare_url_gets_metrics_appended(self, server):
        text = scrape(server.url)
        assert "repro_windows_total 0" in text

    def test_health_path_passes_through(self, server):
        doc = json.loads(scrape(f"{server.url}/health"))
        assert doc["healthy"] is True
