"""Tests for the typed event layer (repro.obs.events)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    AlertFired,
    AlertResolved,
    CheckpointWritten,
    EnergyExhausted,
    FaultInjected,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TaskOrphaned,
    TaskShed,
    TrialFinished,
    TrialQuarantined,
    TrialRetried,
    TrialStarted,
    event_from_dict,
    event_to_dict,
)

SAMPLES = [
    TrialStarted(seed=7, num_tasks=30, heuristic="LL", variant="en+rob", budget=1e6),
    TaskMapped(
        t=1.5, task_id=0, type_id=3, core_id=2, pstate=1,
        energy_estimate=9e5, queue_depth=0.25,
    ),
    TaskDiscarded(t=2.5, task_id=1, type_id=4),
    TaskCompleted(t=9.0, task_id=0, type_id=3, core_id=2),
    EnergyExhausted(t=100.0, budget=1e6),
    TrialFinished(
        makespan=120.0, missed=3, completed_within=27, discarded=1, late=1,
        energy_cutoff=1, total_energy=1.1e6,
    ),
    TrialRetried(trial=2, attempt=1, fault="crash", delay=0.75),
    TrialQuarantined(trial=2, attempts=3, fault="timeout"),
    CheckpointWritten(trial=2, path="out/run.jsonl", records=3),
    FaultInjected(t=12.0, fault="node_outage", action="fail", target=1, cores=4),
    TaskOrphaned(t=12.0, task_id=5, type_id=2, core_id=6, disposition="remapped"),
    TaskShed(t=14.0, task_id=9, type_id=0, cause="queue_depth", deferred=False),
    AlertFired(
        t=20.0, rule="on_time_prob<0.9:3", metric="on_time_prob",
        value=0.85, window_index=7, streak=3,
    ),
    AlertResolved(
        t=30.0, rule="on_time_prob<0.9:3", metric="on_time_prob", window_index=9,
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_dict_round_trip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_kind_tag_present(self, event):
        data = event_to_dict(event)
        assert data["kind"] == event.kind
        assert data["kind"] in EVENT_KINDS

    def test_kinds_are_unique_and_registered(self):
        assert len(EVENT_KINDS) == 14
        assert set(EVENT_KINDS) == {
            "trial_started",
            "task_mapped",
            "task_discarded",
            "task_completed",
            "energy_exhausted",
            "trial_finished",
            "trial_retried",
            "trial_quarantined",
            "checkpoint_written",
            "fault_injected",
            "task_orphaned",
            "task_shed",
            "alert_fired",
            "alert_resolved",
        }


class TestSchemaStrictness:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "task_teleported", "t": 1.0})

    def test_unknown_field_rejected(self):
        data = event_to_dict(SAMPLES[3])
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            event_from_dict(data)

    def test_missing_field_rejected(self):
        data = event_to_dict(SAMPLES[3])
        del data["core_id"]
        with pytest.raises(TypeError):
            event_from_dict(data)

    def test_events_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SAMPLES[1].t = 99.0  # type: ignore[misc]

    def test_default_discard_cause(self):
        assert TaskDiscarded(t=0.0, task_id=1, type_id=2).cause == "empty_feasible_set"
