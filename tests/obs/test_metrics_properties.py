"""Property tests: MetricsRegistry merge forms a commutative monoid.

The ensemble fan-in relies on merge being insensitive to how trials are
partitioned across workers and in which order results arrive — i.e.
associative and order-independent.  Values are integer-valued floats so
the running ``total`` sums associatively in floating point and document
equality is exact.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.sinks import MetricsRegistry

EDGES = (1.0, 4.0, 16.0)

# One recorded observation: a counter bump or a histogram sample.
_op = st.one_of(
    st.tuples(
        st.just("inc"),
        st.sampled_from(["tasks_mapped", "stoch.ops.convolve", "trials_run"]),
        st.integers(min_value=1, max_value=20),
    ),
    st.tuples(
        st.just("observe"),
        st.sampled_from(["queue_depth", "stoch.grid.convolve"]),
        st.integers(min_value=0, max_value=64),
    ),
)

_registry_ops = st.lists(_op, max_size=20)


def build(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "inc":
            reg.inc(name, value)
        else:
            reg.observe(name, float(value), EDGES)
    return reg


def merged(*registries: MetricsRegistry) -> MetricsRegistry:
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out


@given(_registry_ops, _registry_ops, _registry_ops)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    left = merged(merged(build(ops_a), build(ops_b)), build(ops_c))
    right = merged(build(ops_a), merged(build(ops_b), build(ops_c)))
    assert left.to_dict() == right.to_dict()


@given(st.lists(_registry_ops, min_size=2, max_size=5), st.randoms())
def test_merge_is_order_independent(ops_lists, rnd):
    in_order = merged(*[build(ops) for ops in ops_lists])
    shuffled = list(ops_lists)
    rnd.shuffle(shuffled)
    out_of_order = merged(*[build(ops) for ops in shuffled])
    assert in_order.to_dict() == out_of_order.to_dict()


@given(_registry_ops)
def test_empty_registry_is_identity(ops):
    reg = build(ops)
    assert merged(MetricsRegistry(), reg).to_dict() == reg.to_dict()
    assert merged(reg, MetricsRegistry()).to_dict() == reg.to_dict()


@given(_registry_ops, _registry_ops)
def test_merge_equals_interleaved_recording(ops_a, ops_b):
    # Merging two registries equals recording both op streams into one.
    assert merged(build(ops_a), build(ops_b)).to_dict() == build(ops_a + ops_b).to_dict()
